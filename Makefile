# Single source of truth for the verify command: CI calls `make verify`, so
# local runs and CI cannot drift.

CARGO ?= cargo

.PHONY: verify build test fmt fmt-check clippy bench-check bench clean

## Tier-1 verify: exactly what CI's main job runs.
verify:
	$(CARGO) build --release && $(CARGO) test -q

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

## Compile (but do not run) the criterion benches.
bench-check:
	$(CARGO) bench --no-run

bench:
	$(CARGO) bench

clean:
	$(CARGO) clean
