# Single source of truth for the verify command: CI calls `make verify`, so
# local runs and CI cannot drift.

CARGO ?= cargo

.PHONY: verify build test fmt fmt-check clippy bench-check bench bench-json bench-json-smoke clean

## Tier-1 verify: exactly what CI's main job runs.
verify:
	$(CARGO) build --release && $(CARGO) test -q

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

## Compile (but do not run) the criterion benches.
bench-check:
	$(CARGO) bench --no-run

bench:
	$(CARGO) bench

## Run the pinned kernel subset and write BENCH_kernels.json (edges/sec
## per kernel) — the perf baseline future PRs diff against.
bench-json:
	$(CARGO) run --release -p radix-bench --bin bench_kernels

## CI smoke: one iteration per kernel, JSON written to a scratch path so
## the committed baseline is never clobbered by throwaway numbers.
bench-json-smoke:
	RADIX_BENCH_QUICK=1 RADIX_BENCH_OUT=target/BENCH_kernels_smoke.json \
		$(CARGO) run --release -p radix-bench --bin bench_kernels

clean:
	$(CARGO) clean
