# Single source of truth for the verify command: CI calls `make verify`, so
# local runs and CI cannot drift.

CARGO ?= cargo

.PHONY: verify verify-mt verify-serve verify-chaos verify-recovery verify-steal serve-smoke build test fmt fmt-check clippy doc bench-check bench bench-json bench-json-default bench-json-smoke bench-serve bench-gate bench-baseline bench-serve-baseline calibrate calibrate-smoke profile-check tune-report clean

## Tier-1 verify: exactly what CI's main job runs.
verify:
	$(CARGO) build --release && $(CARGO) test -q

## The pool-sensitive suites under a forced multi-thread worker pool —
## what CI's `verify-mt` matrix job runs (POOL_THREADS=2 and 4 there).
## Single-thread runs silently skip the pool dispatch paths; this doesn't.
POOL_THREADS ?= 4
verify-mt:
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p rayon
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-nn
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-challenge --test zero_alloc

## The serving-engine suites under a forced multi-thread worker pool —
## what CI's `serve` job runs (POOL_THREADS=2 there): the crossbeam shim's
## channel/disconnect semantics, the serve unit + integration/property
## suites, and the serving zero-alloc proof (which forces its own 4-thread
## pool internally; it is its own process, so the override is safe).
verify-serve:
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p crossbeam
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-challenge --lib serve
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-challenge --test serve
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-challenge --test zero_alloc_serve

## The fault-injection suites under a forced multi-thread worker pool —
## what CI's `chaos` job runs (POOL_THREADS=2 and 4 there): the fault
## module's unit tests, the rayon shim's panic-payload propagation, and
## the chaos integration suite (injected engine panics mid-traffic,
## supervised restart, deadline shedding under compute delays, the
## shutdown-under-chaos accounting stress, and the random-fault-schedule
## proptest; the supervisor's coverage lives there too).
verify-chaos:
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p rayon panic
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-challenge --lib fault
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-challenge --test chaos

## The crash-safe-training suites under a forced multi-thread worker pool
## — what CI's `recovery` job runs (POOL_THREADS=2 there): the checkpoint
## codec round-trip + corruption fuzz (truncations, byte flips, torn
## writes, stale temp files), the kill-at-batch-N bitwise-identical
## resume proptest, the train supervisor's unit coverage, and the
## end-to-end train-crash / checkpoint-fallback / serve-hot-reload
## integration suite.
verify-recovery:
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-nn --lib checkpoint
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-nn --lib supervise
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-nn --lib train
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-nn --test checkpoint
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-challenge --test recovery

## The work-stealing scheduler torture suites — what CI's `verify-steal`
## matrix job runs (POOL_THREADS=2 and 4 there). The steal suite sweeps
## seeded steal orders (dispatch completeness, no double-claim, panic
## propagation with the pool surviving, concurrent independent jobs, the
## priority lane); the online suite runs checkpointed fine-tuning and
## live serve traffic on one pool under train/serve fault injection
## (typed outcomes + bitwise-identical crash resume). The steal suite
## additionally runs at widths 1 (inline-serial fallback) and 8
## (oversubscribed) in every invocation, so each CI matrix job covers
## the full 1/2/4/8 ladder.
verify-steal:
	RADIX_POOL_THREADS=1 $(CARGO) test -q -p rayon --test steal
	RADIX_POOL_THREADS=8 $(CARGO) test -q -p rayon --test steal
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p rayon --test steal
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q -p radix-challenge --test online

## Serving smoke: start the engine, drive concurrent clients against it,
## assert every response is correct and demuxed to its requester in order,
## and shut down cleanly — the release-mode soak CI's `serve` job runs on
## a forced multi-thread pool.
serve-smoke:
	RADIX_POOL_THREADS=$(POOL_THREADS) $(CARGO) test -q --release -p radix-challenge --test serve -- concurrent_clients oversubscribed shutdown

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

## Documentation coverage gate: rustdoc warnings (missing docs under the
## crates' deny(missing_docs), broken intra-doc links) fail the build.
## Doctests themselves run under `make test`.
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps

## Compile (but do not run) the criterion benches.
bench-check:
	$(CARGO) bench --no-run

bench:
	$(CARGO) bench

## Run the pinned kernel subset and write BENCH_kernels.json (edges/sec
## per kernel) — the perf baseline future PRs diff against.
bench-json:
	$(CARGO) run --release -p radix-bench --bin bench_kernels

## CI smoke: min-of-3 iterations per kernel, JSON written to a scratch
## path so the committed baseline is never clobbered by quick numbers.
bench-json-smoke:
	RADIX_BENCH_QUICK=1 RADIX_BENCH_OUT=target/BENCH_kernels_smoke.json \
		$(CARGO) run --release -p radix-bench --bin bench_kernels

## Serving-latency benchmark: closed-loop capacity plus p50/p99 at three
## relative offered loads, written to target/BENCH_serve_fresh.json. Also
## enforces the serving acceptance bound (low-load p99 <= the configured
## RADIX_SERVE_DEADLINE_US budget) — nonzero exit on violation.
bench-serve:
	$(CARGO) run --release -p radix-bench --bin bench_serve

## Perf regression gate: fresh quick-mode kernel AND serving-latency runs
## compared against the committed BENCH_kernels.json with generous
## tolerances (2x kernels / 3x serve by default; override with
## RADIX_BENCH_TOLERANCE / RADIX_BENCH_SERVE_TOLERANCE). Fails on gross
## regressions and prints a per-kernel delta table of every offender. CI
## uploads both scratch JSONs as workflow artifacts.
bench-gate:
	RADIX_BENCH_QUICK=1 RADIX_BENCH_OUT=target/BENCH_kernels.scratch.json \
		$(CARGO) run --release -p radix-bench --bin bench_kernels
	RADIX_BENCH_QUICK=1 RADIX_BENCH_OUT=target/BENCH_serve.scratch.json \
		$(CARGO) run --release -p radix-bench --bin bench_serve
	RADIX_BENCH_CANDIDATE=target/BENCH_kernels.scratch.json:target/BENCH_serve.scratch.json \
		$(CARGO) run --release -p radix-bench --bin bench_gate

## Rewrite the committed baseline for THIS machine's thread count: a
## full-budget emitter run merged point-wise into BENCH_kernels.json keyed
## by the worker-pool width (runs at other widths, and points the emitter
## didn't measure — e.g. serve_* latency points — are preserved). Run once
## per machine shape — e.g. `RADIX_POOL_THREADS=2 make bench-baseline` to
## commit the multi-core rows the pool kernels gate against on 2-core CI.
bench-baseline:
	RADIX_BENCH_OUT=target/BENCH_kernels_fresh.json \
		$(CARGO) run --release -p radix-bench --bin bench_kernels
	RADIX_BENCH_FRESH=target/BENCH_kernels_fresh.json \
		$(CARGO) run --release -p radix-bench --bin bench_baseline

## Same, for the serving-latency points: a full-budget bench_serve run
## merged point-wise into BENCH_kernels.json at this machine's width,
## leaving the kernel points there intact.
bench-serve-baseline:
	RADIX_BENCH_OUT=target/BENCH_serve_fresh.json \
		$(CARGO) run --release -p radix-bench --bin bench_serve
	RADIX_BENCH_FRESH=target/BENCH_serve_fresh.json \
		$(CARGO) run --release -p radix-bench --bin bench_baseline

## Autotune this machine: sweep tile width x block rows x fuse depth x
## activation-sparsity threshold together on the committed bench shapes
## and write the winner to ./RADIX_PROFILE.json (merged at this pool
## width; override the path with RADIX_PROFILE). The kernels load the
## profile at startup; RADIX_* env vars still outrank it.
calibrate:
	$(CARGO) run --release -p radix-bench --bin calibrate

## Budgeted CI smoke of the autotuner: quick candidate grid, tiny shapes,
## 3-iteration timings, profile written to a scratch path so a checkout
## never gains an untracked root file. Proves the sweep -> persist ->
## reload plumbing end to end; the numbers are noise.
calibrate-smoke:
	RADIX_CALIBRATE_QUICK=1 RADIX_PROFILE=target/RADIX_PROFILE.json \
		$(CARGO) run --release -p radix-bench --bin calibrate

## Round-trip the tuning profile at RADIX_PROFILE (default
## ./RADIX_PROFILE.json) through the kernels' own loader: typed error +
## nonzero exit when missing/truncated/corrupt.
profile-check:
	$(CARGO) run --release -p radix-bench --bin profile_check

## Quick kernel run with the baked-in default tunables, written to the
## path tune-report reads as its "default" side. Explicitly clears
## RADIX_PROFILE so a profile in the working tree can't leak in.
bench-json-default:
	RADIX_BENCH_QUICK=1 RADIX_BENCH_OUT=target/BENCH_kernels.default.json \
		RADIX_PROFILE=target/nonexistent-profile.json \
		$(CARGO) run --release -p radix-bench --bin bench_kernels

## Markdown delta table: tuned (target/BENCH_kernels.scratch.json, i.e.
## the gate's candidate measured under the calibrated profile) vs default
## (target/BENCH_kernels.default.json). Report-only; CI appends it to the
## job summary.
tune-report:
	$(CARGO) run --release -p radix-bench --bin tune_report

clean:
	$(CARGO) clean
