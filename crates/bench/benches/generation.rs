//! Generation bench: the Figure-6 algorithm's cost as networks scale, and
//! the ablation (DESIGN.md §6.2) of the eq.-(1) matrix construction vs the
//! Figure-1 overlapping-decision-tree construction (same output, very
//! different constant factors).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use radix_net::{overlay_topology, MixedRadixSystem, MixedRadixTopology, RadixNetSpec};

fn bench_radixnet_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation/radixnet");
    for (radix, depth, systems) in [(2usize, 6usize, 4usize), (4, 4, 6), (32, 2, 15)] {
        let sys = MixedRadixSystem::uniform(radix, depth).unwrap();
        let spec = RadixNetSpec::extended_mixed_radix(vec![sys; systems]).unwrap();
        let edges = spec.build().fnnt().num_distinct_edges() as u64;
        group.throughput(Throughput::Elements(edges));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "n{}_layers{}",
                spec.n_prime(),
                spec.total_radices()
            )),
            &spec,
            |b, spec| b.iter(|| black_box(spec.build())),
        );
    }
    group.finish();
}

fn bench_construction_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation/mixed_radix_ablation");
    for radices in [vec![2usize; 8], vec![4; 4], vec![16, 16]] {
        let sys = MixedRadixSystem::new(radices.clone()).unwrap();
        let label = format!("{sys}");
        group.bench_with_input(
            BenchmarkId::new("eq1_matrix_form", &label),
            &sys,
            |b, sys| b.iter(|| black_box(MixedRadixTopology::new(sys.clone()))),
        );
        group.bench_with_input(
            BenchmarkId::new("fig1_tree_overlay", &label),
            &sys,
            |b, sys| b.iter(|| black_box(overlay_topology(sys))),
        );
    }
    group.finish();
}

fn bench_kronecker_step(c: &mut Criterion) {
    // The eq.-(3) step in isolation: widths scale edge counts by D_{i−1}·D_i.
    let mut group = c.benchmark_group("generation/kronecker_step");
    let sys = MixedRadixSystem::uniform(4, 3).unwrap();
    for widths in [vec![1usize, 1, 1, 1], vec![2, 2, 2, 2], vec![4, 4, 4, 4]] {
        let spec = RadixNetSpec::new(vec![sys.clone()], widths.clone()).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("D{}", widths[0])),
            &spec,
            |b, spec| b.iter(|| black_box(spec.build())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_radixnet_generation, bench_construction_ablation, bench_kronecker_step
}
criterion_main!(benches);
