//! Graph-Challenge inference bench: the `Y ← clamp(ReLU(Y·W + b))` chain
//! on RadiX-Net networks across the scaled size ladder, under the three
//! schedules (serial, Rayon row-parallel, crossbeam-pipelined) — DESIGN.md
//! ablation §6.4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use radix_challenge::{forward_pipelined, ChallengeConfig, ChallengeNetwork};
use radix_data::sparse_binary_batch;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    let batch = 64usize;
    for (radix, k, s, label) in [
        (2usize, 6usize, 4usize, "64n_24l"),
        (4, 4, 6, "256n_24l"),
        (32, 2, 15, "1024n_30l"),
    ] {
        let config = ChallengeConfig::preset(radix, k, s);
        let net = ChallengeNetwork::from_config(&config).unwrap();
        let x = sparse_binary_batch(batch, net.n_in(), 0.5, 7);
        group.throughput(Throughput::Elements((batch * net.total_nnz()) as u64));
        group.bench_with_input(BenchmarkId::new("serial", label), &(), |b, ()| {
            b.iter(|| black_box(net.forward(&x, false)))
        });
        group.bench_with_input(BenchmarkId::new("rayon", label), &(), |b, ()| {
            b.iter(|| black_box(net.forward(&x, true)))
        });
        group.bench_with_input(BenchmarkId::new("pipelined", label), &(), |b, ()| {
            b.iter(|| black_box(forward_pipelined(&net, &x, batch / 8)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference
}
criterion_main!(benches);
