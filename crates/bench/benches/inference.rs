//! Graph-Challenge inference bench: the `Y ← clamp(ReLU(Y·W + b))` chain
//! on RadiX-Net networks across the scaled size ladder. Schedules: the
//! legacy unprepared path (generic CSR product + separate nonlinearity
//! pass, allocate-per-layer), the prepared ELL + fused-epilogue +
//! ping-pong-workspace kernels (serial and Rayon), and the
//! crossbeam-pipelined schedule — DESIGN.md ablation §6.4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use radix_challenge::{forward_pipelined, ChallengeConfig, ChallengeNetwork, InferWorkspace};
use radix_data::sparse_binary_batch;
use radix_sparse::DenseMatrix;

/// The pre-prepared-kernel inference loop, kept as the bench baseline:
/// generic CSR product allocating a fresh output per layer, then a second
/// full pass over the output for bias + ReLU + clamp.
fn forward_csr_unfused(net: &ChallengeNetwork, x: &DenseMatrix<f32>) -> DenseMatrix<f32> {
    let bias = net.bias();
    let ymax = net.ymax();
    let mut y = x.clone();
    for w in net.layers() {
        y = radix_sparse::ops::dense_spmm(&y, w.as_csr()).expect("layer widths chain");
        y.map_inplace(|v| (v + bias).clamp(0.0, ymax));
    }
    y
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    let batch = 64usize;
    for (radix, k, s, label) in [
        (2usize, 6usize, 4usize, "64n_24l"),
        (4, 4, 6, "256n_24l"),
        (32, 2, 15, "1024n_30l"),
    ] {
        let config = ChallengeConfig::preset(radix, k, s);
        let net = ChallengeNetwork::from_config(&config).unwrap();
        let x = sparse_binary_batch(batch, net.n_in(), 0.5, 7);
        group.throughput(Throughput::Elements((batch * net.total_nnz()) as u64));
        group.bench_with_input(BenchmarkId::new("csr_unfused", label), &(), |b, ()| {
            b.iter(|| black_box(forward_csr_unfused(&net, &x)))
        });
        let mut ws = InferWorkspace::for_network(&net, batch);
        group.bench_with_input(BenchmarkId::new("prepared_serial", label), &(), |b, ()| {
            b.iter(|| {
                let y = net.forward_with(&x, false, &mut ws);
                black_box(y.as_slice().last().copied())
            })
        });
        group.bench_with_input(BenchmarkId::new("prepared_rayon", label), &(), |b, ()| {
            b.iter(|| {
                let y = net.forward_with(&x, true, &mut ws);
                black_box(y.as_slice().last().copied())
            })
        });
        group.bench_with_input(BenchmarkId::new("pipelined", label), &(), |b, ()| {
            b.iter(|| black_box(forward_pipelined(&net, &x, batch / 8)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference
}
criterion_main!(benches);
