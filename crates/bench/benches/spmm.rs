//! Substrate bench (DESIGN.md §6.1): serial vs Rayon-parallel sparse
//! matrix products on RadiX-Net layer matrices — the kernels everything
//! else stands on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use radix_sparse::ops;
use radix_sparse::{CsrMatrix, CyclicShift, DenseMatrix, Epilogue, PreparedWeights};

fn layer(n: usize, degree: usize) -> CsrMatrix<f32> {
    CyclicShift::radix_submatrix::<u64>(n, degree, 1).map(|_| 1.0 / degree as f32)
}

fn activations(rows: usize, cols: usize) -> DenseMatrix<f32> {
    let mut m = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        let r: &mut [f32] = m.row_mut(i);
        for (j, v) in r.iter_mut().enumerate() {
            *v = ((i * 31 + j * 17) % 13) as f32 * 0.07;
        }
    }
    m
}

fn bench_dense_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm/dense_times_csr");
    for (n, degree, batch) in [
        (1024usize, 32usize, 64usize),
        (4096, 16, 64),
        (16384, 8, 32),
    ] {
        let w = layer(n, degree);
        let prepared = PreparedWeights::from_csr(w.clone());
        assert!(prepared.is_ell(), "RadiX layers have constant degree");
        let x = activations(batch, n);
        group.throughput(Throughput::Elements((batch * w.nnz()) as u64));
        let label = format!("n{n}_deg{degree}_b{batch}");
        // Baseline: generic CSR kernels, allocate-per-call.
        group.bench_with_input(BenchmarkId::new("csr_serial", &label), &(), |b, ()| {
            b.iter(|| black_box(ops::dense_spmm(&x, &w).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("csr_rayon", &label), &(), |b, ()| {
            b.iter(|| black_box(ops::par_dense_spmm(&x, &w).unwrap()))
        });
        // Prepared ELL kernels into a reused buffer.
        let mut out = DenseMatrix::<f32>::zeros(batch, n);
        group.bench_with_input(BenchmarkId::new("prepared_serial", &label), &(), |b, ()| {
            b.iter(|| {
                prepared
                    .spmm_into(&x, &mut out, &Epilogue::identity())
                    .unwrap();
                black_box(out.as_slice().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("prepared_rayon", &label), &(), |b, ()| {
            b.iter(|| {
                prepared
                    .par_spmm_into(&x, &mut out, &Epilogue::identity())
                    .unwrap();
                black_box(out.as_slice().len())
            })
        });
        // Prepared with the bias + clamp epilogue fused in (what the
        // Challenge inference loop actually runs).
        let epi = Epilogue::new(radix_sparse::Bias::Uniform(-0.5f32), |v: f32| {
            v.clamp(0.0, 32.0)
        });
        group.bench_with_input(BenchmarkId::new("prepared_fused", &label), &(), |b, ()| {
            b.iter(|| {
                prepared.spmm_into(&x, &mut out, &epi).unwrap();
                black_box(out.as_slice().len())
            })
        });
    }
    group.finish();
}

fn bench_csr_csr(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm/csr_times_csr");
    for (n, degree) in [(1024usize, 32usize), (4096, 16)] {
        let a = layer(n, degree);
        let b_mat = layer(n, degree);
        let label = format!("n{n}_deg{degree}");
        group.bench_with_input(BenchmarkId::new("serial", &label), &(), |bch, ()| {
            bch.iter(|| black_box(ops::spmm(&a, &b_mat).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("rayon", &label), &(), |bch, ()| {
            bch.iter(|| black_box(ops::par_spmm(&a, &b_mat).unwrap()))
        });
    }
    group.finish();
}

fn bench_kron(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm/kron_ones");
    let w = CyclicShift::radix_submatrix::<u64>(256, 4, 1);
    for d in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| black_box(radix_sparse::kron_ones_left(d, d, &w)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dense_spmm, bench_csr_csr, bench_kron
}
criterion_main!(benches);
