//! Theorem-1 bench: cost of verifying symmetry/path counts.
//!
//! Ablation (DESIGN.md §6.3): layer-chained sparse product `W_1⋯W_M` vs
//! the literal §II criterion, `A^M` of the full block adjacency matrix.
//! The chained product is the clear winner — the full matrix is
//! `(ΣD_iN')²` and its powers fill in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use radix_net::{verify_spec, MixedRadixSystem, RadixNetSpec};
use radix_sparse::ops::matpow;

fn specs() -> Vec<(String, RadixNetSpec)> {
    let mut out = Vec::new();
    for (mu, d, label) in [
        (2usize, 4usize, "nprime16"),
        (4, 3, "nprime64"),
        (2, 8, "nprime256"),
    ] {
        let sys = MixedRadixSystem::uniform(mu, d).unwrap();
        let spec = RadixNetSpec::extended_mixed_radix(vec![sys.clone(), sys]).unwrap();
        out.push((label.to_string(), spec));
    }
    out
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1");
    for (label, spec) in specs() {
        let net = spec.build();
        group.bench_with_input(
            BenchmarkId::new("chain_product", &label),
            net.fnnt(),
            |b, fnnt| b.iter(|| black_box(fnnt.check_symmetry())),
        );
        group.bench_with_input(
            BenchmarkId::new("full_adjacency_power", &label),
            net.fnnt(),
            |b, fnnt| {
                b.iter(|| {
                    let a = fnnt.full_adjacency();
                    black_box(matpow(&a, fnnt.num_edge_layers()).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("end_to_end_verify", &label),
            &spec,
            |b, spec| b.iter(|| black_box(verify_spec(spec))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_verification
}
criterion_main!(benches);
