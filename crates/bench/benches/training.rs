//! Training bench (companion-work experiment): one epoch of identical
//! training on RadiX-Net, X-Net, and dense topologies at matched layer
//! sizes — the runtime-cost half of the paper's "same precision at lower
//! runtime and storage cost" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use radix_data::digits;
use radix_net::{MixedRadixSystem, RadixNetSpec};
use radix_nn::{train_classifier, Activation, Init, Loss, Network, Optimizer, TrainConfig};
use radix_xnet::{XNetKind, XNetSpec};

fn nets() -> Vec<(String, Network)> {
    let spec = RadixNetSpec::new(
        vec![MixedRadixSystem::new([4, 4, 4]).unwrap()],
        vec![1, 2, 2, 1],
    )
    .unwrap();
    let radix = Network::from_fnnt(
        spec.build().fnnt(),
        Activation::Relu,
        Init::He,
        Loss::SoftmaxCrossEntropy,
        1,
    );
    let xnet_fnnt = XNetSpec {
        layer_sizes: vec![64, 128, 128, 64],
        degree: 8,
        kind: XNetKind::Random { seed: 5 },
    }
    .build()
    .unwrap();
    let xnet = Network::from_fnnt(
        &xnet_fnnt,
        Activation::Relu,
        Init::He,
        Loss::SoftmaxCrossEntropy,
        2,
    );
    let dense = Network::dense(
        &[64, 128, 128, 64],
        Activation::Relu,
        Init::He,
        Loss::SoftmaxCrossEntropy,
        3,
    );
    vec![
        ("radixnet".into(), radix),
        ("xnet".into(), xnet),
        ("dense".into(), dense),
    ]
}

fn bench_epoch(c: &mut Criterion) {
    let data = digits(30, 0.2, 3);
    let mut group = c.benchmark_group("training/epoch");
    for (name, net) in nets() {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &net, |b, net| {
            b.iter(|| {
                let mut n = net.clone();
                let mut opt = Optimizer::adam(0.005);
                let config = TrainConfig {
                    epochs: 1,
                    batch_size: 32,
                    seed: 5,
                    parallel_chunks: 1,
                    ..TrainConfig::default()
                };
                black_box(train_classifier(
                    &mut n,
                    &data.x,
                    &data.labels,
                    &mut opt,
                    &config,
                ))
            })
        });
    }
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let data = digits(30, 0.2, 3);
    let mut group = c.benchmark_group("training/forward");
    for (name, net) in nets() {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &net, |b, net| {
            b.iter(|| black_box(net.forward(&data.x)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_epoch, bench_forward
}
criterion_main!(benches);
