//! The machine autotuner behind `make calibrate`: sweeps the kernel
//! tunables **together** on the committed bench shapes and persists the
//! winner as a versioned per-machine profile (`RADIX_PROFILE.json`) that
//! the kernels load at startup.
//!
//! Four knobs interact — the column-tile width shapes what stays
//! cache-resident, the row-block grain shapes how long a tile's entry
//! stream is amortized, the fusion depth decides how many layers share
//! each block, and the activation-sparsity threshold flips blocks between
//! the gather and scatter schedules — so per-knob sweeps (the old
//! calibrate printout) routinely miss the jointly-best point. This module
//! sweeps the full cross product.
//!
//! **Process model.** Every tunable is resolved once per process and
//! cached in a `OnceLock` (so hot paths pay one atomic load), which means
//! a candidate cannot be applied inside the sweeping process. The
//! calibrate binary therefore re-executes **itself** once per candidate
//! ([`CHILD_ENV`] set, the candidate's knobs exported as the usual
//! `RADIX_*` environment variables, which outrank any profile), and the
//! child prints its score as a [`SCORE_TAG`] line the parent parses.
//! Child and parent share one binary and one workload, so scores are
//! measured exactly the way the winning profile will run.
//!
//! The workload is the committed bench shapes' fused Challenge forward
//! pass (dense and 90%-sparse activations — the two regimes the
//! activation dispatch separates) plus the tiled transposed product (the
//! training orientation), timed with [`crate::time_kernel`]'s min
//! estimator.

use std::path::Path;
use std::process::Command;

use radix_challenge::{ChallengeNetwork, InferWorkspace, DEFAULT_FUSE_LAYERS};
use radix_sparse::kernel::DEFAULT_ACT_SPARSE_PERCENT;
use radix_sparse::kernel::{TuningProfile, DEFAULT_BLOCK_ROWS, DEFAULT_TILE_COLS};
use radix_sparse::{Bias, CsrMatrix, CyclicShift, DenseMatrix, Epilogue, PreparedWeights};

/// Environment variable marking a calibrate child process: when set, the
/// binary runs [`measure_workload`] under the knobs in its environment
/// and prints one [`SCORE_TAG`] line instead of driving the sweep.
pub const CHILD_ENV: &str = "RADIX_AUTOTUNE_CHILD";

/// Prefix of the score line a calibrate child prints (microseconds,
/// lower is better): `autotune_score_us: 123.456`.
pub const SCORE_TAG: &str = "autotune_score_us:";

/// One point of the tunable cross product: the four knobs the persisted
/// profile carries, all concrete (the grid never leaves a knob unset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Column-tile width (`RADIX_TILE_COLS`).
    pub tile_cols: usize,
    /// Rows per cache block in every row-blocked schedule
    /// (`RADIX_BLOCK_ROWS`).
    pub block_rows: usize,
    /// Consecutive layers fused per row block (`RADIX_FUSE_LAYERS`).
    pub fuse_layers: usize,
    /// Activation-sparsity crossover percent
    /// (`RADIX_ACT_SPARSE_THRESHOLD`; 0 disables the scatter path).
    pub act_sparse_percent: usize,
}

impl Candidate {
    /// The baked-in defaults as a candidate — always in the grid, so the
    /// tuned profile is never worse than the defaults by construction
    /// (ties resolve to the earlier grid entry, and this is entry 0).
    #[must_use]
    pub fn default_knobs() -> Candidate {
        Candidate {
            tile_cols: DEFAULT_TILE_COLS,
            block_rows: DEFAULT_BLOCK_ROWS,
            fuse_layers: DEFAULT_FUSE_LAYERS,
            act_sparse_percent: DEFAULT_ACT_SPARSE_PERCENT,
        }
    }

    /// The environment assignments that apply this candidate to a child
    /// process. Environment outranks profile in every knob's resolution,
    /// so children measure the candidate regardless of any profile file.
    #[must_use]
    pub fn env(&self) -> [(&'static str, String); 4] {
        [
            ("RADIX_TILE_COLS", self.tile_cols.to_string()),
            ("RADIX_BLOCK_ROWS", self.block_rows.to_string()),
            ("RADIX_FUSE_LAYERS", self.fuse_layers.to_string()),
            (
                "RADIX_ACT_SPARSE_THRESHOLD",
                self.act_sparse_percent.to_string(),
            ),
        ]
    }

    /// This candidate as a persisted profile run keyed at `threads`.
    #[must_use]
    pub fn to_profile(&self, threads: usize) -> TuningProfile {
        TuningProfile {
            threads,
            tile_cols: Some(self.tile_cols),
            block_rows: Some(self.block_rows),
            fuse_layers: Some(self.fuse_layers),
            act_sparse_percent: Some(self.act_sparse_percent),
        }
    }
}

/// The candidate cross product. Entry 0 is always [`Candidate::default_knobs`]
/// (so a min with strict `<` can never pick a non-default tie over the
/// defaults); the rest is the full grid minus the duplicate default entry.
///
/// * full (`quick == false`): tile {512, 1024, 2048} × block {16, 32, 64}
///   × fuse {1, 2, 4} × act {0, 10, 25} — 81 combos;
/// * quick (smoke/CI): tile {512, 1024} × block {16, 32} × fuse {1, 2}
///   × act {0, 10} — 16 combos, tiny shapes, 3-iteration timings. Proves
///   the plumbing; numbers are not meaningful.
#[must_use]
pub fn candidate_grid(quick: bool) -> Vec<Candidate> {
    let (tiles, blocks, fuses, acts): (&[usize], &[usize], &[usize], &[usize]) = if quick {
        (&[512, 1024], &[16, 32], &[1, 2], &[0, 10])
    } else {
        (&[512, 1024, 2048], &[16, 32, 64], &[1, 2, 4], &[0, 10, 25])
    };
    let mut grid = vec![Candidate::default_knobs()];
    for &tile_cols in tiles {
        for &block_rows in blocks {
            for &fuse_layers in fuses {
                for &act_sparse_percent in acts {
                    let c = Candidate {
                        tile_cols,
                        block_rows,
                        fuse_layers,
                        act_sparse_percent,
                    };
                    if !grid.contains(&c) {
                        grid.push(c);
                    }
                }
            }
        }
    }
    grid
}

fn layer(n: usize, degree: usize) -> CsrMatrix<f32> {
    CyclicShift::radix_submatrix::<u64>(n, degree, 1).map(|_| 1.0 / degree as f32)
}

fn activations(rows: usize, cols: usize) -> DenseMatrix<f32> {
    let mut m = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        let r: &mut [f32] = m.row_mut(i);
        for (j, v) in r.iter_mut().enumerate() {
            *v = ((i * 31 + j * 17) % 13) as f32 * 0.07;
        }
    }
    m
}

/// A 90%-sparse activation batch — the post-ReLU deep-layer regime the
/// activation-sparsity dispatch targets.
fn sparse_activations(rows: usize, cols: usize) -> DenseMatrix<f32> {
    let mut m = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        let r: &mut [f32] = m.row_mut(i);
        for (j, v) in r.iter_mut().enumerate() {
            if (i * 31 + j * 17) % 10 == 0 {
                *v = ((i + j) % 13) as f32 * 0.07 + 0.05;
            }
        }
    }
    m
}

/// The committed autotune shapes `(n, degree, batch)`: the bench
/// baseline's layer configs in full mode, one tiny shape in quick mode.
#[must_use]
pub fn workload_shapes(quick: bool) -> &'static [(usize, usize, usize)] {
    if quick {
        &[(512, 4, 8)]
    } else {
        &[(16384, 8, 32), (4096, 16, 64)]
    }
}

/// Runs the autotune workload **under the current process's tunables**
/// and returns the total score in seconds (lower is better): for each
/// committed shape, the fused 4-layer Challenge forward on dense and on
/// 90%-sparse activations, plus the tiled transposed product. Called by
/// calibrate children (whose environment carries one candidate) and
/// usable directly for A/B measurements.
#[must_use]
pub fn measure_workload(quick: bool) -> f64 {
    use std::hint::black_box;
    let mut total = 0.0;
    for &(n, degree, batch) in workload_shapes(quick) {
        let w = layer(n, degree);
        // Fused multi-layer forward: 4 layers so fuse depths 1/2/4 all
        // differ; dense + sparse inputs so the activation dispatch and
        // the scatter threshold both matter.
        let net = ChallengeNetwork::from_layers(vec![w.clone(); 4], -0.3, 32.0);
        let mut ws = InferWorkspace::for_network(&net, batch);
        for x in [activations(batch, n), sparse_activations(batch, n)] {
            total += crate::time_kernel(quick, 0.25, 200, || {
                net.forward_with(&x, false, &mut ws);
                black_box(ws.output().as_slice().len());
            });
        }
        // Tiled transposed product — the training orientation, zero-copy
        // over the forward storage.
        let p = PreparedWeights::from_csr(w);
        let epi = Epilogue::new(Bias::Uniform(-0.3f32), |v: f32| v.clamp(0.0, 32.0));
        let xt = activations(batch, n);
        let mut out = DenseMatrix::<f32>::default();
        total += crate::time_kernel(quick, 0.25, 200, || {
            p.spmm_transposed_tiled_into(&xt, &mut out, &epi).unwrap();
            black_box(out.as_slice().len());
        });
    }
    total
}

/// Extracts the score (seconds) from a calibrate child's stdout: the
/// value of its [`SCORE_TAG`] line, which the child prints in
/// microseconds. `None` when no well-formed score line is present (the
/// child crashed or printed garbage).
#[must_use]
pub fn parse_child_score(stdout: &str) -> Option<f64> {
    stdout.lines().find_map(|line| {
        let rest = line.trim().strip_prefix(SCORE_TAG)?;
        let us: f64 = rest.trim().parse().ok()?;
        (us.is_finite() && us >= 0.0).then_some(us * 1e-6)
    })
}

/// Spawns this binary as a measurement child for `candidate` and returns
/// its score in seconds. The child inherits the parent's environment
/// (pool width included) with the candidate's knobs and the quick flag
/// overlaid.
///
/// # Errors
/// A message describing the failure: spawn error, non-zero exit, or
/// missing/malformed score line.
pub fn run_candidate(exe: &Path, candidate: &Candidate, quick: bool) -> Result<f64, String> {
    let mut cmd = Command::new(exe);
    cmd.env(CHILD_ENV, "1");
    for (k, v) in candidate.env() {
        cmd.env(k, v);
    }
    if quick {
        cmd.env("RADIX_CALIBRATE_QUICK", "1");
    } else {
        cmd.env_remove("RADIX_CALIBRATE_QUICK");
    }
    let out = cmd
        .output()
        .map_err(|e| format!("failed to spawn measurement child: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "measurement child exited with {}: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    parse_child_score(&stdout)
        .ok_or_else(|| format!("no `{SCORE_TAG}` line in child output: {}", stdout.trim()))
}

/// Merges a freshly measured run into an existing profile's runs:
/// replaces the run at the same thread count, keeps every other width's
/// result, and returns the runs sorted by thread count — so calibrating
/// on a 2-core box never clobbers the 8-core result in a shared profile.
#[must_use]
pub fn merge_profile_runs(
    mut existing: Vec<TuningProfile>,
    new: TuningProfile,
) -> Vec<TuningProfile> {
    if let Some(slot) = existing.iter_mut().find(|r| r.threads == new.threads) {
        *slot = new;
    } else {
        existing.push(new);
    }
    existing.sort_by_key(|r| r.threads);
    existing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_leads_with_defaults_and_has_no_duplicates() {
        for quick in [false, true] {
            let grid = candidate_grid(quick);
            assert_eq!(grid[0], Candidate::default_knobs(), "quick={quick}");
            for (i, a) in grid.iter().enumerate() {
                assert!(
                    !grid[i + 1..].contains(a),
                    "duplicate candidate {a:?} (quick={quick})"
                );
            }
        }
        // Both grids contain the default point, so the cross product is
        // the whole grid: 3^4 full, 2^4 quick.
        assert_eq!(candidate_grid(false).len(), 81);
        assert_eq!(candidate_grid(true).len(), 16);
    }

    #[test]
    fn candidate_env_names_match_the_resolvers() {
        let c = Candidate {
            tile_cols: 2048,
            block_rows: 64,
            fuse_layers: 4,
            act_sparse_percent: 0,
        };
        let env = c.env();
        assert_eq!(env[0], ("RADIX_TILE_COLS", "2048".to_string()));
        assert_eq!(env[1], ("RADIX_BLOCK_ROWS", "64".to_string()));
        assert_eq!(env[2], ("RADIX_FUSE_LAYERS", "4".to_string()));
        assert_eq!(env[3], ("RADIX_ACT_SPARSE_THRESHOLD", "0".to_string()));
        let run = c.to_profile(2);
        assert_eq!(run.threads, 2);
        assert_eq!(run.tile_cols, Some(2048));
        assert_eq!(run.act_sparse_percent, Some(0));
    }

    #[test]
    fn child_score_parses_and_rejects_garbage() {
        assert_eq!(
            parse_child_score("noise\nautotune_score_us: 1500.0\n"),
            Some(1.5e-3)
        );
        assert_eq!(parse_child_score("autotune_score_us: -3"), None);
        assert_eq!(parse_child_score("autotune_score_us: nonsense"), None);
        assert_eq!(parse_child_score("no score here"), None);
    }

    #[test]
    fn merge_replaces_same_width_and_keeps_others() {
        let c = Candidate::default_knobs();
        let existing = vec![c.to_profile(1), c.to_profile(8)];
        let tuned = Candidate {
            tile_cols: 2048,
            ..c
        };
        let merged = merge_profile_runs(existing, tuned.to_profile(8));
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].threads, 1);
        assert_eq!(merged[0].tile_cols, Some(DEFAULT_TILE_COLS));
        assert_eq!(merged[1].threads, 8);
        assert_eq!(merged[1].tile_cols, Some(2048));
        // A new width inserts, sorted.
        let merged = merge_profile_runs(merged, tuned.to_profile(2));
        assert_eq!(
            merged.iter().map(|r| r.threads).collect::<Vec<_>>(),
            vec![1, 2, 8]
        );
    }

    #[test]
    fn quick_workload_runs_and_scores_positive() {
        let secs = measure_workload(true);
        assert!(secs.is_finite() && secs > 0.0);
    }
}
