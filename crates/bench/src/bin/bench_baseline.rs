//! Baseline merger: folds a fresh `bench_kernels` or `bench_serve` run
//! into the committed `BENCH_kernels.json`, **keyed by thread count** and
//! merged **point-wise** — within the run at the fresh run's worker-pool
//! width, points re-measured by the fresh run are replaced, points it
//! didn't measure are kept, and new points are appended; runs at other
//! widths are untouched. Point-wise merging is what lets the kernel
//! emitter and the serving-latency emitter re-baseline independently: a
//! `bench_serve` merge updates the `serve_*` points at its width without
//! wiping the kernel points measured there, and vice versa. The baseline
//! accumulates one run per machine shape (1-core container, 2-core CI
//! runner, …) so the perf gate can compare pool (`*rayon*`) kernels and
//! serving latencies like-for-like instead of skipping them whenever the
//! widths differ.
//!
//! Invocation (see `make bench-baseline`):
//!
//! ```text
//! RADIX_BENCH_FRESH=target/BENCH_kernels_fresh.json \
//!     cargo run --release -p radix-bench --bin bench_baseline
//! ```
//!
//! Environment:
//! * `RADIX_BENCH_FRESH` — the fresh emitter output to fold in (default
//!   `target/BENCH_kernels_fresh.json`),
//! * `RADIX_BENCH_BASELINE` — the baseline to rewrite (default
//!   `BENCH_kernels.json`; created if absent).
//!
//! The rewritten baseline uses the `radix-bench-kernels/v4` schema: a
//! `runs` array with one `{threads, configs}` entry per measured width,
//! sorted by thread count for stable diffs.

use radix_bench::{emit_bench_runs, parse_bench_runs, BenchRun};

fn main() {
    let fresh_path = std::env::var("RADIX_BENCH_FRESH")
        .unwrap_or_else(|_| "target/BENCH_kernels_fresh.json".to_string());
    let baseline_path =
        std::env::var("RADIX_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_kernels.json".to_string());

    let fresh_text = std::fs::read_to_string(&fresh_path)
        .unwrap_or_else(|e| panic!("bench_baseline: cannot read fresh run {fresh_path}: {e}"));
    let mut fresh = parse_bench_runs(&fresh_text);
    assert_eq!(
        fresh.len(),
        1,
        "bench_baseline: the fresh file must hold exactly one run (emitter output)"
    );
    let fresh: BenchRun = fresh.pop().expect("checked above");
    assert!(
        !fresh.points.is_empty(),
        "bench_baseline: fresh run {fresh_path} contains no kernel points"
    );
    let width = fresh.threads;

    let mut runs: Vec<BenchRun> = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_bench_runs(&text),
        Err(_) => {
            println!("bench_baseline: no baseline at {baseline_path}, starting fresh");
            Vec::new()
        }
    };
    let (mut updated, mut added, mut kept) = (0usize, 0usize, 0usize);
    if let Some(run) = runs.iter_mut().find(|r| r.threads == width) {
        // Point-wise merge into the existing run at this width: replace
        // re-measured points in place (stable diffs), append new ones.
        kept = run.points.len();
        for p in fresh.points {
            if let Some(old) = run
                .points
                .iter_mut()
                .find(|o| o.config == p.config && o.kernel == p.kernel)
            {
                *old = p;
                updated += 1;
                kept -= 1;
            } else {
                run.points.push(p);
                added += 1;
            }
        }
    } else {
        added = fresh.points.len();
        runs.push(fresh);
    }
    runs.sort_by_key(|r| r.threads.unwrap_or(0));

    std::fs::write(&baseline_path, emit_bench_runs(&runs)).expect("write merged baseline");
    println!(
        "bench_baseline: merged into run at threads={} of {baseline_path} \
         ({updated} point(s) updated, {added} added, {kept} kept; {} run(s) total: {})",
        width.map_or_else(|| "unknown".to_string(), |t| t.to_string()),
        runs.len(),
        runs.iter()
            .map(|r| r.threads.unwrap_or(0).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
