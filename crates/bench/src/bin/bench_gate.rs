//! Perf regression gate: compares a fresh `bench_kernels` run against the
//! committed `BENCH_kernels.json` baseline and fails on gross regressions.
//!
//! Invocation (see `make bench-gate`, wired into CI):
//!
//! ```text
//! RADIX_BENCH_CANDIDATE=target/BENCH_kernels_gate.json \
//!     cargo run --release -p radix-bench --bin bench_gate
//! ```
//!
//! Environment:
//! * `RADIX_BENCH_BASELINE` — baseline path (default `BENCH_kernels.json`),
//! * `RADIX_BENCH_CANDIDATE` — fresh run to check (default
//!   `target/BENCH_kernels_gate.json`),
//! * `RADIX_BENCH_TOLERANCE` — allowed slowdown factor per kernel
//!   (default `2.0`; generous on purpose — CI runners differ from the
//!   machine that produced the baseline, so only gross regressions should
//!   trip the gate).
//!
//! Kernels present in the baseline but missing from the candidate fail the
//! gate (a silently dropped kernel is a regression of coverage); kernels
//! only in the candidate are reported but don't fail (new kernels land
//! before their baseline does). Exit code 1 on any failure.
//!
//! **Thread keying:** pool-dispatch (`*rayon*`) kernel timings depend on
//! the machine's core count, so a baseline measured on a 1-core container
//! must not gate a multi-core run (or vice versa). Both files carry a
//! top-level `"threads"` key; when the counts differ — or the baseline
//! predates the key — parallel kernels are reported informationally
//! (`skip`) and only the serial kernels gate. Coverage is still enforced:
//! a parallel kernel missing from the candidate fails regardless.

use radix_bench::{is_parallel_kernel, parse_bench_json, parse_bench_threads};

fn read_points(path: &str, role: &str) -> (Vec<radix_bench::BenchPoint>, Option<usize>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {role} {path}: {e}"));
    let points = parse_bench_json(&text);
    assert!(
        !points.is_empty(),
        "bench_gate: {role} {path} contains no kernel points"
    );
    (points, parse_bench_threads(&text))
}

fn main() {
    let baseline_path =
        std::env::var("RADIX_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let candidate_path = std::env::var("RADIX_BENCH_CANDIDATE")
        .unwrap_or_else(|_| "target/BENCH_kernels_gate.json".to_string());
    let tolerance = std::env::var("RADIX_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 1.0)
        .unwrap_or(2.0);

    let (baseline, base_threads) = read_points(&baseline_path, "baseline");
    let (candidate, cand_threads) = read_points(&candidate_path, "candidate");
    // Pool kernels only gate like-for-like: both runs must declare the
    // same thread count (a baseline predating the key matches nothing).
    let threads_match = matches!((base_threads, cand_threads), (Some(b), Some(c)) if b == c);

    let mut failures = 0usize;
    println!("bench_gate: candidate {candidate_path} vs baseline {baseline_path} (tolerance {tolerance:.2}x)");
    println!(
        "bench_gate: baseline threads {}, candidate threads {} -> pool kernels {}",
        base_threads.map_or_else(|| "unknown".to_string(), |t| t.to_string()),
        cand_threads.map_or_else(|| "unknown".to_string(), |t| t.to_string()),
        if threads_match {
            "gated"
        } else {
            "report-only (machine mismatch)"
        }
    );
    for base in &baseline {
        let found = candidate
            .iter()
            .find(|c| c.config == base.config && c.kernel == base.kernel);
        match found {
            Some(cand) => {
                let ratio = cand.seconds_per_iter / base.seconds_per_iter.max(1e-12);
                let gated = threads_match || !is_parallel_kernel(&base.kernel);
                let verdict = if ratio <= tolerance {
                    "ok"
                } else if gated {
                    failures += 1;
                    "FAIL"
                } else {
                    "skip"
                };
                println!(
                    "  [{verdict:>4}] {:<24} {:<24} {:>10.3} us -> {:>10.3} us  ({ratio:.2}x)",
                    base.config,
                    base.kernel,
                    base.seconds_per_iter * 1e6,
                    cand.seconds_per_iter * 1e6,
                );
            }
            None => {
                failures += 1;
                println!(
                    "  [FAIL] {:<24} {:<24} missing from candidate run",
                    base.config, base.kernel
                );
            }
        }
    }
    for cand in &candidate {
        if !baseline
            .iter()
            .any(|b| b.config == cand.config && b.kernel == cand.kernel)
        {
            println!(
                "  [new ] {:<24} {:<24} {:>10.3} us (no baseline yet)",
                cand.config,
                cand.kernel,
                cand.seconds_per_iter * 1e6
            );
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} kernel(s) regressed beyond {tolerance:.2}x (or went missing)"
        );
        std::process::exit(1);
    }
    println!("bench_gate: all kernels within {tolerance:.2}x of baseline");
}
