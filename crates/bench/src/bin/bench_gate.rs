//! Perf regression gate: compares a fresh `bench_kernels` run against the
//! committed `BENCH_kernels.json` baseline and fails on gross regressions.
//!
//! Invocation (see `make bench-gate`, wired into CI):
//!
//! ```text
//! RADIX_BENCH_CANDIDATE=target/BENCH_kernels.scratch.json \
//!     cargo run --release -p radix-bench --bin bench_gate
//! ```
//!
//! Environment:
//! * `RADIX_BENCH_BASELINE` — baseline path (default `BENCH_kernels.json`),
//! * `RADIX_BENCH_CANDIDATE` — fresh run(s) to check, as a colon-separated
//!   path list (default `target/BENCH_kernels.scratch.json`; CI uploads
//!   these files as workflow artifacts so failures are diagnosable
//!   offline). Each file must hold exactly one run, all at the same
//!   thread count; their points gate as one union — this is how the
//!   kernel scratch run and the `bench_serve` latency scratch run share
//!   one gate invocation,
//! * `RADIX_BENCH_TOLERANCE` — allowed slowdown factor per kernel
//!   (default `2.0`; generous on purpose — CI runners differ from the
//!   machine that produced the baseline, so only gross regressions should
//!   trip the gate),
//! * `RADIX_BENCH_SERVE_TOLERANCE` — allowed slowdown factor for `serve_*`
//!   latency points (default `3.0`, wider still: end-to-end latency
//!   through threads, timers, and channels is noisier than a pinned
//!   kernel min).
//!
//! Kernels present in the baseline but missing from the candidate fail the
//! gate (a silently dropped kernel is a regression of coverage); kernels
//! only in the candidate are reported but don't fail (new kernels land
//! before their baseline does). Serving points gate by the latency-gate
//! policy: `serve_p99_*` tail points fail on regression (they are the
//! serving SLO), while `serve_p50_*` and the closed-loop throughput point
//! are report-only — their deltas always print, and going missing still
//! fails coverage. On failure, a per-kernel delta table of every failing
//! point is printed at the end so the regression is diagnosable from the
//! CI log alone. Exit code 1 on any failure.
//!
//! **Thread keying:** pool-dispatch (`*rayon*`) kernel timings depend on
//! the machine's core count, so a baseline measured on a 1-core container
//! must not gate a multi-core run (or vice versa). The baseline may hold
//! **several runs**, one per thread count (`make bench-baseline` merges
//! them); the gate picks the run matching the candidate's `"threads"` key.
//! When no run matches, the first run still gates the serial kernels and
//! parallel kernels are reported informationally (`skip`). Coverage is
//! still enforced: a parallel kernel missing from the candidate fails
//! regardless.

use radix_bench::{
    is_parallel_kernel, is_serve_point, merge_candidate_runs, parse_bench_runs,
    select_baseline_run, serve_point_gates,
};

struct Failure {
    config: String,
    kernel: String,
    base_us: f64,
    cand_us: f64,
    ratio: f64,
    missing: bool,
}

fn main() {
    let baseline_path =
        std::env::var("RADIX_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let candidate_path = std::env::var("RADIX_BENCH_CANDIDATE")
        .unwrap_or_else(|_| "target/BENCH_kernels.scratch.json".to_string());
    let tolerance = std::env::var("RADIX_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 1.0)
        .unwrap_or(2.0);
    let serve_tolerance = std::env::var("RADIX_BENCH_SERVE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 1.0)
        .unwrap_or(3.0);

    let baseline_text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read baseline {baseline_path}: {e}"));
    let baseline_runs = parse_bench_runs(&baseline_text);
    // The candidate may span several scratch files (kernels + serve
    // latency), colon-separated; they union into one run and must agree
    // on the thread count they were measured at. A file with zero points
    // is a hard failure — see `merge_candidate_runs`.
    let files: Vec<(String, String)> = candidate_path
        .split(':')
        .filter(|p| !p.is_empty())
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("bench_gate: cannot read candidate {path}: {e}"));
            (path.to_string(), text)
        })
        .collect();
    let candidate = merge_candidate_runs(&files).unwrap_or_else(|e| {
        eprintln!("bench_gate: {e}");
        std::process::exit(1);
    });
    let cand_threads = candidate.threads;

    // Pool kernels only gate like-for-like: pick the baseline run measured
    // at the candidate's thread count; fall back to the first run (serial
    // kernels only) when no width matches. An empty selected run (the old
    // silent-pass hole: the gate loop would check zero kernels and report
    // success) is a hard failure.
    let (baseline, threads_match) = select_baseline_run(&baseline_runs, cand_threads)
        .unwrap_or_else(|e| {
            eprintln!("bench_gate: baseline {baseline_path}: {e}");
            std::process::exit(1);
        });

    let mut failures: Vec<Failure> = Vec::new();
    println!(
        "bench_gate: candidate {candidate_path} vs baseline {baseline_path} \
         (tolerance {tolerance:.2}x, serve {serve_tolerance:.2}x)"
    );
    println!(
        "bench_gate: baseline runs at threads [{}], candidate threads {} -> pool kernels {}",
        baseline_runs
            .iter()
            .map(|r| r.threads.map_or_else(|| "?".to_string(), |t| t.to_string()))
            .collect::<Vec<_>>()
            .join(", "),
        cand_threads.map_or_else(|| "unknown".to_string(), |t| t.to_string()),
        if threads_match {
            "gated (matched run)"
        } else {
            "report-only (no baseline run at this width)"
        }
    );
    for base in &baseline.points {
        let found = candidate
            .points
            .iter()
            .find(|c| c.config == base.config && c.kernel == base.kernel);
        match found {
            Some(cand) => {
                let ratio = cand.seconds_per_iter / base.seconds_per_iter.max(1e-12);
                // Serve points: wider tolerance, and only the p99 tail
                // points gate (p50/closed-loop are report-only). Pool
                // timings of either kind gate only at a matched width.
                let tol = if is_serve_point(&base.kernel) {
                    serve_tolerance
                } else {
                    tolerance
                };
                let gated = if is_serve_point(&base.kernel) {
                    threads_match && serve_point_gates(&base.kernel)
                } else {
                    threads_match || !is_parallel_kernel(&base.kernel)
                };
                let verdict = if ratio <= tol {
                    "ok"
                } else if gated {
                    failures.push(Failure {
                        config: base.config.clone(),
                        kernel: base.kernel.clone(),
                        base_us: base.seconds_per_iter * 1e6,
                        cand_us: cand.seconds_per_iter * 1e6,
                        ratio,
                        missing: false,
                    });
                    "FAIL"
                } else {
                    "skip"
                };
                println!(
                    "  [{verdict:>4}] {:<24} {:<28} {:>10.3} us -> {:>10.3} us  ({ratio:.2}x)",
                    base.config,
                    base.kernel,
                    base.seconds_per_iter * 1e6,
                    cand.seconds_per_iter * 1e6,
                );
            }
            None => {
                failures.push(Failure {
                    config: base.config.clone(),
                    kernel: base.kernel.clone(),
                    base_us: base.seconds_per_iter * 1e6,
                    cand_us: f64::NAN,
                    ratio: f64::INFINITY,
                    missing: true,
                });
                println!(
                    "  [FAIL] {:<24} {:<28} missing from candidate run",
                    base.config, base.kernel
                );
            }
        }
    }
    for cand in &candidate.points {
        if !baseline
            .points
            .iter()
            .any(|b| b.config == cand.config && b.kernel == cand.kernel)
        {
            println!(
                "  [new ] {:<24} {:<28} {:>10.3} us (no baseline yet)",
                cand.config,
                cand.kernel,
                cand.seconds_per_iter * 1e6
            );
        }
    }

    if !failures.is_empty() {
        // The full delta table of every offender, in one block at the end,
        // so a CI log tail shows the complete regression picture — not
        // just the first kernel that happened to trip.
        eprintln!();
        eprintln!(
            "bench_gate: {} kernel(s) regressed beyond tolerance \
             ({tolerance:.2}x kernels, {serve_tolerance:.2}x serve) or went missing:",
            failures.len()
        );
        eprintln!(
            "  {:<24} {:<28} {:>12} {:>12} {:>8}",
            "config", "kernel", "baseline", "candidate", "ratio"
        );
        for f in &failures {
            if f.missing {
                eprintln!(
                    "  {:<24} {:<28} {:>9.3} us {:>12} {:>8}",
                    f.config, f.kernel, f.base_us, "missing", "-"
                );
            } else {
                eprintln!(
                    "  {:<24} {:<28} {:>9.3} us {:>9.3} us {:>7.2}x",
                    f.config, f.kernel, f.base_us, f.cand_us, f.ratio
                );
            }
        }
        std::process::exit(1);
    }
    println!(
        "bench_gate: all kernels within tolerance \
         ({tolerance:.2}x kernels, {serve_tolerance:.2}x serve) of baseline"
    );
}
