//! Pinned kernel benchmark → `BENCH_kernels.json`.
//!
//! Runs a fixed subset of the SpMM kernel matrix — the two acceptance
//! layer configs (`n=16384, deg=8` and `n=4096, deg=16`) × {generic CSR
//! unfused, prepared ELL, prepared ELL fused, cache-tiled, **transposed**
//! (untiled vs tiled — the backward/training orientation), the
//! activation-sparsity schedules at 90% sparse input, serial and Rayon,
//! plus the multi-layer fused Challenge forward pass} — and writes
//! edges/second per kernel as JSON, so successive PRs have a
//! machine-readable perf baseline to diff against (`make bench-gate`
//! compares a fresh run to the committed baseline).
//!
//! The JSON records the worker-pool width as a top-level `"threads"` key
//! (the machine key): pool-dispatch (`*rayon*`) numbers measured on a
//! 1-core container are degenerate, so the gate only compares them
//! between runs at the same thread count.
//!
//! Invocation (see `make bench-json`):
//!
//! ```text
//! cargo run --release -p radix-bench --bin bench_kernels
//! ```
//!
//! Environment:
//! * `RADIX_BENCH_QUICK=1` — min-of-three timed iterations per kernel
//!   (CI smoke and the perf gate: fast, and the min statistic resists
//!   shared-runner scheduler noise; full-budget means remain the
//!   committed-baseline methodology),
//! * `RADIX_BENCH_OUT` — output path (default `BENCH_kernels.json`).

use std::fmt::Write as _;
use std::hint::black_box;

use radix_bench::format_json_f64;
use radix_challenge::{ChallengeNetwork, InferWorkspace};
use radix_nn::{
    Activation, GradWorkspace, GradWorkspacePool, Layer, LayerGrads, Loss, Network, SparseLinear,
    Targets,
};
use radix_sparse::ops;
use radix_sparse::{
    ActivationSchedule, Bias, CsrMatrix, CyclicShift, DenseMatrix, Epilogue, PreparedWeights,
};

/// Wall-clock budget per kernel point in normal mode.
const TIME_BUDGET_SECS: f64 = 0.25;
/// Iteration cap per kernel point in normal mode.
const MAX_ITERS: u32 = 200;

struct KernelResult {
    name: &'static str,
    seconds_per_iter: f64,
    edges_per_sec: f64,
}

/// [`radix_bench::time_kernel`] at this binary's budget.
fn time_kernel<F: FnMut()>(quick: bool, f: F) -> f64 {
    radix_bench::time_kernel(quick, TIME_BUDGET_SECS, MAX_ITERS, f)
}

fn layer(n: usize, degree: usize) -> CsrMatrix<f32> {
    CyclicShift::radix_submatrix::<u64>(n, degree, 1).map(|_| 1.0 / degree as f32)
}

fn activations(rows: usize, cols: usize) -> DenseMatrix<f32> {
    let mut m = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        let r: &mut [f32] = m.row_mut(i);
        for (j, v) in r.iter_mut().enumerate() {
            *v = ((i * 31 + j * 17) % 13) as f32 * 0.07;
        }
    }
    m
}

/// A 90%-sparse activation batch (exactly one in ten entries nonzero) —
/// the post-ReLU deep-layer regime the scatter schedule targets.
fn sparse_activations(rows: usize, cols: usize) -> DenseMatrix<f32> {
    let mut m = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        let r: &mut [f32] = m.row_mut(i);
        for (j, v) in r.iter_mut().enumerate() {
            if (i * 31 + j * 17) % 10 == 0 {
                *v = ((i + j) % 13) as f32 * 0.07 + 0.05;
            }
        }
    }
    m
}

fn bench_config(n: usize, degree: usize, batch: usize, quick: bool) -> (u64, Vec<KernelResult>) {
    let w = layer(n, degree);
    let prepared = PreparedWeights::from_csr(w.clone());
    let mut tiled = prepared.clone();
    tiled.tile();
    assert!(prepared.is_ell(), "RadiX layers have constant degree");
    let x = activations(batch, n);
    let edges = (batch * w.nnz()) as u64;
    let epi_identity = Epilogue::<f32>::identity();
    let epi_fused = Epilogue::new(Bias::Uniform(-0.3f32), |v: f32| v.clamp(0.0, 32.0));
    let mut out = DenseMatrix::<f32>::zeros(batch, n);

    // The unfused baselines replicate the pre-prepared-kernel layer step:
    // allocate-per-call product, then a second pass for bias + clamp.
    let mut results = Vec::new();
    let mut push = |name: &'static str, secs: f64| {
        results.push(KernelResult {
            name,
            seconds_per_iter: secs,
            edges_per_sec: edges as f64 / secs.max(1e-12),
        });
    };

    push(
        "csr_serial_unfused",
        time_kernel(quick, || {
            let mut y = ops::dense_spmm(&x, &w).unwrap();
            y.map_inplace(|v| (v - 0.3).clamp(0.0, 32.0));
            black_box(y.as_slice().len());
        }),
    );
    push(
        "csr_rayon_unfused",
        time_kernel(quick, || {
            let mut y = ops::par_dense_spmm(&x, &w).unwrap();
            y.map_inplace(|v| (v - 0.3).clamp(0.0, 32.0));
            black_box(y.as_slice().len());
        }),
    );
    push(
        "prepared_serial",
        time_kernel(quick, || {
            prepared.spmm_into(&x, &mut out, &epi_identity).unwrap();
            black_box(out.as_slice().len());
        }),
    );
    push(
        "prepared_serial_fused",
        time_kernel(quick, || {
            prepared.spmm_into(&x, &mut out, &epi_fused).unwrap();
            black_box(out.as_slice().len());
        }),
    );
    push(
        "prepared_rayon_fused",
        time_kernel(quick, || {
            prepared.par_spmm_into(&x, &mut out, &epi_fused).unwrap();
            black_box(out.as_slice().len());
        }),
    );

    // Cache-tiled variants: the same products on the column-tiled,
    // tile-major schedule (RADIX_TILE_COLS-wide tiles; the tiled copy was
    // built next to `prepared` above).
    push(
        "prepared_tiled_fused",
        time_kernel(quick, || {
            tiled.spmm_tiled_into(&x, &mut out, &epi_fused).unwrap();
            black_box(out.as_slice().len());
        }),
    );
    push(
        "prepared_tiled_rayon_fused",
        time_kernel(quick, || {
            tiled.par_spmm_tiled_into(&x, &mut out, &epi_fused).unwrap();
            black_box(out.as_slice().len());
        }),
    );

    // Transposed (backward/training) orientation: untiled per-row gather
    // vs the tile-major schedule (zero-copy over the ELL layout — the
    // `prepared` copy is untiled, proving no forward tiles are needed).
    // Identity epilogue, as in the backward pass.
    push(
        "transposed_serial",
        time_kernel(quick, || {
            prepared
                .spmm_transposed_into(&x, &mut out, &epi_identity)
                .unwrap();
            black_box(out.as_slice().len());
        }),
    );
    push(
        "transposed_tiled",
        time_kernel(quick, || {
            prepared
                .spmm_transposed_tiled_into(&x, &mut out, &epi_identity)
                .unwrap();
            black_box(out.as_slice().len());
        }),
    );
    push(
        "transposed_tiled_rayon",
        time_kernel(quick, || {
            prepared
                .par_spmm_transposed_tiled_into(&x, &mut out, &epi_identity)
                .unwrap();
            black_box(out.as_slice().len());
        }),
    );

    // Activation-sparsity schedules at 90% sparse input (the deep
    // post-ReLU regime): the branch-free gather that multiplies zeros
    // through vs the zero-skipping scatter the Auto dispatch switches to.
    {
        let x90 = sparse_activations(batch, n);
        push(
            "tiled_act90_gather",
            time_kernel(quick, || {
                tiled
                    .spmm_tiled_scheduled_into(
                        &x90,
                        &mut out,
                        &epi_fused,
                        ActivationSchedule::Gather,
                    )
                    .unwrap();
                black_box(out.as_slice().len());
            }),
        );
        push(
            "tiled_act90_scatter",
            time_kernel(quick, || {
                tiled
                    .spmm_tiled_scheduled_into(
                        &x90,
                        &mut out,
                        &epi_fused,
                        ActivationSchedule::Scatter,
                    )
                    .unwrap();
                black_box(out.as_slice().len());
            }),
        );
    }

    // Multi-layer tile fusion: a 2-layer Challenge network at this width,
    // timed per layer so the number is comparable to the single-product
    // kernels above (same batch·nnz edge budget per layer).
    {
        let net = ChallengeNetwork::from_layers(vec![w.clone(), w.clone()], -0.3, 32.0);
        let mut ws = InferWorkspace::for_network(&net, batch);
        let secs = time_kernel(quick, || {
            net.forward_with(&x, false, &mut ws);
            black_box(ws.output().as_slice().len());
        });
        push("fused_2layer_serial_per_layer", secs / 2.0);
    }

    // Training: a full 2-layer gradient batch (forward trace + loss
    // gradient + backward) at this width — serial, the retired
    // copy-per-chunk `into_par_iter` shape (replicated below as the
    // historical baseline), and the pool-native path with zero-copy chunk
    // views and the fixed-order reduction. The acceptance criterion is
    // pool ≥ chunked_alloc at equal thread count.
    {
        const TRAIN_CHUNKS: usize = 4;
        let net = Network::new(
            vec![
                Layer::Sparse(SparseLinear::new(w.clone(), Activation::Tanh)),
                Layer::Sparse(SparseLinear::new(w.clone(), Activation::Identity)),
            ],
            Loss::Mse,
        );
        let y = activations(batch, net.n_out());
        let mut ws = GradWorkspace::for_network(&net, batch);
        push(
            "train_step_serial",
            time_kernel(quick, || {
                black_box(net.grad_batch_with(&x, Targets::values(&y), &mut ws));
            }),
        );
        push(
            "train_step_chunked_alloc_rayon",
            time_kernel(quick, || {
                black_box(old_copying_par_grad(&net, &x, &y, TRAIN_CHUNKS));
            }),
        );
        let mut pool = GradWorkspacePool::for_network(&net, batch, TRAIN_CHUNKS);
        push(
            "train_step_pool_rayon",
            time_kernel(quick, || {
                black_box(net.par_grad_batch_with(
                    &x,
                    Targets::values(&y),
                    TRAIN_CHUNKS,
                    &mut pool,
                    &mut ws,
                ));
            }),
        );
    }

    // SpGEMM (CSR × CSR) points so the two-pass par_spmm stitch has a
    // tracked baseline too; "edges" here is the same batch·nnz budget for
    // comparability of the JSON schema, not a flop count.
    push(
        "spgemm_serial",
        time_kernel(quick, || {
            black_box(ops::spmm(&w, &w).unwrap().nnz());
        }),
    );
    push(
        "spgemm_rayon",
        time_kernel(quick, || {
            black_box(ops::par_spmm(&w, &w).unwrap().nnz());
        }),
    );

    (edges, results)
}

/// The data-parallel gradient shape this PR retired, replicated as the
/// bench baseline the pool-native path is measured against: one freshly
/// allocated input/target copy plus one freshly allocated gradient vector
/// set **per chunk per call**, fanned out with `into_par_iter`, combined
/// with a sequential weighted sweep.
fn old_copying_par_grad(
    net: &Network,
    x: &DenseMatrix<f32>,
    y: &DenseMatrix<f32>,
    chunks: usize,
) -> f32 {
    use rayon::prelude::*;
    let batch = x.nrows();
    let chunk_size = batch.div_ceil(chunks);
    let ranges: Vec<std::ops::Range<usize>> = (0..batch)
        .step_by(chunk_size)
        .map(|start| start..(start + chunk_size).min(batch))
        .collect();
    let partials: Vec<(usize, f32, Vec<LayerGrads>)> = ranges
        .into_par_iter()
        .map(|range| {
            let rows = range.len();
            let mut xs = DenseMatrix::zeros(rows, x.ncols());
            let mut ys = DenseMatrix::zeros(rows, y.ncols());
            for (local, global) in range.enumerate() {
                let dst: &mut [f32] = xs.row_mut(local);
                dst.copy_from_slice(x.row(global));
                let dst: &mut [f32] = ys.row_mut(local);
                dst.copy_from_slice(y.row(global));
            }
            let (loss, grads) = net.grad_batch(&xs, Targets::values(&ys));
            (rows, loss, grads)
        })
        .collect();
    let mut total = 0.0f32;
    let mut combined: Vec<LayerGrads> = net
        .layers()
        .iter()
        .map(|l| {
            let (w, b) = l.param_lens();
            LayerGrads::zeros(w, b)
        })
        .collect();
    for (rows, loss, grads) in partials {
        let weight = rows as f32 / batch as f32;
        total += loss * weight;
        for (acc, g) in combined.iter_mut().zip(&grads) {
            acc.add_scaled(g, weight);
        }
    }
    std::hint::black_box(combined.len());
    total
}

fn main() {
    let quick = std::env::var("RADIX_BENCH_QUICK").is_ok_and(|v| v == "1");
    let out_path =
        std::env::var("RADIX_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".to_string());

    // The pinned subset: the two acceptance-criteria layer configs.
    let configs = [(16384usize, 8usize, 32usize), (4096, 16, 64)];

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"radix-bench-kernels/v2\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());
    json.push_str(
        "  \"note\": \"edges/sec per kernel on the pinned layer configs; \
         quick=true means min-of-3-iteration CI smoke/gate numbers; pool \
         (*rayon*) kernels gate only against baselines at equal threads\",\n",
    );
    json.push_str("  \"configs\": [\n");
    for (ci, &(n, degree, batch)) in configs.iter().enumerate() {
        eprintln!("bench_kernels: n={n} deg={degree} batch={batch} (quick={quick})");
        let (edges, results) = bench_config(n, degree, batch, quick);
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"n{n}_deg{degree}_b{batch}\",");
        let _ = writeln!(json, "      \"n\": {n},");
        let _ = writeln!(json, "      \"degree\": {degree},");
        let _ = writeln!(json, "      \"batch\": {batch},");
        let _ = writeln!(json, "      \"edges_per_iter\": {edges},");
        let _ = writeln!(json, "      \"kernels\": [");
        for (ki, k) in results.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"name\": \"{}\", \"seconds_per_iter\": {}, \"edges_per_sec\": {}}}{}",
                k.name,
                format_json_f64(k.seconds_per_iter),
                format_json_f64(k.edges_per_sec),
                if ki + 1 == results.len() { "" } else { "," }
            );
            println!(
                "{:>22}  n{n}_deg{degree}_b{batch}  {:>12.3} us/iter  {:>12.3e} edges/s",
                k.name,
                k.seconds_per_iter * 1e6,
                k.edges_per_sec
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if ci + 1 == configs.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
