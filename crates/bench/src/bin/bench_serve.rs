//! Serving-latency benchmark → `serve_*` points for `BENCH_kernels.json`.
//!
//! Measures the async serving engine (`radix_challenge::serve`) as a live
//! system, not a kernel: a closed-loop throughput point (as many
//! concurrent clients as the micro-batch holds rows, submitting
//! back-to-back), then p50/p99 response latency at three offered loads —
//! 10%, 30%, and 60% of the measured closed-loop capacity. Relative loads
//! keep the points meaningful across machines: 150 rows/s is "low load"
//! on the 1-core container and on a fast runner alike.
//!
//! The emitted JSON is the same line-oriented single-run shape as
//! `bench_kernels` (a `"threads"` key, one config, a `kernels` array), so
//! `bench_baseline` merges it point-wise into the committed baseline and
//! `bench_gate` diffs it — `seconds_per_iter` carries the latency
//! percentile (or seconds-per-row for the closed-loop point), and
//! `edges_per_sec` the corresponding edge throughput of the offered load.
//! Latency points are thread-keyed like the pool kernels (blocks execute
//! on the worker pool) and gate under the wider
//! `RADIX_BENCH_SERVE_TOLERANCE`; only the `serve_p99_*` tail points gate.
//!
//! After the latency loads, an **overload phase** measures graceful
//! degradation: a deliberately slowed engine (injected compute delay of a
//! quarter of the budget, so block cost is commensurate with the
//! deadline) takes 150% of its own closed-loop capacity through
//! `infer_within`. The accepted-request p99 gates as
//! `serve_shed_p99_rel150`; the shed fraction rides along report-only as
//! `serve_shed_rate_rel150` (its `seconds_per_iter` carries the
//! dimensionless shed rate).
//!
//! A final **train-while-serve phase** measures the scheduler sharing
//! story: an `OnlineSession` serves a trainable sparse net while
//! checkpointed fine-tuning runs on the same worker pool, publishing
//! committed checkpoints into the live engine. Accepted-request p99
//! under live training gates as `serve_p99_train_rel30` (offered load =
//! 30% of that engine's own closed-loop capacity); the during-training
//! shed fraction rides along as `serve_train_shed_rate_rel30`.
//!
//! The run also **enforces the serving acceptance criteria**: at the low
//! (10%) load, p99 must come in at or under the configured end-to-end
//! deadline budget, and in the overload phase the accepted p99 must stay
//! inside the budget while a non-zero share of the excess is shed typed
//! (`Overloaded` / `DeadlineExceeded`) — exit code 1 otherwise.
//!
//! Invocation (see `make bench-serve`):
//!
//! ```text
//! cargo run --release -p radix-bench --bin bench_serve
//! ```
//!
//! Environment:
//! * `RADIX_BENCH_QUICK=1` — fewer samples per point (CI smoke/gate),
//! * `RADIX_BENCH_OUT` — output path (default
//!   `target/BENCH_serve_fresh.json`),
//! * `RADIX_SERVE_DEADLINE_US` — end-to-end latency budget the engine is
//!   configured with; also the p99 acceptance bound. The bench defaults
//!   it to 20000 (2× the engine default): on shared CI runners and 1-core
//!   containers, absolute scheduler jitter of several milliseconds is
//!   routine, and the budget must absorb it on top of the batcher wait.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use radix_bench::{format_json_f64, percentile};
use radix_challenge::{
    ChallengeNetwork, FaultInjector, FaultPlan, OnlineConfig, OnlineSession, ServeConfig,
    ServeEngine, ServeError, ServeHandle,
};
use radix_nn::{
    Activation, Layer, Loss, Network, Optimizer, SparseLinear, TrainConfig, TrainRestartPolicy,
};
use radix_sparse::{CsrMatrix, CyclicShift, DenseMatrix};

/// The pinned serving config: `n=4096, deg=16` × 2 layers (one of the two
/// kernel acceptance configs), 8-row micro-batches.
const N: usize = 4096;
const DEGREE: usize = 16;
const MAX_BATCH: usize = 8;

/// Offered loads as percent of measured closed-loop capacity.
const REL_LOADS: [usize; 3] = [10, 30, 60];

/// Offered load of the overload phase, percent of the *slowed* engine's
/// measured closed-loop capacity.
const SHED_REL: usize = 150;

fn layer(n: usize, degree: usize) -> CsrMatrix<f32> {
    CyclicShift::radix_submatrix::<u64>(n, degree, 1).map(|_| 1.0 / degree as f32)
}

/// Deterministic dense request rows (same generator as `bench_kernels`).
fn request_rows(rows: usize, cols: usize) -> DenseMatrix<f32> {
    let mut m = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        let r: &mut [f32] = m.row_mut(i);
        for (j, v) in r.iter_mut().enumerate() {
            *v = ((i * 31 + j * 17) % 13) as f32 * 0.07;
        }
    }
    m
}

/// Closed-loop throughput: `clients` threads submit `per_client` rows
/// back-to-back; returns rows/second.
fn closed_loop(
    handle: &ServeHandle,
    x: &DenseMatrix<f32>,
    clients: usize,
    per_client: usize,
) -> f64 {
    let start_line = Barrier::new(clients + 1);
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = handle.client();
                let start_line = &start_line;
                s.spawn(move || {
                    let mut out = Vec::new();
                    // Per-thread warm-up: lazy parking state, output capacity.
                    for i in 0..4 {
                        client
                            .infer_into(x.row((c + i) % x.nrows()), &mut out)
                            .unwrap();
                    }
                    start_line.wait();
                    for i in 0..per_client {
                        client
                            .infer_into(x.row((c + i) % x.nrows()), &mut out)
                            .unwrap();
                    }
                })
            })
            .collect();
        start_line.wait();
        let t = Instant::now();
        for h in handles {
            h.join().expect("closed-loop client panicked");
        }
        elapsed = t.elapsed();
    });
    (clients * per_client) as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Paced open-ish loop at `offered` rows/second across `threads`
/// submitters (each pacing at `offered / threads`); returns every
/// response latency in seconds.
fn latency_at(
    handle: &ServeHandle,
    x: &DenseMatrix<f32>,
    threads: usize,
    per_thread: usize,
    offered: f64,
) -> Vec<f64> {
    let interval = Duration::from_secs_f64(threads as f64 / offered.max(1e-9));
    let start_line = Barrier::new(threads);
    let mut all = Vec::with_capacity(threads * per_thread);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|c| {
                let client = handle.client();
                let start_line = &start_line;
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut latencies = Vec::with_capacity(per_thread);
                    for i in 0..2 {
                        client
                            .infer_into(x.row((c + i) % x.nrows()), &mut out)
                            .unwrap();
                    }
                    start_line.wait();
                    // Pace against an absolute schedule so one slow
                    // response does not shift every later arrival.
                    let t0 = Instant::now();
                    for i in 0..per_thread {
                        let due = interval * i as u32;
                        if let Some(wait) = due.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let t = Instant::now();
                        client
                            .infer_into(x.row((c + i) % x.nrows()), &mut out)
                            .unwrap();
                        latencies.push(t.elapsed().as_secs_f64());
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("latency client panicked"));
        }
    });
    all
}

/// Outcome tally of the overload phase: latencies of the requests the
/// engine accepted and served, and the count it shed (typed
/// `Overloaded` / `DeadlineExceeded`).
struct ShedRun {
    accepted: Vec<f64>,
    shed: usize,
    elapsed: Duration,
}

/// Paced overload loop: `threads` submitters offer `offered` rows/second
/// in aggregate through `infer_within(timeout)`. Excess load must come
/// back as a typed shed, never as a late response and never as a hang —
/// any other error fails the bench.
fn shed_at(
    handle: &ServeHandle,
    x: &DenseMatrix<f32>,
    threads: usize,
    per_thread: usize,
    offered: f64,
    timeout: Duration,
) -> ShedRun {
    let interval = Duration::from_secs_f64(threads as f64 / offered.max(1e-9));
    let start_line = Barrier::new(threads + 1);
    let mut accepted = Vec::with_capacity(threads * per_thread);
    let mut shed = 0usize;
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|c| {
                let client = handle.client();
                let start_line = &start_line;
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut latencies = Vec::with_capacity(per_thread);
                    let mut shed = 0usize;
                    // Per-thread warm-up (blocking, unbounded): lazy
                    // parking state and output capacity, off the clock.
                    client.infer_into(x.row(c % x.nrows()), &mut out).unwrap();
                    start_line.wait();
                    let t0 = Instant::now();
                    for i in 0..per_thread {
                        let due = interval * i as u32;
                        if let Some(wait) = due.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let t = Instant::now();
                        match client.infer_within_into(
                            x.row((c + i) % x.nrows()),
                            &mut out,
                            timeout,
                        ) {
                            Ok(()) => latencies.push(t.elapsed().as_secs_f64()),
                            Err(ServeError::Overloaded | ServeError::DeadlineExceeded) => shed += 1,
                            Err(e) => panic!("overload phase hit a non-shed error: {e}"),
                        }
                    }
                    (latencies, shed)
                })
            })
            .collect();
        start_line.wait();
        let t = Instant::now();
        for h in handles {
            let (lat, sh) = h.join().expect("shed client panicked");
            accepted.extend(lat);
            shed += sh;
        }
        elapsed = t.elapsed();
    });
    ShedRun {
        accepted,
        shed,
        elapsed,
    }
}

fn main() {
    let quick = std::env::var("RADIX_BENCH_QUICK").is_ok_and(|v| v == "1");
    let out_path = std::env::var("RADIX_BENCH_OUT")
        .unwrap_or_else(|_| "target/BENCH_serve_fresh.json".to_string());

    let w = layer(N, DEGREE);
    let net = ChallengeNetwork::from_layers(vec![w.clone(), w], -0.3, 32.0);
    let edges_per_row = net.total_nnz() as f64;
    let x = request_rows(MAX_BATCH * 2, net.n_in());

    let config = ServeConfig {
        max_batch: MAX_BATCH,
        deadline_us: radix_sparse::kernel::env_usize("RADIX_SERVE_DEADLINE_US", 20_000) as u64,
        slots: 4 * MAX_BATCH,
        queue: 4 * MAX_BATCH,
        parallel: true,
    };
    let handle = ServeEngine::start(net.clone(), &config);
    eprintln!(
        "bench_serve: n={N} deg={DEGREE} max_batch={MAX_BATCH} deadline={}us \
         (batcher wait {}us) threads={} quick={quick}",
        config.deadline_us,
        handle.batch_wait_us(),
        rayon::current_num_threads(),
    );

    // Closed-loop capacity first: the relative load points hang off it.
    let (clients, per_client) = if quick {
        (MAX_BATCH, 40)
    } else {
        (MAX_BATCH, 200)
    };
    let capacity = closed_loop(&handle, &x, clients, per_client);
    println!(
        "{:>22}  {:>10.1} rows/s  {:>12.3e} edges/s  ({clients} clients closed loop)",
        "serve_row_closed_loop",
        capacity,
        capacity * edges_per_row
    );

    struct ServePoint {
        name: String,
        seconds: f64,
        edges_per_sec: f64,
    }
    let mut points = vec![ServePoint {
        name: "serve_row_closed_loop".to_string(),
        seconds: 1.0 / capacity.max(1e-9),
        edges_per_sec: capacity * edges_per_row,
    }];

    // Latency vs offered load, low to high.
    let (lat_threads, per_thread) = if quick { (4, 30) } else { (4, 100) };
    let mut low_load_p99 = f64::INFINITY;
    for rel in REL_LOADS {
        let offered = capacity * rel as f64 / 100.0;
        let samples = latency_at(&handle, &x, lat_threads, per_thread, offered);
        let p50 = percentile(&samples, 0.50);
        let p99 = percentile(&samples, 0.99);
        if rel == REL_LOADS[0] {
            low_load_p99 = p99;
        }
        println!(
            "{:>22}  p50 {:>9.3} ms  p99 {:>9.3} ms  ({:>8.1} rows/s offered, {} samples)",
            format!("serve_rel{rel}"),
            p50 * 1e3,
            p99 * 1e3,
            offered,
            samples.len()
        );
        points.push(ServePoint {
            name: format!("serve_p50_rel{rel}"),
            seconds: p50,
            edges_per_sec: offered * edges_per_row,
        });
        points.push(ServePoint {
            name: format!("serve_p99_rel{rel}"),
            seconds: p99,
            edges_per_sec: offered * edges_per_row,
        });
    }

    let stats = handle
        .shutdown()
        .expect("serve engine panicked during bench");
    println!(
        "serve stats: {} rows in {} batches (max {} rows; {} full / {} deadline flushes)",
        stats.rows, stats.batches, stats.max_rows, stats.full_flushes, stats.deadline_flushes
    );

    // Overload phase: a deliberately slowed engine (injected compute
    // delay of a quarter of the budget) makes 150% of closed-loop
    // capacity a *real* overload at laptop scale — block cost is
    // commensurate with the deadline, so excess demand has to be shed.
    // The fast engine above never gets there: its blocks cost far less
    // than the budget, and bounded client concurrency can't queue enough
    // work to threaten any deadline.
    let shed_delay_us = config.deadline_us / 4;
    let shed_config = ServeConfig {
        max_batch: MAX_BATCH,
        deadline_us: config.deadline_us,
        // Deep slot pool: admission must be decided by the deadline
        // predictor, not by running out of slots.
        slots: 8 * MAX_BATCH,
        queue: 8 * MAX_BATCH,
        parallel: true,
    };
    let shed_handle = ServeEngine::start_with_faults(
        net,
        &shed_config,
        FaultInjector::new(FaultPlan {
            compute_delay_us: shed_delay_us,
            ..FaultPlan::default()
        }),
    );
    let (shed_clients, shed_per_client) = if quick {
        (MAX_BATCH, 10)
    } else {
        (MAX_BATCH, 25)
    };
    let shed_capacity = closed_loop(&shed_handle, &x, shed_clients, shed_per_client);
    let shed_offered = shed_capacity * SHED_REL as f64 / 100.0;
    // Per-request deadline at 80% of the budget: the engine guarantees
    // accepted work completes by *its* deadline, and the remaining 20%
    // absorbs wake-up and scheduler jitter before the p99-vs-budget gate.
    let shed_timeout = Duration::from_micros(config.deadline_us * 4 / 5);
    let (shed_threads, shed_per_thread) = if quick { (32, 20) } else { (32, 40) };
    let run = shed_at(
        &shed_handle,
        &x,
        shed_threads,
        shed_per_thread,
        shed_offered,
        shed_timeout,
    );
    let shed_stats = shed_handle
        .shutdown()
        .expect("slowed serve engine panicked during bench");
    let submitted = shed_threads * shed_per_thread;
    let shed_rate = run.shed as f64 / submitted as f64;
    let shed_p99 = percentile(&run.accepted, 0.99);
    let accepted_per_sec = run.accepted.len() as f64 / run.elapsed.as_secs_f64().max(1e-9);
    println!(
        "{:>22}  p99 {:>9.3} ms  shed {:>5.1}%  ({:>8.1} rows/s offered, {} accepted / {} shed)",
        format!("serve_shed_rel{SHED_REL}"),
        shed_p99 * 1e3,
        shed_rate * 100.0,
        shed_offered,
        run.accepted.len(),
        run.shed,
    );
    println!(
        "shed engine stats: {} rows served, {} shed at deadline, {} shed at admission",
        shed_stats.rows, shed_stats.shed_deadline, shed_stats.shed_overload
    );
    points.push(ServePoint {
        name: format!("serve_shed_p99_rel{SHED_REL}"),
        seconds: shed_p99,
        edges_per_sec: accepted_per_sec * edges_per_row,
    });
    // Report-only companion point: seconds_per_iter carries the shed
    // *fraction* (dimensionless) so overload behavior shows up in the
    // gate log next to the tail it protects.
    points.push(ServePoint {
        name: format!("serve_shed_rate_rel{SHED_REL}"),
        seconds: shed_rate,
        edges_per_sec: shed_offered * edges_per_row,
    });

    // Train-while-serve phase: an OnlineSession serves a trainable
    // sparse net while checkpointed fine-tuning runs on the submitter
    // thread of the *same* worker pool (serve flushes ride the
    // scheduler's high-priority lane) and publishes every committed
    // checkpoint into the engine. The accepted-request p99 measured
    // while training is live gates as `serve_p99_train_rel30`; the
    // during-training shed fraction rides along report-only.
    const TRAIN_N: usize = 256;
    const TRAIN_DEG: usize = 8;
    const TRAIN_LAYERS: usize = 3;
    let train_net_layers = (0..TRAIN_LAYERS)
        .map(|l| {
            let w =
                CyclicShift::radix_submatrix::<u64>(TRAIN_N, TRAIN_DEG, TRAIN_DEG.pow(l as u32))
                    .map(|_| 1.0 / TRAIN_DEG as f32);
            Layer::Sparse(SparseLinear::new(w, Activation::Relu))
        })
        .collect();
    let mut train_net = Network::new(train_net_layers, Loss::Mse);
    let train_edges_per_row = (TRAIN_N * TRAIN_DEG * TRAIN_LAYERS) as f64;
    let tx = request_rows(2048, TRAIN_N);
    let mut ty = DenseMatrix::zeros(tx.nrows(), TRAIN_N);
    for i in 0..tx.nrows() {
        for j in 0..TRAIN_N {
            ty.set(i, j, 0.5 * tx.get(i, j));
        }
    }
    let online_cfg = OnlineConfig {
        serve: ServeConfig {
            max_batch: MAX_BATCH,
            deadline_us: config.deadline_us,
            slots: 4 * MAX_BATCH,
            queue: 4 * MAX_BATCH,
            parallel: true,
        },
        bias: -0.3,
        ymax: 32.0,
        train: TrainConfig {
            epochs: if quick { 4 } else { 16 },
            batch_size: 128,
            seed: 7,
            parallel_chunks: 4,
            weight_decay: 1e-3,
            grad_clip: Some(1.0),
            ..TrainConfig::default()
        },
        publish_every: 4,
        keep: 2,
        restarts: TrainRestartPolicy::default(),
        publish_poll: Duration::from_millis(2),
    };
    let ckpt_dir = std::path::PathBuf::from("target/bench-online-ckpts");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut session = OnlineSession::start(&train_net, &online_cfg, &ckpt_dir)
        .expect("sparse training net must start serving");
    let ox = request_rows(MAX_BATCH * 2, TRAIN_N);
    let online_capacity = closed_loop(
        session.handle(),
        &ox,
        MAX_BATCH,
        if quick { 40 } else { 120 },
    );
    let train_offered = online_capacity * 0.30;
    let min_per_thread = if quick { 20 } else { 50 };
    let mut opt = Optimizer::sgd(0.01);
    let stop = AtomicBool::new(false);
    let train_clients: Vec<_> = (0..lat_threads).map(|_| session.client()).collect();
    let t_train = Instant::now();
    let (train_report, train_samples, train_shed) = std::thread::scope(|s| {
        let stop = &stop;
        let ox = &ox;
        let traffic: Vec<_> = train_clients
            .into_iter()
            .enumerate()
            .map(|(c, client)| {
                s.spawn(move || {
                    let interval =
                        Duration::from_secs_f64(lat_threads as f64 / train_offered.max(1e-9));
                    let mut out = Vec::new();
                    let mut lat = Vec::with_capacity(min_per_thread * 2);
                    let mut shed = 0u64;
                    for i in 0..2 {
                        let _ = client.infer_into(ox.row((c + i) % ox.nrows()), &mut out);
                    }
                    let t0 = Instant::now() + interval.mul_f64(c as f64 / lat_threads as f64);
                    let mut k = 0u32;
                    // Paced open-ish loop until training finishes (with a
                    // floor of samples so quick runs still gate on real
                    // data — the floor's tail may land just after
                    // training completes).
                    while !stop.load(Ordering::Acquire) || lat.len() < min_per_thread {
                        let target = t0 + interval.mul_f64(f64::from(k));
                        let now = Instant::now();
                        if now < target {
                            std::thread::sleep(target - now);
                        }
                        let t = Instant::now();
                        match client.infer_into(ox.row((k as usize + c) % ox.nrows()), &mut out) {
                            Ok(()) => lat.push(t.elapsed().as_secs_f64()),
                            Err(_) => shed += 1,
                        }
                        k += 1;
                    }
                    (lat, shed)
                })
            })
            .collect();
        let report = session
            .fine_tune_regressor(&mut train_net, &tx, &ty, &mut opt, &online_cfg)
            .expect("bench fine-tune must succeed");
        stop.store(true, Ordering::Release);
        let mut samples = Vec::new();
        let mut shed = 0u64;
        for h in traffic {
            let (l, sh) = h.join().expect("train-traffic client panicked");
            samples.extend(l);
            shed += sh;
        }
        (report, samples, shed)
    });
    let train_elapsed = t_train.elapsed();
    let train_p99 = percentile(&train_samples, 0.99);
    let train_shed_rate = train_shed as f64 / (train_samples.len() as u64 + train_shed) as f64;
    println!(
        "{:>22}  p99 {:>9.3} ms  shed {:>5.1}%  ({:>8.1} rows/s offered, {} samples)",
        "serve_train_rel30",
        train_p99 * 1e3,
        train_shed_rate * 100.0,
        train_offered,
        train_samples.len()
    );
    println!(
        "train-while-serve: {} epochs in {:.2}s, {} generations published ({} reload errors), \
         {} restarts",
        online_cfg.train.epochs,
        train_elapsed.as_secs_f64(),
        train_report.publish.published,
        train_report.publish.errors,
        train_report.restarts,
    );
    let train_stats = session
        .finish()
        .expect("online serve engine panicked during bench");
    println!(
        "online engine stats: {} rows in {} batches ({} deadline sheds, {} overload sheds)",
        train_stats.rows, train_stats.batches, train_stats.shed_deadline, train_stats.shed_overload
    );
    points.push(ServePoint {
        name: "serve_p99_train_rel30".to_string(),
        seconds: train_p99,
        edges_per_sec: train_offered * train_edges_per_row,
    });
    points.push(ServePoint {
        name: "serve_train_shed_rate_rel30".to_string(),
        seconds: train_shed_rate,
        edges_per_sec: train_offered * train_edges_per_row,
    });

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"radix-bench-serve/v1\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());
    let _ = writeln!(json, "  \"deadline_us\": {},", config.deadline_us);
    json.push_str(
        "  \"note\": \"serving-engine latency points: seconds_per_iter is a response-latency \
         percentile (or seconds/row for the closed-loop point) and edges_per_sec the offered \
         edge throughput; merged into BENCH_kernels.json by `make bench-baseline`\",\n",
    );
    json.push_str("  \"configs\": [\n    {\n");
    let _ = writeln!(
        json,
        "      \"name\": \"serve_n{N}_deg{DEGREE}_b{MAX_BATCH}\","
    );
    let _ = writeln!(json, "      \"kernels\": [");
    for (ki, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "        {{\"name\": \"{}\", \"seconds_per_iter\": {}, \"edges_per_sec\": {}}}{}",
            p.name,
            format_json_f64(p.seconds),
            format_json_f64(p.edges_per_sec),
            if ki + 1 == points.len() { "" } else { "," }
        );
    }
    json.push_str("      ]\n    }\n  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write serve benchmark JSON");
    println!("wrote {out_path}");

    // Acceptance criterion: at low load the tail must fit the budget.
    let budget = config.deadline_us as f64 * 1e-6;
    if low_load_p99 > budget {
        eprintln!(
            "bench_serve: FAIL low-load p99 {:.3} ms exceeds deadline budget {:.3} ms",
            low_load_p99 * 1e3,
            budget * 1e3
        );
        std::process::exit(1);
    }
    println!(
        "bench_serve: low-load p99 {:.3} ms within deadline budget {:.3} ms",
        low_load_p99 * 1e3,
        budget * 1e3
    );

    // Overload acceptance: at 150% offered load the engine must degrade
    // gracefully — excess demand shed typed (never silently absorbed,
    // never served late), accepted tail still inside the budget.
    if run.accepted.is_empty() {
        eprintln!("bench_serve: FAIL overload phase accepted nothing ({submitted} submitted)");
        std::process::exit(1);
    }
    if run.shed == 0 {
        eprintln!(
            "bench_serve: FAIL {SHED_REL}% offered load shed nothing — overload never engaged"
        );
        std::process::exit(1);
    }
    if shed_p99 > budget {
        eprintln!(
            "bench_serve: FAIL overload accepted p99 {:.3} ms exceeds deadline budget {:.3} ms",
            shed_p99 * 1e3,
            budget * 1e3
        );
        std::process::exit(1);
    }
    println!(
        "bench_serve: overload accepted p99 {:.3} ms within budget {:.3} ms, {:.1}% shed typed",
        shed_p99 * 1e3,
        budget * 1e3,
        shed_rate * 100.0
    );
}
