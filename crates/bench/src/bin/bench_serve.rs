//! Serving-latency benchmark → `serve_*` points for `BENCH_kernels.json`.
//!
//! Measures the async serving engine (`radix_challenge::serve`) as a live
//! system, not a kernel: a closed-loop throughput point (as many
//! concurrent clients as the micro-batch holds rows, submitting
//! back-to-back), then p50/p99 response latency at three offered loads —
//! 10%, 30%, and 60% of the measured closed-loop capacity. Relative loads
//! keep the points meaningful across machines: 150 rows/s is "low load"
//! on the 1-core container and on a fast runner alike.
//!
//! The emitted JSON is the same line-oriented single-run shape as
//! `bench_kernels` (a `"threads"` key, one config, a `kernels` array), so
//! `bench_baseline` merges it point-wise into the committed baseline and
//! `bench_gate` diffs it — `seconds_per_iter` carries the latency
//! percentile (or seconds-per-row for the closed-loop point), and
//! `edges_per_sec` the corresponding edge throughput of the offered load.
//! Latency points are thread-keyed like the pool kernels (blocks execute
//! on the worker pool) and gate under the wider
//! `RADIX_BENCH_SERVE_TOLERANCE`; only the `serve_p99_*` tail points gate.
//!
//! The run also **enforces the serving acceptance criterion**: at the low
//! (10%) load, p99 must come in at or under the configured end-to-end
//! deadline budget — exit code 1 otherwise.
//!
//! Invocation (see `make bench-serve`):
//!
//! ```text
//! cargo run --release -p radix-bench --bin bench_serve
//! ```
//!
//! Environment:
//! * `RADIX_BENCH_QUICK=1` — fewer samples per point (CI smoke/gate),
//! * `RADIX_BENCH_OUT` — output path (default
//!   `target/BENCH_serve_fresh.json`),
//! * `RADIX_SERVE_DEADLINE_US` — end-to-end latency budget the engine is
//!   configured with; also the p99 acceptance bound. The bench defaults
//!   it to 20000 (2× the engine default): on shared CI runners and 1-core
//!   containers, absolute scheduler jitter of several milliseconds is
//!   routine, and the budget must absorb it on top of the batcher wait.

use std::fmt::Write as _;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use radix_bench::{format_json_f64, percentile};
use radix_challenge::{ChallengeNetwork, ServeConfig, ServeEngine, ServeHandle};
use radix_sparse::{CsrMatrix, CyclicShift, DenseMatrix};

/// The pinned serving config: `n=4096, deg=16` × 2 layers (one of the two
/// kernel acceptance configs), 8-row micro-batches.
const N: usize = 4096;
const DEGREE: usize = 16;
const MAX_BATCH: usize = 8;

/// Offered loads as percent of measured closed-loop capacity.
const REL_LOADS: [usize; 3] = [10, 30, 60];

fn layer(n: usize, degree: usize) -> CsrMatrix<f32> {
    CyclicShift::radix_submatrix::<u64>(n, degree, 1).map(|_| 1.0 / degree as f32)
}

/// Deterministic dense request rows (same generator as `bench_kernels`).
fn request_rows(rows: usize, cols: usize) -> DenseMatrix<f32> {
    let mut m = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        let r: &mut [f32] = m.row_mut(i);
        for (j, v) in r.iter_mut().enumerate() {
            *v = ((i * 31 + j * 17) % 13) as f32 * 0.07;
        }
    }
    m
}

/// Closed-loop throughput: `clients` threads submit `per_client` rows
/// back-to-back; returns rows/second.
fn closed_loop(
    handle: &ServeHandle,
    x: &DenseMatrix<f32>,
    clients: usize,
    per_client: usize,
) -> f64 {
    let start_line = Barrier::new(clients + 1);
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = handle.client();
                let start_line = &start_line;
                s.spawn(move || {
                    let mut out = Vec::new();
                    // Per-thread warm-up: lazy parking state, output capacity.
                    for i in 0..4 {
                        client
                            .infer_into(x.row((c + i) % x.nrows()), &mut out)
                            .unwrap();
                    }
                    start_line.wait();
                    for i in 0..per_client {
                        client
                            .infer_into(x.row((c + i) % x.nrows()), &mut out)
                            .unwrap();
                    }
                })
            })
            .collect();
        start_line.wait();
        let t = Instant::now();
        for h in handles {
            h.join().expect("closed-loop client panicked");
        }
        elapsed = t.elapsed();
    });
    (clients * per_client) as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Paced open-ish loop at `offered` rows/second across `threads`
/// submitters (each pacing at `offered / threads`); returns every
/// response latency in seconds.
fn latency_at(
    handle: &ServeHandle,
    x: &DenseMatrix<f32>,
    threads: usize,
    per_thread: usize,
    offered: f64,
) -> Vec<f64> {
    let interval = Duration::from_secs_f64(threads as f64 / offered.max(1e-9));
    let start_line = Barrier::new(threads);
    let mut all = Vec::with_capacity(threads * per_thread);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|c| {
                let client = handle.client();
                let start_line = &start_line;
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut latencies = Vec::with_capacity(per_thread);
                    for i in 0..2 {
                        client
                            .infer_into(x.row((c + i) % x.nrows()), &mut out)
                            .unwrap();
                    }
                    start_line.wait();
                    // Pace against an absolute schedule so one slow
                    // response does not shift every later arrival.
                    let t0 = Instant::now();
                    for i in 0..per_thread {
                        let due = interval * i as u32;
                        if let Some(wait) = due.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let t = Instant::now();
                        client
                            .infer_into(x.row((c + i) % x.nrows()), &mut out)
                            .unwrap();
                        latencies.push(t.elapsed().as_secs_f64());
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("latency client panicked"));
        }
    });
    all
}

fn main() {
    let quick = std::env::var("RADIX_BENCH_QUICK").is_ok_and(|v| v == "1");
    let out_path = std::env::var("RADIX_BENCH_OUT")
        .unwrap_or_else(|_| "target/BENCH_serve_fresh.json".to_string());

    let w = layer(N, DEGREE);
    let net = ChallengeNetwork::from_layers(vec![w.clone(), w], -0.3, 32.0);
    let edges_per_row = net.total_nnz() as f64;
    let x = request_rows(MAX_BATCH * 2, net.n_in());

    let config = ServeConfig {
        max_batch: MAX_BATCH,
        deadline_us: radix_sparse::kernel::env_usize("RADIX_SERVE_DEADLINE_US", 20_000) as u64,
        slots: 4 * MAX_BATCH,
        queue: 4 * MAX_BATCH,
        parallel: true,
    };
    let handle = ServeEngine::start(net, &config);
    eprintln!(
        "bench_serve: n={N} deg={DEGREE} max_batch={MAX_BATCH} deadline={}us \
         (batcher wait {}us) threads={} quick={quick}",
        config.deadline_us,
        handle.batch_wait_us(),
        rayon::current_num_threads(),
    );

    // Closed-loop capacity first: the relative load points hang off it.
    let (clients, per_client) = if quick {
        (MAX_BATCH, 40)
    } else {
        (MAX_BATCH, 200)
    };
    let capacity = closed_loop(&handle, &x, clients, per_client);
    println!(
        "{:>22}  {:>10.1} rows/s  {:>12.3e} edges/s  ({clients} clients closed loop)",
        "serve_row_closed_loop",
        capacity,
        capacity * edges_per_row
    );

    struct ServePoint {
        name: String,
        seconds: f64,
        edges_per_sec: f64,
    }
    let mut points = vec![ServePoint {
        name: "serve_row_closed_loop".to_string(),
        seconds: 1.0 / capacity.max(1e-9),
        edges_per_sec: capacity * edges_per_row,
    }];

    // Latency vs offered load, low to high.
    let (lat_threads, per_thread) = if quick { (4, 30) } else { (4, 100) };
    let mut low_load_p99 = f64::INFINITY;
    for rel in REL_LOADS {
        let offered = capacity * rel as f64 / 100.0;
        let samples = latency_at(&handle, &x, lat_threads, per_thread, offered);
        let p50 = percentile(&samples, 0.50);
        let p99 = percentile(&samples, 0.99);
        if rel == REL_LOADS[0] {
            low_load_p99 = p99;
        }
        println!(
            "{:>22}  p50 {:>9.3} ms  p99 {:>9.3} ms  ({:>8.1} rows/s offered, {} samples)",
            format!("serve_rel{rel}"),
            p50 * 1e3,
            p99 * 1e3,
            offered,
            samples.len()
        );
        points.push(ServePoint {
            name: format!("serve_p50_rel{rel}"),
            seconds: p50,
            edges_per_sec: offered * edges_per_row,
        });
        points.push(ServePoint {
            name: format!("serve_p99_rel{rel}"),
            seconds: p99,
            edges_per_sec: offered * edges_per_row,
        });
    }

    let stats = handle.shutdown();
    println!(
        "serve stats: {} rows in {} batches (max {} rows; {} full / {} deadline flushes)",
        stats.rows, stats.batches, stats.max_rows, stats.full_flushes, stats.deadline_flushes
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"radix-bench-serve/v1\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());
    let _ = writeln!(json, "  \"deadline_us\": {},", config.deadline_us);
    json.push_str(
        "  \"note\": \"serving-engine latency points: seconds_per_iter is a response-latency \
         percentile (or seconds/row for the closed-loop point) and edges_per_sec the offered \
         edge throughput; merged into BENCH_kernels.json by `make bench-baseline`\",\n",
    );
    json.push_str("  \"configs\": [\n    {\n");
    let _ = writeln!(
        json,
        "      \"name\": \"serve_n{N}_deg{DEGREE}_b{MAX_BATCH}\","
    );
    let _ = writeln!(json, "      \"kernels\": [");
    for (ki, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "        {{\"name\": \"{}\", \"seconds_per_iter\": {}, \"edges_per_sec\": {}}}{}",
            p.name,
            format_json_f64(p.seconds),
            format_json_f64(p.edges_per_sec),
            if ki + 1 == points.len() { "" } else { "," }
        );
    }
    json.push_str("      ]\n    }\n  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write serve benchmark JSON");
    println!("wrote {out_path}");

    // Acceptance criterion: at low load the tail must fit the budget.
    let budget = config.deadline_us as f64 * 1e-6;
    if low_load_p99 > budget {
        eprintln!(
            "bench_serve: FAIL low-load p99 {:.3} ms exceeds deadline budget {:.3} ms",
            low_load_p99 * 1e3,
            budget * 1e3
        );
        std::process::exit(1);
    }
    println!(
        "bench_serve: low-load p99 {:.3} ms within deadline budget {:.3} ms",
        low_load_p99 * 1e3,
        budget * 1e3
    );
}
