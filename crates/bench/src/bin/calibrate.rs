//! Machine autotuning: sweeps the kernel tunables **together** on the
//! committed bench shapes and persists the winner as a per-machine
//! tuning profile (`RADIX_PROFILE.json`) that `radix-sparse` and
//! `radix-challenge` load at startup (see `make calibrate`).
//!
//! The defaults baked into the kernels (`DEFAULT_TILE_COLS`,
//! `DEFAULT_BLOCK_ROWS`, `DEFAULT_FUSE_LAYERS`,
//! `DEFAULT_ACT_SPARSE_PERCENT`) were measured on one machine; cache
//! sizes and core counts vary, so deployments run this once per machine:
//!
//! ```text
//! make calibrate          # full sweep, writes ./RADIX_PROFILE.json
//! make calibrate-smoke    # budgeted CI smoke (quick grid, tiny shapes)
//! ```
//!
//! Every knob resolves with precedence **env > profile > default**, so
//! exported `RADIX_*` variables still outrank the written profile, and a
//! machine without a profile behaves exactly as before.
//!
//! **Process model**: tunables are `OnceLock`-cached per process, so the
//! sweep cannot apply a candidate to itself. The binary re-executes
//! itself once per candidate with the candidate exported as environment
//! (see [`radix_bench::autotune`]); children print a score line this
//! parent parses. The profile is keyed by worker-pool width
//! (`rayon::current_num_threads()`): run under `RADIX_POOL_THREADS=N` to
//! calibrate width `N`; runs at other widths in an existing profile are
//! preserved.
//!
//! Environment:
//! * `RADIX_CALIBRATE_QUICK=1` — quick grid and 3-iteration timings
//!   (smoke mode: proves the plumbing end to end; numbers are noise),
//! * `RADIX_PROFILE` — where to write/merge the profile (default
//!   `./RADIX_PROFILE.json`).

use radix_bench::autotune::{self, Candidate, CHILD_ENV, SCORE_TAG};
use radix_sparse::kernel::{emit_profile, load_profile, profile_path, ProfileError};

fn main() {
    let quick = std::env::var("RADIX_CALIBRATE_QUICK").is_ok_and(|v| v == "1");
    if std::env::var(CHILD_ENV).is_ok() {
        // Measurement child: the candidate's knobs arrived as RADIX_*
        // environment variables; score the workload under them and report.
        let secs = autotune::measure_workload(quick);
        println!("{SCORE_TAG} {:.3}", secs * 1e6);
        return;
    }

    let threads = rayon::current_num_threads();
    let exe = std::env::current_exe().expect("calibrate: cannot locate own binary");
    let grid = autotune::candidate_grid(quick);
    println!(
        "calibrate: autotuning {} candidates at {threads} pool thread(s), quick={quick}",
        grid.len()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>8} {:>12}",
        "tile_cols", "block_rows", "fuse", "act_pct", "score_us"
    );

    let mut best: Option<(Candidate, f64)> = None;
    let mut default_score: Option<f64> = None;
    for (i, c) in grid.iter().enumerate() {
        let secs = match autotune::run_candidate(&exe, c, quick) {
            Ok(secs) => secs,
            Err(e) => {
                eprintln!("calibrate: candidate {c:?} failed: {e}");
                continue;
            }
        };
        // Entry 0 is the baked-in defaults; strict `<` means the tuned
        // pick is never worse than the defaults by construction.
        if i == 0 {
            default_score = Some(secs);
        }
        let is_best = best.is_none_or(|(_, b)| secs < b);
        println!(
            "{:>10} {:>10} {:>10} {:>8} {:>12.2}{}{}",
            c.tile_cols,
            c.block_rows,
            c.fuse_layers,
            c.act_sparse_percent,
            secs * 1e6,
            if i == 0 { "  (defaults)" } else { "" },
            if is_best && i > 0 {
                "  <- best so far"
            } else {
                ""
            },
        );
        if is_best {
            best = Some((*c, secs));
        }
    }

    let (winner, score) = best.expect("calibrate: every candidate failed to measure");
    let default_score = default_score.expect("calibrate: the default candidate failed to measure");
    println!(
        "\ncalibrate: best tile_cols={} block_rows={} fuse_layers={} act_pct={} \
         at {:.2} us (defaults {:.2} us, {:+.1}%)",
        winner.tile_cols,
        winner.block_rows,
        winner.fuse_layers,
        winner.act_sparse_percent,
        score * 1e6,
        default_score * 1e6,
        (score / default_score - 1.0) * 100.0,
    );

    // Merge the winner into the profile at this thread count, preserving
    // runs calibrated at other widths.
    let path_str = profile_path();
    let path = std::path::Path::new(&path_str);
    let existing = match load_profile(path) {
        Ok(runs) => runs,
        Err(ProfileError::Io {
            kind: std::io::ErrorKind::NotFound,
            ..
        }) => Vec::new(),
        Err(e) => {
            eprintln!("calibrate: existing profile {path_str} unusable ({e}); rewriting");
            Vec::new()
        }
    };
    let merged = autotune::merge_profile_runs(existing, winner.to_profile(threads));
    std::fs::write(path, emit_profile(&merged))
        .unwrap_or_else(|e| panic!("calibrate: cannot write {path_str}: {e}"));

    // Round-trip: what we wrote must load back through the same loader
    // the kernels use, and must contain this width's run.
    let back = load_profile(path)
        .unwrap_or_else(|e| panic!("calibrate: written profile {path_str} fails to load: {e}"));
    assert!(
        back.iter().any(|r| r.threads == threads),
        "calibrate: written profile {path_str} lost the run at threads={threads}"
    );
    println!(
        "calibrate: wrote {path_str} ({} run(s): threads {})",
        back.len(),
        back.iter()
            .map(|r| r.threads.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
