//! Machine calibration: measures the serial-vs-parallel crossover, the
//! best column-tile width, and the activation-sparsity crossover **on the
//! current machine** and prints suggested environment values (see
//! `make calibrate`).
//!
//! The defaults baked into the kernels (`DEFAULT_PAR_THRESHOLD`,
//! `DEFAULT_TILE_COLS`, `DEFAULT_ACT_SPARSE_PERCENT`) were measured on
//! one machine; cache sizes and thread-spawn costs vary, so deployments
//! should run this once and export what it prints:
//!
//! ```text
//! make calibrate
//! export RADIX_PAR_THRESHOLD=<crossover work>
//! export RADIX_TILE_COLS=<best tile width>
//! export RADIX_ACT_SPARSE_THRESHOLD=<percent nonzero below which to scatter>
//! ```
//!
//! Environment: `RADIX_CALIBRATE_QUICK=1` shrinks the problem sizes and
//! iteration counts (smoke mode: proves the binary runs; numbers are not
//! meaningful).

use std::hint::black_box;

use radix_sparse::{
    ActivationSchedule, Bias, CsrMatrix, CyclicShift, DenseMatrix, Epilogue, PreparedWeights,
};

fn layer(n: usize, degree: usize) -> CsrMatrix<f32> {
    CyclicShift::radix_submatrix::<u64>(n, degree, 1).map(|_| 1.0 / degree as f32)
}

fn activations(rows: usize, cols: usize) -> DenseMatrix<f32> {
    let mut m = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        let r: &mut [f32] = m.row_mut(i);
        for (j, v) in r.iter_mut().enumerate() {
            *v = ((i * 31 + j * 17) % 13) as f32 * 0.07;
        }
    }
    m
}

/// [`radix_bench::time_kernel`] at this binary's budget — the same
/// methodology as the baseline emitter, so calibrate's suggestions are
/// measured the way the gate measures.
fn time_kernel<F: FnMut()>(quick: bool, f: F) -> f64 {
    radix_bench::time_kernel(quick, 0.25, 400, f)
}

fn main() {
    let quick = std::env::var("RADIX_CALIBRATE_QUICK").is_ok_and(|v| v == "1");
    let threads = rayon::current_num_threads();
    println!("calibrate: {threads} pool thread(s), quick={quick}");

    // ── Part 1: serial vs parallel crossover ────────────────────────────
    // Fixed layer, growing batch: work = batch × nnz is the quantity
    // kernel::use_parallel thresholds on.
    let n = if quick { 256 } else { 4096 };
    let degree = 8.min(n);
    let w = layer(n, degree);
    let mut prepared = PreparedWeights::from_csr(w);
    prepared.tile();
    let epi = Epilogue::new(Bias::Uniform(-0.3f32), |v: f32| v.clamp(0.0, 32.0));
    let mut out = DenseMatrix::<f32>::default();

    println!("\nserial vs parallel (n={n}, degree={degree}):");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "batch", "work", "serial_us", "parallel_us"
    );
    let mut crossover: Option<usize> = None;
    if threads <= 1 {
        println!("  (single-thread pool: parallel degrades to inline, no crossover to measure)");
    } else {
        for batch in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let x = activations(batch, n);
            let serial = time_kernel(quick, || {
                prepared.spmm_tiled_into(&x, &mut out, &epi).unwrap();
                black_box(out.as_slice().len());
            });
            let parallel = time_kernel(quick, || {
                prepared.par_spmm_tiled_into(&x, &mut out, &epi).unwrap();
                black_box(out.as_slice().len());
            });
            let work = prepared.work(batch);
            // Demand a real margin (5%), not scheduler noise, before
            // declaring the crossover.
            let wins = parallel < serial * 0.95;
            println!(
                "{batch:>8} {work:>12} {:>12.2} {:>12.2}{}",
                serial * 1e6,
                parallel * 1e6,
                if wins { "  <- parallel wins" } else { "" }
            );
            if wins && crossover.is_none() {
                crossover = Some(work);
            }
        }
    }

    // ── Part 2: best column-tile width ──────────────────────────────────
    // The wide acceptance config; "0" rows are the untiled reference.
    let (wn, wdeg, wbatch) = if quick { (512, 4, 4) } else { (16384, 8, 32) };
    let wide = layer(wn, wdeg);
    let x = activations(wbatch, wn);
    println!("\ncolumn-tile width (n={wn}, degree={wdeg}, batch={wbatch}):");
    println!("{:>10} {:>12}", "tile_cols", "fused_us");
    let mut best: Option<(usize, f64)> = None;
    let untiled = {
        let p = PreparedWeights::from_csr(wide.clone());
        time_kernel(quick, || {
            p.spmm_into(&x, &mut out, &epi).unwrap();
            black_box(out.as_slice().len());
        })
    };
    println!("{:>10} {:>12.2}  (untiled reference)", "-", untiled * 1e6);
    for width in [256usize, 512, 1024, 2048, 4096, 8192] {
        if width >= wn {
            break;
        }
        let mut p = PreparedWeights::from_csr(wide.clone());
        p.tile_with(width);
        let secs = time_kernel(quick, || {
            p.spmm_tiled_into(&x, &mut out, &epi).unwrap();
            black_box(out.as_slice().len());
        });
        println!("{width:>10} {:>12.2}", secs * 1e6);
        if best.is_none_or(|(_, b)| secs < b) {
            best = Some((width, secs));
        }
    }

    // ── Part 3: activation-sparsity crossover ───────────────────────────
    // Same wide config; sweep the nonzero fraction of the input batch and
    // time the forced gather vs the forced scatter schedule. The largest
    // nonzero percent where the scatter wins (with a real 5% margin) is
    // the suggested RADIX_ACT_SPARSE_THRESHOLD.
    let mut tiled_wide = PreparedWeights::from_csr(wide.clone());
    tiled_wide.tile();
    println!("\nactivation-sparsity crossover (n={wn}, degree={wdeg}, batch={wbatch}):");
    println!(
        "{:>12} {:>12} {:>12}",
        "nonzero_pct", "gather_us", "scatter_us"
    );
    let mut act_crossover: Option<usize> = None;
    for pct in [50usize, 25, 12, 10, 6, 3, 1] {
        let mut xs = DenseMatrix::<f32>::zeros(wbatch, wn);
        for i in 0..wbatch {
            let row: &mut [f32] = xs.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                if (i * 31 + j * 17) % 100 < pct {
                    *v = ((i + j) % 13) as f32 * 0.07 + 0.05;
                }
            }
        }
        let gather = time_kernel(quick, || {
            tiled_wide
                .spmm_tiled_scheduled_into(&xs, &mut out, &epi, ActivationSchedule::Gather)
                .unwrap();
            black_box(out.as_slice().len());
        });
        let scatter = time_kernel(quick, || {
            tiled_wide
                .spmm_tiled_scheduled_into(&xs, &mut out, &epi, ActivationSchedule::Scatter)
                .unwrap();
            black_box(out.as_slice().len());
        });
        let wins = scatter < gather * 0.95;
        println!(
            "{pct:>12} {:>12.2} {:>12.2}{}",
            gather * 1e6,
            scatter * 1e6,
            if wins { "  <- scatter wins" } else { "" }
        );
        if wins && act_crossover.is_none() {
            act_crossover = Some(pct);
        }
    }

    // ── Suggestions ─────────────────────────────────────────────────────
    println!("\nsuggested environment for this machine:");
    match crossover {
        Some(work) => println!("  export RADIX_PAR_THRESHOLD={work}"),
        None if threads <= 1 => {
            println!("  # single-thread machine: RADIX_PAR_THRESHOLD is irrelevant, keep default");
        }
        None => println!(
            "  export RADIX_PAR_THRESHOLD={}  # parallel never won at tested sizes",
            usize::MAX
        ),
    }
    if let Some((width, secs)) = best {
        if secs < untiled {
            println!("  export RADIX_TILE_COLS={width}");
        } else {
            println!(
                "  export RADIX_TILE_COLS={wn}  # tiling never beat untiled here (best {width} at {:.2} us vs {:.2} us)",
                secs * 1e6,
                untiled * 1e6
            );
        }
    }
    match act_crossover {
        Some(pct) => println!("  export RADIX_ACT_SPARSE_THRESHOLD={pct}"),
        None => println!(
            "  export RADIX_ACT_SPARSE_THRESHOLD=0  # scatter never won at tested sparsities"
        ),
    }
}
