//! Profile round-trip check (`make profile-check`, wired into the CI
//! autotune job): loads the tuning profile at `RADIX_PROFILE` (default
//! `./RADIX_PROFILE.json`) through the same loader the kernels use at
//! startup, re-emits it, and asserts the re-parse is identical — proving
//! the file a fresh `make calibrate` just wrote is one every later
//! process will actually honour. Exit code 1 with the loader's typed
//! error when the file is missing, truncated, or corrupt.

use radix_sparse::kernel::{emit_profile, load_profile, parse_profile, profile_path};

fn main() {
    let path_str = profile_path();
    let path = std::path::Path::new(&path_str);
    let runs = match load_profile(path) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("profile_check: {path_str}: {e}");
            std::process::exit(1);
        }
    };
    let back = match parse_profile(&emit_profile(&runs)) {
        Ok(back) => back,
        Err(e) => {
            eprintln!("profile_check: {path_str}: re-emitted profile fails to parse: {e}");
            std::process::exit(1);
        }
    };
    if back != runs {
        eprintln!("profile_check: {path_str}: emit/parse round-trip changed the runs");
        eprintln!("  loaded:     {runs:?}");
        eprintln!("  round-trip: {back:?}");
        std::process::exit(1);
    }
    println!("profile_check: {path_str} OK ({} run(s))", runs.len());
    for r in &runs {
        println!(
            "  threads {}: tile_cols {} block_rows {} fuse_layers {} act_sparse_percent {}",
            r.threads,
            fmt_knob(r.tile_cols),
            fmt_knob(r.block_rows),
            fmt_knob(r.fuse_layers),
            fmt_knob(r.act_sparse_percent),
        );
    }
}

fn fmt_knob(v: Option<usize>) -> String {
    v.map_or_else(|| "-".to_string(), |v| v.to_string())
}
