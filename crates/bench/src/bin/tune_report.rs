//! Tuned-vs-default delta table (`make tune-report`, wired into the CI
//! perf-gate job's `$GITHUB_STEP_SUMMARY`): compares two `bench_kernels`
//! runs — one measured with the baked-in defaults, one under a freshly
//! calibrated `RADIX_PROFILE.json` — and prints a GitHub-flavoured
//! markdown table of the per-kernel deltas. **Report-only**: regressions
//! here don't fail anything (the perf gate proper runs `bench_gate`
//! against the committed baseline, tolerance unchanged); this table
//! exists so every CI run shows what the autotuner is buying (or
//! costing) on the committed shapes.
//!
//! Environment:
//! * `RADIX_TUNE_DEFAULT` — the defaults run (default
//!   `target/BENCH_kernels.default.json`),
//! * `RADIX_TUNE_TUNED` — the profile-tuned run (default
//!   `target/BENCH_kernels.scratch.json`).

use radix_bench::parse_bench_runs;

fn main() {
    let default_path = std::env::var("RADIX_TUNE_DEFAULT")
        .unwrap_or_else(|_| "target/BENCH_kernels.default.json".to_string());
    let tuned_path = std::env::var("RADIX_TUNE_TUNED")
        .unwrap_or_else(|_| "target/BENCH_kernels.scratch.json".to_string());
    let read = |path: &str| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("tune_report: cannot read {path}: {e}"));
        let runs = parse_bench_runs(&text);
        assert_eq!(
            runs.len(),
            1,
            "tune_report: {path} must hold exactly one run"
        );
        runs.into_iter().next().expect("checked above")
    };
    let default_run = read(&default_path);
    let tuned_run = read(&tuned_path);
    assert!(
        !default_run.points.is_empty() && !tuned_run.points.is_empty(),
        "tune_report: empty run (default {default_path}, tuned {tuned_path})"
    );

    let threads = tuned_run
        .threads
        .or(default_run.threads)
        .map_or_else(|| "unknown".to_string(), |t| t.to_string());
    println!("## Autotuned vs default kernel timings (threads {threads})");
    println!();
    println!("| config | kernel | default (µs) | tuned (µs) | delta |");
    println!("|---|---|---:|---:|---:|");
    let (mut faster, mut slower, mut flat) = (0usize, 0usize, 0usize);
    let mut best_improvement: Option<(f64, String)> = None;
    for d in &default_run.points {
        let Some(t) = tuned_run
            .points
            .iter()
            .find(|t| t.config == d.config && t.kernel == d.kernel)
        else {
            println!(
                "| {} | {} | {:.3} | — | missing |",
                d.config,
                d.kernel,
                d.seconds_per_iter * 1e6
            );
            continue;
        };
        let delta = t.seconds_per_iter / d.seconds_per_iter.max(1e-12) - 1.0;
        // 2% either way is measurement noise at the quick budget.
        match delta {
            d if d < -0.02 => faster += 1,
            d if d > 0.02 => slower += 1,
            _ => flat += 1,
        }
        if delta < best_improvement.as_ref().map_or(0.0, |(b, _)| *b) {
            best_improvement = Some((delta, format!("{} / {}", d.config, d.kernel)));
        }
        println!(
            "| {} | {} | {:.3} | {:.3} | {:+.1}% |",
            d.config,
            d.kernel,
            d.seconds_per_iter * 1e6,
            t.seconds_per_iter * 1e6,
            delta * 100.0,
        );
    }
    println!();
    println!(
        "{faster} kernel(s) faster under the tuned profile, {slower} slower, \
         {flat} within noise (±2%)."
    );
    if let Some((delta, point)) = best_improvement {
        println!();
        println!("Best improvement: {point} at {:+.1}%.", delta * 100.0);
    }
}
