//! Support library for the `radix-bench` benchmark crate: the criterion
//! benches live under `benches/`, the pinned JSON baseline emitter under
//! `src/bin/bench_kernels.rs`. This library holds the small shared pieces.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Formats an `f64` for embedding in JSON: finite values print with enough
/// precision to round-trip usefully; non-finite values (which raw JSON
/// cannot represent) degrade to `0`.
#[must_use]
pub fn format_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_roundtrip() {
        let s = format_json_f64(12345.678);
        let back: f64 = s.parse().unwrap();
        assert!((back - 12345.678).abs() < 1e-2);
    }

    #[test]
    fn non_finite_degrades_to_zero() {
        assert_eq!(format_json_f64(f64::NAN), "0");
        assert_eq!(format_json_f64(f64::INFINITY), "0");
    }
}
