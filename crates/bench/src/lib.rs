//! placeholder
