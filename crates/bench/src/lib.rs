//! Support library for the `radix-bench` benchmark crate: the criterion
//! benches live under `benches/`, the pinned JSON baseline emitter under
//! `src/bin/bench_kernels.rs`, the baseline comparator (perf regression
//! gate) under `src/bin/bench_gate.rs`, and the machine calibration run
//! under `src/bin/calibrate.rs`. This library holds the small shared
//! pieces: JSON float formatting and a minimal parser for the
//! `radix-bench-kernels/v1` schema (no serde in the offline build image —
//! we emit the format, so we can parse it with line scanning).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autotune;

/// Formats an `f64` for embedding in JSON: finite values print with enough
/// precision to round-trip usefully; non-finite values (which raw JSON
/// cannot represent) degrade to `0`.
#[must_use]
pub fn format_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        "0".to_string()
    }
}

/// Times `f` (after one warm-up call) and returns the **minimum**
/// observed seconds per iteration — the standard robust estimator for
/// perf tracking: the min approximates the true cost of the code, while
/// means absorb scheduler noise, background load, and frequency ramps
/// (which on shared runners routinely exceed any reasonable regression
/// tolerance).
///
/// * `quick == false` — min over as many iterations as fit in
///   `budget_secs` (at most `max_iters`): the baseline-quality number.
/// * `quick == true` — min of three iterations: fast enough for CI
///   smoke/gate runs.
///
/// Shared by `bench_kernels` (the JSON baseline emitter the perf gate
/// diffs against) and `calibrate`, so both measure with one methodology.
pub fn time_kernel<F: FnMut()>(quick: bool, budget_secs: f64, max_iters: u32, mut f: F) -> f64 {
    f(); // warm-up: drives buffers to their high-water mark
    let (budget, iters) = if quick {
        (f64::INFINITY, 3)
    } else {
        (budget_secs, max_iters.max(1))
    };
    let all = std::time::Instant::now();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
        if all.elapsed().as_secs_f64() > budget {
            break;
        }
    }
    best
}

/// One timed kernel point from a `BENCH_kernels.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// The layer config the kernel ran on (e.g. `n16384_deg8_b32`).
    pub config: String,
    /// Kernel name (e.g. `prepared_tiled_fused`).
    pub kernel: String,
    /// **Minimum** observed wall-clock seconds per iteration (see
    /// [`time_kernel`] for why the min estimator, not the mean).
    pub seconds_per_iter: f64,
    /// Throughput in edges/second (0 when the file predates the field) —
    /// carried so `bench_baseline` can re-emit merged baselines losslessly.
    pub edges_per_sec: f64,
}

/// One measured run within a baseline file: its worker-pool width and its
/// kernel points. A v1/v2 file holds exactly one run; the merged v3
/// baselines that `make bench-baseline` writes hold one run **per thread
/// count**, so pool kernels can gate like-for-like on both 1-core
/// containers and multi-core CI runners.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Worker-pool width the run was measured at (`None` for files
    /// predating the `threads` key).
    pub threads: Option<usize>,
    /// The run's kernel timing points.
    pub points: Vec<BenchPoint>,
}

/// Extracts the string value of a `"key": "value"` pair from a JSON line,
/// if present.
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let start = rest.find('"')? + 1;
    let end = start + rest[start..].find('"')?;
    Some(rest[start..end].to_string())
}

/// Extracts the numeric value of a `"key": 1.23e-4` pair from a JSON
/// line, if present.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = line[line.find(&tag)? + tag.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `"threads"` count a `BENCH_kernels.json` run was measured
/// with (the machine key the perf gate uses): `bench_kernels` records the
/// worker-pool width — effectively `nproc`, unless `RAYON_NUM_THREADS`
/// overrode it — so baselines measured on 1-core containers can be
/// recognized and their degenerate `par_*`/pool numbers excluded from
/// gating a multi-core run (and vice versa). Returns `None` for baselines
/// predating the field.
#[must_use]
pub fn parse_bench_threads(text: &str) -> Option<usize> {
    text.lines()
        .find_map(|line| number_field(line, "threads"))
        .map(|v| v as usize)
}

/// Whether a kernel point runs on the worker pool (its timing depends on
/// the machine's core count): the pinned subset names every pool-dispatch
/// variant with `rayon`, and every serving-latency point (`serve_*` from
/// `bench_serve`) runs blocks on the pool too. The perf gate compares
/// these points only between runs measured at the same thread count.
#[must_use]
pub fn is_parallel_kernel(name: &str) -> bool {
    name.contains("rayon") || is_serve_point(name)
}

/// Whether a point is a serving-engine measurement from `bench_serve`
/// (latency percentiles and the closed-loop throughput point). These gate
/// under their own, wider tolerance (`RADIX_BENCH_SERVE_TOLERANCE`):
/// end-to-end latency through threads, channels, and timers is far
/// noisier on shared CI runners than a pinned single-kernel min.
#[must_use]
pub fn is_serve_point(name: &str) -> bool {
    name.starts_with("serve_")
}

/// Whether a serving point is *gated* (fails the gate on regression)
/// rather than report-only. Per the latency-gate policy, the p99 points
/// gate — tail latency is the serving SLO, and the overload phase's
/// accepted-tail point (`serve_shed_p99_*`) gates for the same reason —
/// while p50, the closed-loop throughput point, and the shed-rate point
/// ride along informationally (their regressions always show in the gate
/// log, and coverage is still enforced for all of them).
#[must_use]
pub fn serve_point_gates(name: &str) -> bool {
    name.starts_with("serve_p99") || name.starts_with("serve_shed_p99")
}

/// The `q`-th percentile (0.0–1.0) of a sample set by nearest-rank on a
/// sorted copy — the estimator `bench_serve` reports p50/p99 latency
/// with. Returns 0.0 for an empty sample set.
#[must_use]
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Parses a `radix-bench-kernels/v1..v4` JSON file (as written by
/// `bench_kernels` or merged by `bench_baseline`) into its kernel timing
/// points, flattened across runs. The format is line-oriented by
/// construction: every kernel object sits on one line carrying both `name`
/// and `seconds_per_iter`; config objects carry a `name` on its own line.
/// Unknown lines are ignored, so the parser tolerates added fields.
#[must_use]
pub fn parse_bench_json(text: &str) -> Vec<BenchPoint> {
    parse_bench_runs(text)
        .into_iter()
        .flat_map(|r| r.points)
        .collect()
}

/// Parses a baseline file into its per-thread-count runs. Every `"threads"`
/// line starts a new run (merged baselines carry several); a v1 file with
/// no `threads` key yields one run with `threads: None`. Kernel points
/// encountered before any `threads` line also land in a `None` run (no
/// emitter writes that shape, but truncated files stay parseable).
#[must_use]
pub fn parse_bench_runs(text: &str) -> Vec<BenchRun> {
    let mut runs: Vec<BenchRun> = Vec::new();
    let mut config = String::new();
    for line in text.lines() {
        if let Some(secs) = number_field(line, "seconds_per_iter") {
            if let Some(kernel) = string_field(line, "name") {
                if runs.is_empty() {
                    runs.push(BenchRun {
                        threads: None,
                        points: Vec::new(),
                    });
                }
                runs.last_mut()
                    .expect("pushed above")
                    .points
                    .push(BenchPoint {
                        config: config.clone(),
                        kernel,
                        seconds_per_iter: secs,
                        edges_per_sec: number_field(line, "edges_per_sec").unwrap_or(0.0),
                    });
            }
        } else if let Some(t) = number_field(line, "threads") {
            runs.push(BenchRun {
                // 0 is the emitter's encoding of "unknown width".
                threads: Some(t as usize).filter(|&t| t > 0),
                points: Vec::new(),
            });
        } else if let Some(name) = string_field(line, "name") {
            config = name;
        }
    }
    // A file with a threads key but no points still reports its one run.
    runs
}

/// Serializes runs as a `radix-bench-kernels/v4` baseline: one entry per
/// thread count, each holding its configs and kernel points — the format
/// `make bench-baseline` writes and [`parse_bench_runs`] reads back.
/// v4 adds serving-latency points (`serve_*` from `bench_serve`, where
/// `seconds_per_iter` is a latency percentile rather than a kernel time)
/// merged point-wise into the same per-width runs; the line format is
/// unchanged, so v3 readers still parse v4 files. Config metadata beyond
/// the name (n/degree/batch) is not carried; the config name
/// (`n16384_deg8_b32`) encodes it.
#[must_use]
pub fn emit_bench_runs(runs: &[BenchRun]) -> String {
    use std::fmt::Write as _;
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"radix-bench-kernels/v4\",\n");
    json.push_str(
        "  \"note\": \"edges/sec per kernel on the pinned layer configs plus serve_* \
         latency points (seconds_per_iter = latency percentile), one run per \
         worker-pool width; written by `make bench-baseline` (full-budget min-statistic \
         numbers); the perf gate compares a candidate against the run measured at the \
         candidate's own width\",\n",
    );
    json.push_str("  \"runs\": [\n");
    for (ri, run) in runs.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"threads\": {},", run.threads.unwrap_or(0));
        let _ = writeln!(json, "      \"configs\": [");
        // Group points by config, preserving first-appearance order.
        let mut configs: Vec<&str> = Vec::new();
        for p in &run.points {
            if !configs.contains(&p.config.as_str()) {
                configs.push(&p.config);
            }
        }
        for (ci, cfg) in configs.iter().enumerate() {
            let _ = writeln!(json, "        {{");
            let _ = writeln!(json, "          \"name\": \"{cfg}\",");
            let _ = writeln!(json, "          \"kernels\": [");
            let points: Vec<&BenchPoint> = run.points.iter().filter(|p| p.config == *cfg).collect();
            for (ki, p) in points.iter().enumerate() {
                let _ = writeln!(
                    json,
                    "            {{\"name\": \"{}\", \"seconds_per_iter\": {}, \"edges_per_sec\": {}}}{}",
                    p.kernel,
                    format_json_f64(p.seconds_per_iter),
                    format_json_f64(p.edges_per_sec),
                    if ki + 1 == points.len() { "" } else { "," }
                );
            }
            let _ = writeln!(json, "          ]");
            let _ = writeln!(
                json,
                "        }}{}",
                if ci + 1 == configs.len() { "" } else { "," }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if ri + 1 == runs.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    json
}

/// Unions the perf gate's candidate scratch files (each given as
/// `(path, contents)`) into one run. Every file must hold **exactly one
/// run with at least one kernel point** — a scratch file that parses to
/// zero points means the bench emitter crashed mid-write or emitted an
/// incompatible shape, and gating against it would silently pass with no
/// coverage — and all files must agree on the thread count they were
/// measured at.
///
/// # Errors
/// A gate-fatal message naming the offending file: zero or multiple runs,
/// zero points, or a thread-count mismatch across files.
pub fn merge_candidate_runs(files: &[(String, String)]) -> Result<BenchRun, String> {
    let mut candidate = BenchRun {
        threads: None,
        points: Vec::new(),
    };
    if files.is_empty() {
        return Err("candidate list is empty (no scratch files to gate)".to_string());
    }
    for (path, text) in files {
        let runs = parse_bench_runs(text);
        if runs.len() != 1 {
            return Err(format!(
                "candidate {path} must hold exactly one run, found {}",
                runs.len()
            ));
        }
        let run = runs.into_iter().next().expect("checked above");
        if run.points.is_empty() {
            return Err(format!(
                "candidate {path} lists zero kernel points for its run \
                 (threads {}) — refusing to gate with no coverage; was the \
                 bench emitter interrupted?",
                run.threads
                    .map_or_else(|| "unknown".to_string(), |t| t.to_string())
            ));
        }
        let threads = run.threads.or_else(|| parse_bench_threads(text));
        match (candidate.threads, threads) {
            (Some(a), Some(b)) if a != b => {
                return Err(format!(
                    "candidate files measured at different thread counts \
                     ({a} vs {b} in {path})"
                ));
            }
            (None, t) => candidate.threads = t,
            _ => {}
        }
        candidate.points.extend(run.points);
    }
    Ok(candidate)
}

/// Picks the baseline run the perf gate compares against: the run
/// measured at the candidate's thread count when one exists (pool
/// kernels gate like-for-like), else the first run (serial kernels only
/// — the returned flag is `false`). The selected run must have at least
/// one point: a merged baseline can legitimately carry runs at widths
/// the current machine doesn't have, but an **empty selected run** would
/// make the gate loop vacuous and pass with zero kernels checked.
///
/// # Errors
/// A gate-fatal message when the baseline has no runs at all, or when
/// the selected run lists zero kernel points for this thread count.
pub fn select_baseline_run(
    runs: &[BenchRun],
    cand_threads: Option<usize>,
) -> Result<(&BenchRun, bool), String> {
    let matched = runs
        .iter()
        .find(|r| r.threads.is_some() && r.threads == cand_threads);
    let threads_match = matched.is_some();
    let Some(baseline) = matched.or_else(|| runs.first()) else {
        return Err("baseline contains no runs".to_string());
    };
    if baseline.points.is_empty() {
        return Err(format!(
            "baseline run selected for candidate threads {} lists zero \
             kernel points — the gate would pass vacuously; re-run \
             `make bench-baseline` at this width or fix the baseline file",
            cand_threads.map_or_else(|| "unknown".to_string(), |t| t.to_string())
        ));
    }
    Ok((baseline, threads_match))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_roundtrip() {
        let s = format_json_f64(12345.678);
        let back: f64 = s.parse().unwrap();
        assert!((back - 12345.678).abs() < 1e-2);
    }

    #[test]
    fn non_finite_degrades_to_zero() {
        assert_eq!(format_json_f64(f64::NAN), "0");
        assert_eq!(format_json_f64(f64::INFINITY), "0");
    }

    #[test]
    fn time_kernel_counts_calls() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        // Quick mode: 1 warm-up + 3 timed iterations, min returned.
        let t = time_kernel(true, 1.0, 100, || calls.set(calls.get() + 1));
        assert_eq!(calls.get(), 4);
        assert!(t.is_finite() && t >= 0.0);
        // Normal mode with a zero budget: warm-up + exactly one iteration.
        calls.set(0);
        let t = time_kernel(false, 0.0, 100, || calls.set(calls.get() + 1));
        assert_eq!(calls.get(), 2);
        assert!(t.is_finite() && t >= 0.0);
        // Normal mode with a huge budget: capped by max_iters.
        calls.set(0);
        let t = time_kernel(false, 1e9, 5, || calls.set(calls.get() + 1));
        assert_eq!(calls.get(), 6);
        assert!(t.is_finite() && t >= 0.0);
    }

    #[test]
    fn parses_emitter_format() {
        let text = r#"{
  "schema": "radix-bench-kernels/v1",
  "quick": false,
  "configs": [
    {
      "name": "n16_deg2_b4",
      "n": 16,
      "kernels": [
        {"name": "csr_serial_unfused", "seconds_per_iter": 4.089235e-3, "edges_per_sec": 1.025694e9},
        {"name": "prepared_tiled_fused", "seconds_per_iter": 1.5e-3, "edges_per_sec": 2.0e9}
      ]
    },
    {
      "name": "n32_deg4_b8",
      "kernels": [
        {"name": "csr_serial_unfused", "seconds_per_iter": 2.0e-3, "edges_per_sec": 1.0e9}
      ]
    }
  ]
}"#;
        let points = parse_bench_json(text);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].config, "n16_deg2_b4");
        assert_eq!(points[0].kernel, "csr_serial_unfused");
        assert!((points[0].seconds_per_iter - 4.089235e-3).abs() < 1e-12);
        assert_eq!(points[1].kernel, "prepared_tiled_fused");
        assert_eq!(points[2].config, "n32_deg4_b8");
    }

    #[test]
    fn parses_the_committed_baseline_shape() {
        // The committed baseline must stay parseable; mirror one real line.
        let line = r#"        {"name": "prepared_serial_fused", "seconds_per_iter": 3.602354e-3, "edges_per_sec": 1.164323e9},"#;
        let points = parse_bench_json(line);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].kernel, "prepared_serial_fused");
    }

    #[test]
    fn ignores_malformed_lines() {
        assert!(parse_bench_json("not json at all\n{}\n").is_empty());
    }

    #[test]
    fn parses_thread_count_when_present() {
        let text = "{\n  \"schema\": \"radix-bench-kernels/v2\",\n  \"threads\": 4,\n}";
        assert_eq!(parse_bench_threads(text), Some(4));
        // Baselines predating the field have no thread key.
        assert_eq!(parse_bench_threads("{\n  \"quick\": false\n}"), None);
    }

    #[test]
    fn parses_single_run_files_as_one_run() {
        let text = "{\n  \"schema\": \"radix-bench-kernels/v2\",\n  \"threads\": 2,\n  \"configs\": [\n    {\n      \"name\": \"n16_deg2_b4\",\n      \"kernels\": [\n        {\"name\": \"a\", \"seconds_per_iter\": 1.0e-3, \"edges_per_sec\": 2.0e9}\n      ]\n    }\n  ]\n}";
        let runs = parse_bench_runs(text);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].threads, Some(2));
        assert_eq!(runs[0].points.len(), 1);
        assert_eq!(runs[0].points[0].edges_per_sec, 2.0e9);
        // v1 shape (no threads key): one run, unknown width.
        let v1 = "{\n  \"configs\": [\n    {\"name\": \"c\"},\n        {\"name\": \"k\", \"seconds_per_iter\": 2.0e-3, \"edges_per_sec\": 1.0e9}\n  ]\n}";
        let runs = parse_bench_runs(v1);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].threads, None);
    }

    #[test]
    fn merged_baselines_roundtrip_through_emit_and_parse() {
        let runs = vec![
            BenchRun {
                threads: Some(1),
                points: vec![
                    BenchPoint {
                        config: "n16_deg2_b4".into(),
                        kernel: "serial".into(),
                        seconds_per_iter: 1.5e-3,
                        edges_per_sec: 2.0e9,
                    },
                    BenchPoint {
                        config: "n32_deg4_b8".into(),
                        kernel: "serial".into(),
                        seconds_per_iter: 2.5e-3,
                        edges_per_sec: 1.0e9,
                    },
                ],
            },
            BenchRun {
                threads: Some(2),
                points: vec![BenchPoint {
                    config: "n16_deg2_b4".into(),
                    kernel: "pool_rayon".into(),
                    seconds_per_iter: 0.9e-3,
                    edges_per_sec: 3.0e9,
                }],
            },
        ];
        let text = emit_bench_runs(&runs);
        let back = parse_bench_runs(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].threads, Some(1));
        assert_eq!(back[1].threads, Some(2));
        assert_eq!(back[0].points.len(), 2);
        assert_eq!(back[0].points[1].config, "n32_deg4_b8");
        assert_eq!(back[1].points[0].kernel, "pool_rayon");
        assert!((back[1].points[0].seconds_per_iter - 0.9e-3).abs() < 1e-9);
        // Flattening matches the per-run view.
        assert_eq!(parse_bench_json(&text).len(), 3);
    }

    #[test]
    fn classifies_pool_kernels() {
        for name in [
            "csr_rayon_unfused",
            "prepared_rayon_fused",
            "prepared_tiled_rayon_fused",
            "transposed_tiled_rayon",
            "spgemm_rayon",
            "serve_p99_rel10",
            "serve_row_closed_loop",
        ] {
            assert!(is_parallel_kernel(name), "{name}");
        }
        for name in [
            "csr_serial_unfused",
            "prepared_tiled_fused",
            "transposed_serial",
            "transposed_tiled",
            "tiled_act90_gather",
            "tiled_act90_scatter",
            "fused_2layer_serial_per_layer",
            "spgemm_serial",
        ] {
            assert!(!is_parallel_kernel(name), "{name}");
        }
    }

    #[test]
    fn classifies_serve_points_and_gating() {
        assert!(is_serve_point("serve_p50_rel10"));
        assert!(is_serve_point("serve_row_closed_loop"));
        assert!(!is_serve_point("prepared_tiled_fused"));
        // Only tail-latency points gate; p50, throughput, and the shed
        // rate ride along.
        assert!(serve_point_gates("serve_p99_rel10"));
        assert!(serve_point_gates("serve_p99_rel60"));
        assert!(serve_point_gates("serve_shed_p99_rel150"));
        assert!(!serve_point_gates("serve_shed_rate_rel150"));
        assert!(!serve_point_gates("serve_p50_rel10"));
        assert!(!serve_point_gates("serve_row_closed_loop"));
        assert!(!serve_point_gates("prepared_rayon_fused"));
    }

    fn run_text(threads: usize, kernels: &[&str]) -> String {
        let runs = vec![BenchRun {
            threads: Some(threads),
            points: kernels
                .iter()
                .map(|k| BenchPoint {
                    config: "n16_deg2_b4".into(),
                    kernel: (*k).to_string(),
                    seconds_per_iter: 1.0e-3,
                    edges_per_sec: 1.0e9,
                })
                .collect(),
        }];
        emit_bench_runs(&runs)
    }

    #[test]
    fn candidate_merge_unions_points_and_threads() {
        let files = vec![
            ("a.json".to_string(), run_text(2, &["serial", "rayon"])),
            ("b.json".to_string(), run_text(2, &["serve_p99_rel10"])),
        ];
        let run = merge_candidate_runs(&files).unwrap();
        assert_eq!(run.threads, Some(2));
        assert_eq!(run.points.len(), 3);
    }

    #[test]
    fn candidate_with_zero_points_is_a_hard_failure() {
        // A headers-only scratch file (threads key, no kernel lines): the
        // shape an interrupted emitter leaves behind. It must fail loudly,
        // even alongside a healthy file.
        let empty = "{\n  \"schema\": \"radix-bench-kernels/v4\",\n  \"threads\": 2,\n}\n";
        let files = vec![
            ("good.json".to_string(), run_text(2, &["serial"])),
            ("empty.json".to_string(), empty.to_string()),
        ];
        let err = merge_candidate_runs(&files).unwrap_err();
        assert!(err.contains("empty.json"), "{err}");
        assert!(err.contains("zero kernel points"), "{err}");
        // Same for a candidate list that is empty or holds several runs.
        assert!(merge_candidate_runs(&[]).is_err());
        let two_runs = emit_bench_runs(&[
            parse_bench_runs(&run_text(1, &["a"])).remove(0),
            parse_bench_runs(&run_text(2, &["b"])).remove(0),
        ]);
        let err = merge_candidate_runs(&[("multi.json".to_string(), two_runs)]).unwrap_err();
        assert!(err.contains("exactly one run"), "{err}");
    }

    #[test]
    fn candidate_thread_mismatch_is_a_hard_failure() {
        let files = vec![
            ("a.json".to_string(), run_text(1, &["serial"])),
            ("b.json".to_string(), run_text(4, &["rayon"])),
        ];
        let err = merge_candidate_runs(&files).unwrap_err();
        assert!(err.contains("different thread counts"), "{err}");
    }

    #[test]
    fn baseline_selection_matches_width_and_rejects_empty_runs() {
        let full = parse_bench_runs(&run_text(2, &["serial"])).remove(0);
        let empty = BenchRun {
            threads: Some(4),
            points: Vec::new(),
        };
        let runs = vec![full.clone(), empty];
        // Matched width with points: gates.
        let (run, matched) = select_baseline_run(&runs, Some(2)).unwrap();
        assert!(matched);
        assert_eq!(run.threads, Some(2));
        // Unmatched width: falls back to the first run, report-only pools.
        let (run, matched) = select_baseline_run(&runs, Some(8)).unwrap();
        assert!(!matched);
        assert_eq!(run.threads, Some(2));
        // Matched width whose run has zero points: the silent-pass bug —
        // must now be a hard failure, not a vacuous success.
        let err = select_baseline_run(&runs, Some(4)).unwrap_err();
        assert!(err.contains("zero"), "{err}");
        assert!(err.contains('4'), "{err}");
        // No runs at all.
        assert!(select_baseline_run(&[], Some(1)).is_err());
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&samples, 0.5), 3.0);
        assert_eq!(percentile(&samples, 0.99), 5.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 1.0), 5.0);
        assert_eq!(percentile(&[7.5], 0.99), 7.5);
        assert_eq!(percentile(&[], 0.5), 0.0);
        // q past 1.0 clamps instead of indexing out of range.
        assert_eq!(percentile(&samples, 2.0), 5.0);
    }

    #[test]
    fn v4_header_roundtrips() {
        let runs = vec![BenchRun {
            threads: Some(2),
            points: vec![BenchPoint {
                config: "serve_n4096_deg16_b8".into(),
                kernel: "serve_p99_rel10".into(),
                seconds_per_iter: 2.0e-3,
                edges_per_sec: 0.0,
            }],
        }];
        let text = emit_bench_runs(&runs);
        assert!(text.contains("radix-bench-kernels/v4"));
        let back = parse_bench_runs(&text);
        assert_eq!(back, runs);
    }
}
