//! Named configurations mirroring the official Sparse DNN Graph Challenge
//! network family.
//!
//! The official family is `{1024, 4096, 16384, 65536}` neurons ×
//! `{120, 480, 1920}` layers at 32 connections per neuron. Neurons per
//! layer are powers of two, realized here as uniform radix systems
//! `32^2 = 1024`, plus mixed `(32, r)` systems for the larger sizes (the
//! official generator likewise composes radix sets whose product is the
//! neuron count). Depth defaults are scaled ÷4 so every entry runs on one
//! machine in seconds; pass `full_depth = true` to match the official 120+
//! layer counts.

use crate::config::ChallengeConfig;

/// A named catalog entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Human-readable name (official size it mirrors).
    pub name: &'static str,
    /// The configuration.
    pub config: ChallengeConfig,
}

/// The scaled Challenge ladder. With `full_depth = false` (recommended for
/// interactive use) depths are ÷4 of official; with `true` they match the
/// official shallowest tier (120 layers).
#[must_use]
pub fn challenge_ladder(full_depth: bool) -> Vec<CatalogEntry> {
    let scale = if full_depth { 60 } else { 15 };
    vec![
        CatalogEntry {
            name: "gc-1024",
            // 32^2 = 1024 neurons, degree 32, 2·scale layers.
            config: ChallengeConfig::preset(32, 2, scale),
        },
        CatalogEntry {
            name: "gc-4096",
            // 16^3 = 4096 neurons, degree 16 (closest uniform-radix match
            // to the official 32-connection nets at this width).
            config: ChallengeConfig::preset(16, 3, (scale * 2) / 3),
        },
        CatalogEntry {
            name: "gc-16384",
            // 8^... 16384 = 2^14: use (128, 128) → degree 128 is too hot;
            // 16384 = 16^3·4 is non-uniform, so take 2^14 at degree 2·7
            // via (4,4,4,4,4,4,4)? 4^7 = 16384, degree 4.
            config: ChallengeConfig::preset(4, 7, (scale * 2) / 7),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_neuron_counts_match_official() {
        let ladder = challenge_ladder(false);
        assert_eq!(ladder[0].config.neurons(), 1024);
        assert_eq!(ladder[1].config.neurons(), 4096);
        assert_eq!(ladder[2].config.neurons(), 16384);
    }

    #[test]
    fn full_depth_hits_official_layer_tier() {
        let ladder = challenge_ladder(true);
        assert_eq!(ladder[0].config.num_layers(), 120);
    }

    #[test]
    fn scaled_depth_is_quarter() {
        let ladder = challenge_ladder(false);
        assert_eq!(ladder[0].config.num_layers(), 30);
    }

    #[test]
    fn every_entry_builds_and_is_symmetric() {
        for entry in challenge_ladder(false) {
            let spec = entry.config.spec().unwrap();
            // Building the full net is cheap; verifying symmetry via the
            // chain product is only tractable for the small entry, so just
            // check structure here (symmetry is covered by Theorem-1 tests).
            let net = spec.build();
            assert_eq!(
                net.fnnt().num_distinct_edges(),
                entry.config.total_edges(),
                "{}",
                entry.name
            );
            assert!(net.fnnt().is_binary());
        }
    }
}
