//! Graph-Challenge-style network configurations.
//!
//! The MIT/IEEE/Amazon Sparse DNN Graph Challenge generates its synthetic
//! benchmark networks with RadiX-Net: `N` neurons per layer with a fixed
//! number of connections per neuron, stacked for `L` layers, constant
//! weights and a per-layer negative bias. The official sizes (1024–65536
//! neurons × 120–1920 layers) are reproduced here in shape and scaled down
//! in magnitude so a single machine regenerates every series in seconds
//! (DESIGN.md §4).
//!
//! Construction: a radix-`r`, depth-`k` uniform system gives `N' = r^k`
//! neurons at `r` connections per neuron per layer; concatenating
//! `L / k` such systems yields an `L`-layer RadiX-Net with uniform degree —
//! exactly the Challenge generator's recipe.

use radix_net::{MixedRadixSystem, RadixError, RadixNetSpec};

/// Configuration of a Graph-Challenge-style sparse DNN.
#[derive(Debug, Clone, PartialEq)]
pub struct ChallengeConfig {
    /// Connections per neuron (the radix `r`).
    pub radix: usize,
    /// Radices per system (`k`; neurons per layer = `r^k`).
    pub depth_per_system: usize,
    /// Number of concatenated systems (total layers = `k · num_systems`).
    pub num_systems: usize,
    /// Constant weight value (the Challenge uses `1/r` so activations
    /// neither explode nor vanish).
    pub weight: f32,
    /// Constant per-neuron bias (the Challenge uses small negatives, e.g.
    /// −0.30 for 32 connections).
    pub bias: f32,
    /// Activation clamp `YMAX` (the Challenge clips at 32).
    pub ymax: f32,
}

impl ChallengeConfig {
    /// The standard scaled-down preset, matching the official Challenge
    /// dynamics: weight `2/r` (the official 32-connection nets use 1/16,
    /// i.e. a per-layer gain of 2) with bias `−0.30` and `YMAX = 32`. The
    /// gain-2/negative-bias pair gives the Challenge's signature behaviour:
    /// activations below the 0.3 fixed point die out, those above grow
    /// until the clamp holds them at `YMAX`.
    #[must_use]
    pub fn preset(radix: usize, depth_per_system: usize, num_systems: usize) -> Self {
        ChallengeConfig {
            radix,
            depth_per_system,
            num_systems,
            weight: 2.0 / radix as f32,
            bias: -0.30,
            ymax: 32.0,
        }
    }

    /// Neurons per layer, `r^k`.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.radix.pow(self.depth_per_system as u32)
    }

    /// Total number of edge layers, `k · num_systems`.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.depth_per_system * self.num_systems
    }

    /// Edges per layer (`neurons · r`).
    #[must_use]
    pub fn edges_per_layer(&self) -> usize {
        self.neurons() * self.radix
    }

    /// Total edges across the network.
    #[must_use]
    pub fn total_edges(&self) -> usize {
        self.edges_per_layer() * self.num_layers()
    }

    /// Builds the RadiX-Net spec generating this network's topology.
    ///
    /// # Errors
    /// Propagates construction errors (degenerate radix, overflow).
    pub fn spec(&self) -> Result<RadixNetSpec, RadixError> {
        let system = MixedRadixSystem::uniform(self.radix, self.depth_per_system)?;
        let systems = vec![system; self.num_systems.max(1)];
        RadixNetSpec::extended_mixed_radix(systems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_challenge_arithmetic() {
        // Scaled analogue of the official 1024-neuron network: r=32, k=2.
        let c = ChallengeConfig::preset(32, 2, 3);
        assert_eq!(c.neurons(), 1024);
        assert_eq!(c.num_layers(), 6);
        assert_eq!(c.edges_per_layer(), 32768);
        // Official 32-connection nets: weight 1/16 (gain 2), bias −0.30.
        assert!((c.weight - 1.0 / 16.0).abs() < 1e-9);
        assert!((c.bias + 0.3).abs() < 1e-6);
    }

    #[test]
    fn spec_builds_uniform_degree_topology() {
        let c = ChallengeConfig::preset(4, 3, 2);
        let net = c.spec().unwrap().build();
        let g = net.fnnt();
        assert_eq!(g.layer_sizes(), vec![64; 7]);
        assert_eq!(g.num_edge_layers(), 6);
        for l in 0..6 {
            for i in 0..64 {
                assert_eq!(g.layer(l).row_nnz(i), 4, "layer {l} node {i}");
            }
        }
        assert_eq!(g.num_distinct_edges(), c.total_edges());
    }

    #[test]
    fn spec_is_symmetric_per_theorem1() {
        let c = ChallengeConfig::preset(2, 3, 2);
        let spec = c.spec().unwrap();
        assert!(radix_net::verify_spec(&spec).matches);
    }

    #[test]
    fn small_radix_preset_keeps_gain_two() {
        let c = ChallengeConfig::preset(2, 4, 1);
        assert!((c.weight - 1.0).abs() < 1e-7); // 2/r with r = 2
        assert!((c.bias + 0.3).abs() < 1e-7);
        assert_eq!(c.neurons(), 16);
    }
}
