//! Deterministic fault injection for the serving stack.
//!
//! Compiled unconditionally — no feature flag, no cfg — so the exact code
//! under test is the code that ships; activation is purely a matter of
//! data. An inactive [`FaultInjector`] (the default) costs one branch per
//! hook and allocates nothing, so the serving engine's zero-allocation
//! steady state is preserved.
//!
//! Three failure shapes cover the engine's fault surface:
//!
//! * **engine panic at the Nth batch** ([`FaultPlan::panic_at_batch`]) —
//!   drives the `EngineFailed` path, the exit-guard wake-ups, and the
//!   supervisor's restart logic; bounded by [`FaultPlan::panic_budget`] so
//!   a restarted engine eventually runs clean (the injector's counters are
//!   shared across engine generations),
//! * **per-batch compute delay** ([`FaultPlan::compute_delay_us`]) —
//!   deadline pressure: queued requests expire and must be shed with
//!   `DeadlineExceeded`, never served late,
//! * **slot-release stall** ([`FaultPlan::release_stall_us`]) — admission
//!   pressure: slots return to the free list slowly, so non-blocking and
//!   bounded-wait submits hit the `Overloaded` paths.
//!
//! Activation routes: construct a [`FaultPlan`] and pass it through
//! `ServeEngine::start_with_faults` / `ServeSupervisor::start_with_faults`
//! (what the chaos suites do), or set the `RADIX_FAULT_*` environment
//! variables (read by `ServeEngine::start`) to inject faults into an
//! unmodified binary:
//!
//! | variable | meaning |
//! |---|---|
//! | `RADIX_FAULT_PANIC_BATCH` | panic the engine thread at this (1-based, cumulative) batch |
//! | `RADIX_FAULT_PANIC_BUDGET` | how many injected panics may fire in total (default 1) |
//! | `RADIX_FAULT_COMPUTE_DELAY_US` | sleep this long before each batch's forward pass |
//! | `RADIX_FAULT_RELEASE_STALL_US` | sleep this long in each client's slot release |

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Message prefix of every injected engine panic — chaos tests match on it
/// to distinguish injected faults from genuine bugs.
pub const INJECTED_PANIC_MSG: &str = "injected engine fault";

/// A declarative schedule of faults to inject. Plain data (`Copy`,
/// comparable) so proptests can generate, shrink, and print schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Panic the engine thread when the cumulative batch count (1-based,
    /// shared across engine generations) reaches this value; `None`
    /// injects no panics.
    pub panic_at_batch: Option<u64>,
    /// Total injected panics allowed. With a supervisor restarting the
    /// engine, a budget of `n` produces exactly `n` engine deaths before
    /// the pipeline runs clean. Ignored when `panic_at_batch` is `None`.
    pub panic_budget: u32,
    /// Sleep before each batch's forward pass, in microseconds — makes
    /// queued requests miss their deadlines (shed pressure).
    pub compute_delay_us: u64,
    /// Sleep inside each client's slot release, in microseconds — holds
    /// slots out of the free list (admission pressure).
    pub release_stall_us: u64,
}

impl FaultPlan {
    /// Whether this plan injects anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.panic_at_batch.is_some() || self.compute_delay_us > 0 || self.release_stall_us > 0
    }
}

/// A [`FaultPlan`] plus the shared mutable state that sequences it: a
/// cumulative batch counter and a remaining-panic budget. Clones share
/// the counters (`Arc`), which is what makes the plan meaningful across
/// supervisor restarts — a fresh engine generation continues the old
/// batch count and cannot re-fire an exhausted panic.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Batches executed so far, across every engine generation.
    batches: Arc<AtomicU64>,
    /// Injected panics still allowed.
    panics_left: Arc<AtomicU32>,
    /// Cached `plan.is_active()` — the only thing the happy path reads.
    active: bool,
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::inactive()
    }
}

impl FaultInjector {
    /// An injector that never fires; every hook is a single branch.
    #[must_use]
    pub fn inactive() -> Self {
        Self::new(FaultPlan::default())
    }

    /// An injector executing `plan` from a zero batch count.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            active: plan.is_active(),
            batches: Arc::new(AtomicU64::new(0)),
            panics_left: Arc::new(AtomicU32::new(if plan.panic_at_batch.is_some() {
                plan.panic_budget.max(1)
            } else {
                0
            })),
            plan,
        }
    }

    /// Builds the plan from the `RADIX_FAULT_*` environment (all unset →
    /// inactive). See the module docs for the variable table.
    #[must_use]
    pub fn from_env() -> Self {
        let parse = |name: &str| -> Option<u64> {
            std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok())
        };
        Self::new(FaultPlan {
            panic_at_batch: parse("RADIX_FAULT_PANIC_BATCH").filter(|&n| n > 0),
            panic_budget: parse("RADIX_FAULT_PANIC_BUDGET")
                .map_or(1, |n| n.min(u64::from(u32::MAX)) as u32),
            compute_delay_us: parse("RADIX_FAULT_COMPUTE_DELAY_US").unwrap_or(0),
            release_stall_us: parse("RADIX_FAULT_RELEASE_STALL_US").unwrap_or(0),
        })
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Batches executed so far across every engine generation sharing
    /// this injector.
    #[must_use]
    pub fn batches_seen(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Engine hook, called at the top of every flush (before any slot is
    /// touched). Counts the batch; panics when the schedule says so.
    ///
    /// # Panics
    /// Panics (message prefixed [`INJECTED_PANIC_MSG`]) when the
    /// cumulative batch count reaches [`FaultPlan::panic_at_batch`] and
    /// the panic budget is not exhausted.
    pub fn before_execute(&self) {
        if !self.active {
            return;
        }
        let seq = self.batches.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(at) = self.plan.panic_at_batch {
            if seq >= at {
                let fired = self
                    .panics_left
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| p.checked_sub(1))
                    .is_ok();
                if fired {
                    panic!("{INJECTED_PANIC_MSG} at batch {seq}");
                }
            }
        }
    }

    /// Engine hook, called between gather and the forward pass: injects
    /// the configured compute delay.
    pub fn compute_delay(&self) {
        if self.active && self.plan.compute_delay_us > 0 {
            std::thread::sleep(Duration::from_micros(self.plan.compute_delay_us));
        }
    }

    /// Client hook, called in the slot-release path: injects the
    /// configured stall before the slot returns to the free list.
    pub fn release_stall(&self) {
        if self.active && self.plan.release_stall_us > 0 {
            std::thread::sleep(Duration::from_micros(self.plan.release_stall_us));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_injector_never_fires() {
        let f = FaultInjector::inactive();
        assert!(!f.plan().is_active());
        for _ in 0..100 {
            f.before_execute(); // must not panic
            f.compute_delay();
            f.release_stall();
        }
        assert_eq!(f.batches_seen(), 0, "inactive hooks do not even count");
    }

    #[test]
    fn panic_fires_at_scheduled_batch_and_respects_budget() {
        let f = FaultInjector::new(FaultPlan {
            panic_at_batch: Some(3),
            panic_budget: 1,
            ..FaultPlan::default()
        });
        f.before_execute();
        f.before_execute();
        let caught = std::panic::catch_unwind(|| f.before_execute());
        assert!(caught.is_err(), "third batch must panic");
        // Budget exhausted: later batches run clean, forever.
        for _ in 0..10 {
            f.before_execute();
        }
        assert_eq!(f.batches_seen(), 13);
    }

    #[test]
    fn clones_share_the_schedule_across_generations() {
        let f = FaultInjector::new(FaultPlan {
            panic_at_batch: Some(2),
            panic_budget: 2,
            ..FaultPlan::default()
        });
        let gen2 = f.clone();
        f.before_execute();
        assert!(std::panic::catch_unwind(|| f.before_execute()).is_err());
        // The "restarted" generation sees the cumulative count (already
        // past the trigger) and the decremented budget: one more fire.
        assert!(std::panic::catch_unwind(|| gen2.before_execute()).is_err());
        gen2.before_execute();
        gen2.before_execute();
        assert_eq!(f.batches_seen(), gen2.batches_seen());
    }

    #[test]
    fn env_parsing_defaults_to_inactive() {
        // The test environment does not set RADIX_FAULT_*; from_env must
        // yield an inactive injector (this is what production start() sees).
        let f = FaultInjector::from_env();
        assert!(!f.plan().is_active());
    }
}
