//! Batch-synchronous sparse DNN inference — the Graph Challenge kernel.
//!
//! The Challenge kernel is, per layer, `Y ← clamp(ReLU(Y·W + b), 0, YMAX)`
//! with `Y` the batch-major dense activations and `W` a sparse layer. The
//! reported metric is the edge-processing rate: `batch · Σ nnz(W_l)`
//! divided by wall time ("input-edges per second").
//!
//! The layers are held as [`PreparedWeights`]: RadiX-Net layer matrices
//! have constant row degree, so every product runs on the ELL fast path —
//! column-tiled for wide layers (`RADIX_TILE_COLS`) so the scatter targets
//! stay cache-resident — with the bias + ReLU + `YMAX` clamp fused into
//! the kernel as an [`Epilogue`]. Tiled products run the
//! activation-sparsity dispatch (`radix_sparse::kernel`'s
//! `ActivationSchedule::Auto`): deep Challenge layers whose post-ReLU
//! activations fall below the `RADIX_ACT_SPARSE_THRESHOLD` nonzero
//! fraction switch from the branch-free gather to a zero-skipping
//! scatter, block by block, with identical results.
//!
//! The forward pass runs a **multi-layer tile-fused schedule**: instead of
//! finishing each layer on the whole batch before starting the next (a
//! full-batch barrier whose intermediate activations round-trip through
//! memory), consecutive layers are grouped ([`fuse_layers`], env
//! `RADIX_FUSE_LAYERS`, default 2) and each `fuse_block_rows()`-row block of
//! the batch is pushed through the whole group while its activations are
//! still cache-hot. Group outputs ping-pong between the two main
//! [`InferWorkspace`] buffers exactly as before; the within-group
//! intermediates live in small per-worker scratch ping-pongs. Every row's
//! arithmetic is unchanged, so results stay bitwise identical to the
//! layer-by-layer schedule.
//!
//! After the workspace warm-up the timed region performs **zero heap
//! allocation**, for the serial *and* the pool-parallel schedule
//! (`tests/zero_alloc.rs` pins both down with a counting allocator).

use std::sync::OnceLock;
use std::time::Instant;

use radix_sparse::kernel::{use_parallel, PingPong};
use radix_sparse::{Bias, CsrMatrix, DenseMatrix, Epilogue, PreparedWeights};

use crate::config::ChallengeConfig;

/// Default number of consecutive layers fused per row block.
pub const DEFAULT_FUSE_LAYERS: usize = 2;

/// Batch rows per fused block — the block's intermediate activations
/// (`fuse_block_rows() × layer width` values, twice) must stay
/// cache-resident across the group's layers. Shares the kernel engine's
/// [`radix_sparse::kernel::block_rows`] tunable (`RADIX_BLOCK_ROWS` /
/// profile / default 32) so one knob shapes every row-blocked schedule.
#[inline]
fn fuse_block_rows() -> usize {
    radix_sparse::kernel::block_rows()
}

/// How many consecutive layers the forward pass fuses per row block,
/// resolved with the tunable precedence (env > profile > default):
/// `RADIX_FUSE_LAYERS` from the environment if set to a positive parseable
/// `usize` (1 disables fusion), else the persisted tuning profile's
/// opinion at this thread count (see
/// [`radix_sparse::kernel::profile`]), otherwise [`DEFAULT_FUSE_LAYERS`].
/// Read once and cached for the process lifetime.
#[must_use]
pub fn fuse_layers() -> usize {
    static FUSE: OnceLock<usize> = OnceLock::new();
    *FUSE.get_or_init(|| {
        radix_sparse::kernel::resolve_knob(
            radix_sparse::kernel::env_usize_opt("RADIX_FUSE_LAYERS"),
            radix_sparse::kernel::active_profile().and_then(|p| p.fuse_layers),
            DEFAULT_FUSE_LAYERS,
        )
    })
}

/// A Challenge network instance: prepared sparse weight layers plus the
/// scalar bias/clamp parameters applied uniformly (as in the official
/// benchmark).
#[derive(Debug, Clone, PartialEq)]
pub struct ChallengeNetwork {
    layers: Vec<PreparedWeights<f32>>,
    bias: f32,
    ymax: f32,
}

/// Ping-pong activation buffers for allocation-free Challenge inference.
/// Size once (or let the first pass grow them to the high-water mark),
/// then every subsequent forward pass is allocation-free. The buffer
/// alternation is `radix_sparse::kernel`'s [`PingPong`] driver, shared
/// with the `radix-nn` forward workspace; `scratch` holds one small
/// per-worker ping-pong for the within-group intermediates of the fused
/// schedule (index = pool worker slot, so parallel blocks never share).
#[derive(Debug, Clone, Default)]
pub struct InferWorkspace {
    buffers: PingPong<f32>,
    scratch: Vec<PingPong<f32>>,
}

impl InferWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        InferWorkspace::default()
    }

    /// A workspace pre-sized for `net` at the given batch size, so even
    /// the first forward pass allocates nothing (serial or parallel — one
    /// fused-block scratch pair is pre-sized per pool thread).
    #[must_use]
    pub fn for_network(net: &ChallengeNetwork, batch: usize) -> Self {
        let widest = net
            .layers
            .iter()
            .map(PreparedWeights::ncols)
            .max()
            .unwrap_or(0);
        let block = fuse_block_rows().min(batch.max(1));
        let scratch = (0..rayon::current_num_threads())
            .map(|_| PingPong::with_capacity(block, widest))
            .collect();
        InferWorkspace {
            buffers: PingPong::with_capacity(batch, widest),
            scratch,
        }
    }

    /// The output of the most recent forward pass.
    #[must_use]
    pub fn output(&self) -> &DenseMatrix<f32> {
        self.buffers.output()
    }

    /// Takes the most recent output out of the workspace (leaving an
    /// empty buffer that will regrow on next use).
    #[must_use]
    pub fn take_output(&mut self) -> DenseMatrix<f32> {
        self.buffers.take_output()
    }
}

/// How a forward pass chooses between the serial and Rayon kernels.
#[derive(Clone, Copy)]
enum Schedule {
    /// Caller-forced choice for every layer.
    Fixed(bool),
    /// Per-layer decision via the shared work heuristic.
    Auto,
}

/// Result of one timed inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceStats {
    /// Wall-clock seconds for the full forward pass.
    pub seconds: f64,
    /// Total input edges processed (`batch · Σ nnz(W_l)`).
    pub edges_processed: u64,
    /// Edge-processing rate (edges / second), the Challenge metric.
    pub rate: f64,
    /// Number of nonzero activations in the final layer output.
    pub final_active: usize,
}

impl ChallengeNetwork {
    /// Builds the network from a configuration: topology from the
    /// RadiX-Net spec, every edge weighted `config.weight`.
    ///
    /// # Errors
    /// Propagates topology construction errors.
    pub fn from_config(config: &ChallengeConfig) -> Result<Self, radix_net::RadixError> {
        let net = config.spec()?.build();
        let weight = config.weight;
        let layers = net
            .fnnt()
            .submatrices()
            .iter()
            .map(|w| {
                let mut p = PreparedWeights::from_csr(w.map(|_| weight));
                // One-time column-tiling pass; narrow layers stay untiled.
                p.tile();
                p
            })
            .collect();
        Ok(ChallengeNetwork {
            layers,
            bias: config.bias,
            ymax: config.ymax,
        })
    }

    /// Builds directly from explicit weight layers (for tests and for
    /// non-RadiX-Net comparisons).
    ///
    /// # Panics
    /// Panics if layers are empty or do not chain.
    #[must_use]
    pub fn from_layers(layers: Vec<CsrMatrix<f32>>, bias: f32, ymax: f32) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].ncols(), pair[1].nrows(), "layers must chain");
        }
        ChallengeNetwork {
            layers: layers
                .into_iter()
                .map(|w| {
                    let mut p = PreparedWeights::from_csr(w);
                    p.tile();
                    p
                })
                .collect(),
            bias,
            ymax,
        }
    }

    /// The prepared weight layers.
    #[must_use]
    pub fn layers(&self) -> &[PreparedWeights<f32>] {
        &self.layers
    }

    /// Neurons in the input layer.
    #[must_use]
    pub fn n_in(&self) -> usize {
        self.layers[0].nrows()
    }

    /// Total stored edges.
    #[must_use]
    pub fn total_nnz(&self) -> usize {
        self.layers.iter().map(PreparedWeights::nnz).sum()
    }

    /// The uniform bias applied before ReLU at every layer.
    #[must_use]
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// The activation clamp `YMAX`.
    #[must_use]
    pub fn ymax(&self) -> f32 {
        self.ymax
    }

    /// The Challenge nonlinearity `v ↦ clamp(v + bias, 0, YMAX)` as a
    /// fused epilogue (the ReLU is the lower clamp bound).
    pub(crate) fn epilogue(&self) -> Epilogue<'static, f32, impl Fn(f32) -> f32 + Sync + Copy> {
        let ymax = self.ymax;
        Epilogue::new(Bias::Uniform(self.bias), move |v: f32| v.clamp(0.0, ymax))
    }

    /// Runs the full forward pass, returning final activations.
    ///
    /// Allocates a transient workspace; hot loops should hold an
    /// [`InferWorkspace`] and call [`ChallengeNetwork::forward_with`].
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    #[must_use]
    pub fn forward(&self, x: &DenseMatrix<f32>, parallel: bool) -> DenseMatrix<f32> {
        let mut ws = InferWorkspace::new();
        self.forward_with(x, parallel, &mut ws);
        ws.take_output()
    }

    /// Forward pass through ping-pong workspace buffers: each layer's
    /// product + fused nonlinearity writes the buffer the previous layer
    /// read from, so a warmed-up pass performs no heap allocation.
    /// Returns the final output, which lives inside the workspace.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    pub fn forward_with<'w>(
        &self,
        x: &DenseMatrix<f32>,
        parallel: bool,
        ws: &'w mut InferWorkspace,
    ) -> &'w DenseMatrix<f32> {
        self.forward_schedule(x, Schedule::Fixed(parallel), ws)
    }

    /// Forward pass that picks serial vs Rayon **per layer** with the
    /// shared `radix_sparse::kernel` work heuristic
    /// (`RADIX_PAR_THRESHOLD`) — the same switch the `radix-nn` layers
    /// use — instead of a caller-supplied flag.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    pub fn forward_auto_with<'w>(
        &self,
        x: &DenseMatrix<f32>,
        ws: &'w mut InferWorkspace,
    ) -> &'w DenseMatrix<f32> {
        self.forward_schedule(x, Schedule::Auto, ws)
    }

    /// Shared driver behind [`ChallengeNetwork::forward_with`] and
    /// [`ChallengeNetwork::forward_auto_with`]: the layers are cut into
    /// groups of [`fuse_layers`] consecutive layers, group outputs
    /// ping-pong through the two main workspace buffers, and within a
    /// group each row block is chained through every layer while its
    /// activations stay cache-hot (see [`forward_group`]).
    fn forward_schedule<'w>(
        &self,
        x: &DenseMatrix<f32>,
        schedule: Schedule,
        ws: &'w mut InferWorkspace,
    ) -> &'w DenseMatrix<f32> {
        let depth = fuse_layers();
        let nlayers = self.layers.len();
        // Non-empty layers are a construction invariant, so groups >= 1.
        let groups = nlayers.div_ceil(depth);
        let InferWorkspace { buffers, scratch } = ws;
        // One fused-block scratch pair per pool worker slot; reaches its
        // high-water mark on the first (warm-up) pass.
        scratch.resize_with(rayon::current_num_threads(), PingPong::new);
        let epi = self.epilogue();
        buffers.run(x, groups, |g, src, dst| {
            let lo = g * depth;
            let hi = (lo + depth).min(nlayers);
            let group = &self.layers[lo..hi];
            let parallel = match schedule {
                Schedule::Fixed(p) => p,
                Schedule::Auto => {
                    let work: usize = group.iter().map(|w| w.work(src.nrows())).sum();
                    use_parallel(work)
                }
            };
            forward_group(group, src, dst, &epi, parallel, scratch);
        })
    }

    /// Timed forward pass with Challenge-style statistics.
    ///
    /// The workspace is sized before the clock starts, so the timed
    /// region is the pure compute kernel: prepared ELL products with the
    /// fused nonlinearity, zero heap allocation.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    #[must_use]
    pub fn run(&self, x: &DenseMatrix<f32>, parallel: bool) -> (DenseMatrix<f32>, InferenceStats) {
        let mut ws = InferWorkspace::for_network(self, x.nrows());
        let start = Instant::now();
        self.forward_with(x, parallel, &mut ws);
        let seconds = start.elapsed().as_secs_f64().max(1e-12);
        let y = ws.take_output();
        let edges_processed = x.nrows() as u64 * self.total_nnz() as u64;
        let final_active = y.count_nonzero();
        (
            y,
            InferenceStats {
                seconds,
                edges_processed,
                rate: edges_processed as f64 / seconds,
                final_active,
            },
        )
    }
}

/// Applies one fused layer group to the whole batch, `src → dst`.
///
/// A single-layer group is one tiled product straight into `dst`. A deeper
/// group cuts the batch into `fuse_block_rows()`-row blocks and chains each
/// block through every layer of the group (intermediates in the worker's
/// scratch ping-pong, final layer writing its slice of `dst` directly), so
/// a block's activations never leave cache between layers. Parallel
/// execution hands blocks to the persistent pool via the allocation-free
/// chunk dispatch, one scratch pair per worker slot.
fn forward_group<F: Fn(f32) -> f32 + Sync>(
    group: &[PreparedWeights<f32>],
    src: &DenseMatrix<f32>,
    dst: &mut DenseMatrix<f32>,
    epi: &Epilogue<'_, f32, F>,
    parallel: bool,
    scratch: &mut [PingPong<f32>],
) {
    if group.len() == 1 {
        let w = &group[0];
        if parallel {
            w.par_spmm_tiled_into(src, dst, epi)
        } else {
            w.spmm_tiled_into(src, dst, epi)
        }
        .expect("layer widths chain");
        return;
    }
    let batch = src.nrows();
    let out_cols = group.last().expect("non-empty group").ncols();
    // Every block is fully written by the last layer's spmm_rows_to.
    dst.resize_for_overwrite(batch, out_cols);
    if batch == 0 || out_cols == 0 {
        dst.as_mut_slice().fill(0.0);
        return;
    }
    let brows = fuse_block_rows();
    if parallel {
        rayon::for_each_chunk_mut_with(
            dst.as_mut_slice(),
            brows * out_cols,
            scratch,
            |pp, blk, chunk| {
                let rows = chunk.len() / out_cols;
                fused_block(group, src, blk * brows, rows, chunk, pp, epi);
            },
        );
    } else {
        let slice = dst.as_mut_slice();
        let pp = &mut scratch[0];
        let mut start = 0usize;
        while start < batch {
            let rows = brows.min(batch - start);
            let chunk = &mut slice[start * out_cols..(start + rows) * out_cols];
            fused_block(group, src, start, rows, chunk, pp, epi);
            start += rows;
        }
    }
}

/// Chains one row block through every layer of a fused group: layer 0
/// reads rows `[start, start + rows)` of `src`, intermediates alternate
/// between the scratch pair, the last layer writes `dst_block`.
fn fused_block<F: Fn(f32) -> f32 + Sync>(
    group: &[PreparedWeights<f32>],
    src: &DenseMatrix<f32>,
    start: usize,
    rows: usize,
    dst_block: &mut [f32],
    pp: &mut PingPong<f32>,
    epi: &Epilogue<'_, f32, F>,
) {
    let (mut cur, mut nxt) = pp.buffers_mut();
    cur.resize_for_overwrite(rows, group[0].ncols());
    group[0]
        .spmm_rows_to(src, start, rows, cur.as_mut_slice(), epi)
        .expect("layer widths chain");
    for w in &group[1..group.len() - 1] {
        nxt.resize_for_overwrite(rows, w.ncols());
        w.spmm_rows_to(cur, 0, rows, nxt.as_mut_slice(), epi)
            .expect("layer widths chain");
        std::mem::swap(&mut cur, &mut nxt);
    }
    group
        .last()
        .expect("non-empty group")
        .spmm_rows_to(cur, 0, rows, dst_block, epi)
        .expect("layer widths chain");
}

#[cfg(test)]
mod tests {
    use super::*;
    use radix_data::sparse_binary_batch;

    fn small_net() -> ChallengeNetwork {
        ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 4, 2)).unwrap()
    }

    #[test]
    fn zero_input_stays_zero() {
        // bias is negative → ReLU(0 + b) = 0 everywhere.
        let net = small_net();
        let x = DenseMatrix::zeros(4, net.n_in());
        let y = net.forward(&x, false);
        assert!(y.all_equal_to(0.0));
    }

    #[test]
    fn ones_input_stays_bounded_and_active() {
        // weight = 1/r keeps the row sums at ~1 per layer; with the small
        // negative bias activations persist but never exceed YMAX.
        let net = small_net();
        let x = DenseMatrix::from_vec(2, net.n_in(), vec![1.0; 2 * net.n_in()]).unwrap();
        let (y, stats) = net.run(&x, false);
        assert!(y.as_slice().iter().all(|&v| (0.0..=32.0).contains(&v)));
        assert!(stats.final_active > 0, "signal must survive the network");
    }

    #[test]
    fn layers_run_on_the_ell_fast_path() {
        // RadiX-Net layers have constant row degree by construction, so
        // the prepared kernels must all take the ELL path.
        let net = small_net();
        assert!(net.layers().iter().all(PreparedWeights::is_ell));
    }

    #[test]
    fn parallel_matches_serial() {
        let net = small_net();
        let x = sparse_binary_batch(8, net.n_in(), 0.3, 0);
        let ys = net.forward(&x, false);
        let yp = net.forward(&x, true);
        assert_eq!(ys, yp);
    }

    #[test]
    fn fused_schedule_matches_layer_by_layer() {
        // The fused group schedule must be bitwise identical to the plain
        // one-layer-at-a-time reference, at batch sizes that exercise a
        // partial block, exactly one block, and several blocks (including
        // a trailing partial one) of fuse_block_rows() = 32 rows.
        let net = ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 5, 3)).unwrap();
        let epi = net.epilogue();
        for batch in [1usize, 7, 31, 32, 33, 64, 80] {
            let x = sparse_binary_batch(batch, net.n_in(), 0.4, batch as u64);
            // Reference: whole-batch barrier between layers, untiled order
            // of application (kernels themselves are bitwise-equal either
            // way, pinned by the radix-sparse proptest suite).
            let mut cur = x.clone();
            let mut nxt = DenseMatrix::default();
            for w in net.layers() {
                w.spmm_into(&cur, &mut nxt, &epi).unwrap();
                std::mem::swap(&mut cur, &mut nxt);
            }
            for parallel in [false, true] {
                assert_eq!(
                    &net.forward(&x, parallel),
                    &cur,
                    "batch {batch}, parallel {parallel}"
                );
            }
        }
    }

    #[test]
    fn fuse_layers_is_stable_and_positive() {
        assert!(fuse_layers() >= 1);
        assert_eq!(fuse_layers(), fuse_layers());
    }

    #[test]
    fn auto_matches_explicit() {
        let net = small_net();
        let x = sparse_binary_batch(8, net.n_in(), 0.3, 3);
        let reference = net.forward(&x, false);
        let mut ws = InferWorkspace::new();
        assert_eq!(net.forward_auto_with(&x, &mut ws), &reference);
    }

    #[test]
    fn workspace_reuse_is_consistent() {
        // Repeated passes through one workspace give identical results.
        let net = small_net();
        let x = sparse_binary_batch(5, net.n_in(), 0.4, 1);
        let reference = net.forward(&x, false);
        let mut ws = InferWorkspace::for_network(&net, 5);
        for _ in 0..3 {
            assert_eq!(net.forward_with(&x, false, &mut ws), &reference);
        }
    }

    #[test]
    fn stats_account_edges() {
        let net = small_net();
        let x = sparse_binary_batch(3, net.n_in(), 0.5, 1);
        let (_, stats) = net.run(&x, false);
        // 8 layers × 16 neurons × degree 2 = 256 edges; × batch 3.
        assert_eq!(stats.edges_processed, 3 * 256);
        assert!(stats.rate > 0.0);
        assert!(stats.seconds > 0.0);
    }

    #[test]
    fn clamp_enforced() {
        // A single layer with huge positive weights must clamp at ymax.
        let w = CsrMatrix::from_dense(&DenseMatrix::from_rows(&[&[100.0f32]]));
        let net = ChallengeNetwork::from_layers(vec![w], 0.0, 32.0);
        let x = DenseMatrix::from_rows(&[&[10.0f32]]);
        let y = net.forward(&x, false);
        assert_eq!(y.get(0, 0), 32.0);
    }

    #[test]
    fn deterministic_topology() {
        let a = ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 3, 2)).unwrap();
        let b = ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 3, 2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "layers must chain")]
    fn mismatched_layers_panic() {
        let a = CsrMatrix::<f32>::identity(2);
        let b = CsrMatrix::<f32>::identity(3);
        let _ = ChallengeNetwork::from_layers(vec![a, b], 0.0, 32.0);
    }
}
