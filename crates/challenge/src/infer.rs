//! Batch-synchronous sparse DNN inference — the Graph Challenge kernel.
//!
//! The Challenge kernel is, per layer, `Y ← clamp(ReLU(Y·W + b), 0, YMAX)`
//! with `Y` the batch-major dense activations and `W` a sparse layer. The
//! reported metric is the edge-processing rate: `batch · Σ nnz(W_l)`
//! divided by wall time ("input-edges per second").

use std::time::Instant;

use radix_sparse::ops::{dense_spmm, par_dense_spmm};
use radix_sparse::{CsrMatrix, DenseMatrix};

use crate::config::ChallengeConfig;

/// A Challenge network instance: sparse weight layers plus the scalar
/// bias/clamp parameters applied uniformly (as in the official benchmark).
#[derive(Debug, Clone, PartialEq)]
pub struct ChallengeNetwork {
    layers: Vec<CsrMatrix<f32>>,
    bias: f32,
    ymax: f32,
}

/// Result of one timed inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceStats {
    /// Wall-clock seconds for the full forward pass.
    pub seconds: f64,
    /// Total input edges processed (`batch · Σ nnz(W_l)`).
    pub edges_processed: u64,
    /// Edge-processing rate (edges / second), the Challenge metric.
    pub rate: f64,
    /// Number of nonzero activations in the final layer output.
    pub final_active: usize,
}

impl ChallengeNetwork {
    /// Builds the network from a configuration: topology from the
    /// RadiX-Net spec, every edge weighted `config.weight`.
    ///
    /// # Errors
    /// Propagates topology construction errors.
    pub fn from_config(config: &ChallengeConfig) -> Result<Self, radix_net::RadixError> {
        let net = config.spec()?.build();
        let weight = config.weight;
        let layers = net
            .fnnt()
            .submatrices()
            .iter()
            .map(|w| w.map(|_| weight))
            .collect();
        Ok(ChallengeNetwork {
            layers,
            bias: config.bias,
            ymax: config.ymax,
        })
    }

    /// Builds directly from explicit weight layers (for tests and for
    /// non-RadiX-Net comparisons).
    ///
    /// # Panics
    /// Panics if layers are empty or do not chain.
    #[must_use]
    pub fn from_layers(layers: Vec<CsrMatrix<f32>>, bias: f32, ymax: f32) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].ncols(), pair[1].nrows(), "layers must chain");
        }
        ChallengeNetwork { layers, bias, ymax }
    }

    /// The weight layers.
    #[must_use]
    pub fn layers(&self) -> &[CsrMatrix<f32>] {
        &self.layers
    }

    /// Neurons in the input layer.
    #[must_use]
    pub fn n_in(&self) -> usize {
        self.layers[0].nrows()
    }

    /// Total stored edges.
    #[must_use]
    pub fn total_nnz(&self) -> usize {
        self.layers.iter().map(CsrMatrix::nnz).sum()
    }

    /// The uniform bias applied before ReLU at every layer.
    #[must_use]
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// The activation clamp `YMAX`.
    #[must_use]
    pub fn ymax(&self) -> f32 {
        self.ymax
    }

    /// Applies bias, ReLU, and the `YMAX` clamp in place — the Challenge
    /// nonlinearity.
    fn nonlinearity(&self, y: &mut DenseMatrix<f32>) {
        let bias = self.bias;
        let ymax = self.ymax;
        y.map_inplace(|v| (v + bias).clamp(0.0, ymax));
    }

    /// Runs the full forward pass, returning final activations.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    #[must_use]
    pub fn forward(&self, x: &DenseMatrix<f32>, parallel: bool) -> DenseMatrix<f32> {
        let mut y = x.clone();
        for w in &self.layers {
            y = if parallel {
                par_dense_spmm(&y, w)
            } else {
                dense_spmm(&y, w)
            }
            .expect("layer widths chain");
            self.nonlinearity(&mut y);
        }
        y
    }

    /// Timed forward pass with Challenge-style statistics.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    #[must_use]
    pub fn run(&self, x: &DenseMatrix<f32>, parallel: bool) -> (DenseMatrix<f32>, InferenceStats) {
        let start = Instant::now();
        let y = self.forward(x, parallel);
        let seconds = start.elapsed().as_secs_f64().max(1e-12);
        let edges_processed = x.nrows() as u64 * self.total_nnz() as u64;
        let final_active = y.count_nonzero();
        (
            y,
            InferenceStats {
                seconds,
                edges_processed,
                rate: edges_processed as f64 / seconds,
                final_active,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radix_data::sparse_binary_batch;

    fn small_net() -> ChallengeNetwork {
        ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 4, 2)).unwrap()
    }

    #[test]
    fn zero_input_stays_zero() {
        // bias is negative → ReLU(0 + b) = 0 everywhere.
        let net = small_net();
        let x = DenseMatrix::zeros(4, net.n_in());
        let y = net.forward(&x, false);
        assert!(y.all_equal_to(0.0));
    }

    #[test]
    fn ones_input_stays_bounded_and_active() {
        // weight = 1/r keeps the row sums at ~1 per layer; with the small
        // negative bias activations persist but never exceed YMAX.
        let net = small_net();
        let x = DenseMatrix::from_vec(2, net.n_in(), vec![1.0; 2 * net.n_in()]).unwrap();
        let (y, stats) = net.run(&x, false);
        assert!(y.as_slice().iter().all(|&v| (0.0..=32.0).contains(&v)));
        assert!(stats.final_active > 0, "signal must survive the network");
    }

    #[test]
    fn parallel_matches_serial() {
        let net = small_net();
        let x = sparse_binary_batch(8, net.n_in(), 0.3, 0);
        let ys = net.forward(&x, false);
        let yp = net.forward(&x, true);
        assert_eq!(ys, yp);
    }

    #[test]
    fn stats_account_edges() {
        let net = small_net();
        let x = sparse_binary_batch(3, net.n_in(), 0.5, 1);
        let (_, stats) = net.run(&x, false);
        // 8 layers × 16 neurons × degree 2 = 256 edges; × batch 3.
        assert_eq!(stats.edges_processed, 3 * 256);
        assert!(stats.rate > 0.0);
        assert!(stats.seconds > 0.0);
    }

    #[test]
    fn clamp_enforced() {
        // A single layer with huge positive weights must clamp at ymax.
        let w = CsrMatrix::from_dense(&DenseMatrix::from_rows(&[&[100.0f32]]));
        let net = ChallengeNetwork::from_layers(vec![w], 0.0, 32.0);
        let x = DenseMatrix::from_rows(&[&[10.0f32]]);
        let y = net.forward(&x, false);
        assert_eq!(y.get(0, 0), 32.0);
    }

    #[test]
    fn deterministic_topology() {
        let a = ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 3, 2)).unwrap();
        let b = ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 3, 2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "layers must chain")]
    fn mismatched_layers_panic() {
        let a = CsrMatrix::<f32>::identity(2);
        let b = CsrMatrix::<f32>::identity(3);
        let _ = ChallengeNetwork::from_layers(vec![a, b], 0.0, 32.0);
    }
}
