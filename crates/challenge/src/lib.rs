//! # radix-challenge
//!
//! A Sparse DNN Graph-Challenge-style inference harness over RadiX-Net
//! generated networks — the paper's most visible downstream use (§IV
//! mentions the companion efforts; the MIT/IEEE/Amazon Sparse DNN Graph
//! Challenge generates its synthetic benchmark networks with RadiX-Net).
//!
//! * [`ChallengeConfig`] — `r^k` neurons × `k·S` layers at `r` connections
//!   per neuron, constant weight `1/r`, small negative bias, `YMAX` clamp —
//!   the Challenge generator's recipe at laptop scale,
//! * [`ChallengeNetwork`] — the timed inference kernel
//!   `Y ← clamp(ReLU(Y·W + b), 0, YMAX)` with Rayon row parallelism and
//!   edges/second reporting (the Challenge metric). Layers are prepared
//!   ELL-layout weights (`radix_sparse::kernel`), column-tiled for cache
//!   residency, with the nonlinearity fused in; the forward pass fuses
//!   [`fuse_layers`] consecutive layers per row block so intermediate
//!   activations stay cache-hot, and group outputs ping-pong through an
//!   [`InferWorkspace`] so the timed region performs zero heap allocation
//!   after warm-up (serial and pool-parallel),
//! * [`forward_pipelined`] — a crossbeam-channel depth-pipelined schedule,
//!   bit-identical results, different parallel structure (ablation bench),
//! * [`ServeEngine`] — an async serving front-end: concurrent clients
//!   submit single rows, a deadline-aware [`MicroBatcher`] coalesces them
//!   into tile blocks under a latency budget, and a demux stage routes
//!   results back — zero-alloc in steady state (`serve`). Failure is part
//!   of the API: every request resolves to exactly one typed
//!   [`ServeError`] outcome (width/finiteness validation, deadline sheds,
//!   overload rejection, engine death), [`ServeSupervisor`] restarts a
//!   crashed engine with bounded backoff, and the `fault` module injects
//!   deterministic faults (engine panics, compute delays, release stalls)
//!   for the chaos suites,
//! * [`OnlineSession`] — live train-while-serve on the one process-wide
//!   pool: crash-supervised checkpointed fine-tuning on the submitter
//!   thread, serve flushes on the scheduler's high-priority lane, and a
//!   publisher that hot-reloads every committed checkpoint generation
//!   into the engine at batch boundaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod config;
pub mod fault;
pub mod infer;
pub mod online;
pub mod pipeline;
pub mod serve;
pub mod stream;
pub mod supervise;

pub use catalog::{challenge_ladder, CatalogEntry};
pub use config::ChallengeConfig;
pub use fault::{FaultInjector, FaultPlan};
pub use infer::{
    fuse_layers, ChallengeNetwork, InferWorkspace, InferenceStats, DEFAULT_FUSE_LAYERS,
};
pub use online::{OnlineConfig, OnlineError, OnlineReport, OnlineSession, PublishStats};
pub use pipeline::forward_pipelined;
pub use serve::{
    MicroBatcher, ReloadError, ServeClient, ServeConfig, ServeEngine, ServeError, ServeHandle,
    ServeStats,
};
pub use stream::{run_stream, LayerActivationStats, StreamResult};
pub use supervise::{RestartPolicy, ServeSupervisor, SupervisorClient, SupervisorHandle};
