//! Live train-while-serve: one pool, two workloads.
//!
//! The Graph Challenge networks this crate serves are not frozen
//! artifacts — the companion training work (PR 5/7) fine-tunes the same
//! sparse topologies. This module runs both at once on the *single*
//! process-wide worker pool: a [`ServeEngine`] keeps answering traffic
//! (its flush tiles ride the scheduler's high-priority lane, so they
//! preempt training chunks) while a crash-supervised, checkpointed
//! training loop improves the weights on the submitter thread. Every
//! committed checkpoint generation is *published* — staged into the
//! engine via [`ServeHandle::reload`], picked up at the engine's next
//! batch boundary — so served results march forward with training
//! without the engine ever stopping or a response ever being torn.
//!
//! Division of labour:
//!
//! * training = [`TrainSupervisor`] over the checkpointed mini-batch
//!   loop (`radix_nn::train_*_checkpointed`): crashes restart from the
//!   last committed generation, bitwise-identically (PR 7's contract —
//!   unchanged by the serve traffic sharing the pool, which the chaos
//!   suite pins),
//! * publishing = a small poller thread that watches the checkpoint
//!   directory for new committed generations and stages each into the
//!   engine; a failed reload (e.g. the engine died under fault
//!   injection) is counted, never fatal to training,
//! * serving = the caller's own threads holding [`ServeClient`] clones;
//!   the engine's typed-outcome guarantee (exactly one [`ServeError`]
//!   or a result per request) is unchanged.
//!
//! ```no_run
//! use radix_challenge::online::{OnlineConfig, OnlineSession};
//! # fn demo(net: radix_nn::Network,
//! #         x: radix_sparse::DenseMatrix<f32>,
//! #         y: radix_sparse::DenseMatrix<f32>) {
//! let config = OnlineConfig::default();
//! let mut session = OnlineSession::start(&net, &config, "ckpts".as_ref()).unwrap();
//! let client = session.client(); // hand clones to traffic threads
//! let mut net = net;
//! let mut opt = radix_nn::Optimizer::sgd(0.05);
//! let report = session
//!     .fine_tune_regressor(&mut net, &x, &y, &mut opt, &config)
//!     .unwrap();
//! assert!(report.publish.published > 0);
//! # let _ = client;
//! # session.finish().unwrap();
//! # }
//! ```

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use radix_nn::{
    train_classifier_checkpointed, train_regressor_checkpointed, CheckpointError, Checkpointer,
    History, Network, Optimizer, TrainConfig, TrainRestartPolicy, TrainSuperviseError,
    TrainSupervisor,
};
use radix_sparse::{CsrMatrix, DenseMatrix};

use crate::infer::ChallengeNetwork;
use crate::serve::{ServeClient, ServeConfig, ServeEngine, ServeError, ServeHandle, ServeStats};

/// Default cadence at which the publisher re-scans the checkpoint
/// directory for a new committed generation.
pub const DEFAULT_PUBLISH_POLL: Duration = Duration::from_millis(2);

/// Everything a train-while-serve session needs to know.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Serving front-end configuration (batching, deadline, slots).
    pub serve: ServeConfig,
    /// Output-layer bias the Challenge recipe fixes for serving
    /// (training checkpoints carry weights only into the engine).
    pub bias: f32,
    /// `YMAX` activation clamp for serving.
    pub ymax: f32,
    /// The fine-tuning loop's configuration (epochs, batch size,
    /// parallel chunks, decay/clip).
    pub train: TrainConfig,
    /// Checkpoint — and therefore publish — cadence in batches; `0`
    /// saves (and publishes) at epoch boundaries only.
    pub publish_every: usize,
    /// Checkpoint generations retained on disk.
    pub keep: usize,
    /// Restart budget for crashed training attempts.
    pub restarts: TrainRestartPolicy,
    /// How often the publisher re-scans for new generations.
    pub publish_poll: Duration,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            serve: ServeConfig::default(),
            bias: 0.0,
            ymax: 32.0,
            train: TrainConfig::default(),
            publish_every: 0,
            keep: 2,
            restarts: TrainRestartPolicy::default(),
            publish_poll: DEFAULT_PUBLISH_POLL,
        }
    }
}

/// Why an online session could not start or a fine-tune run failed.
#[derive(Debug)]
pub enum OnlineError {
    /// The training network has a dense layer at this index; the serving
    /// engine requires fully sparse (prepared-ELL) weights.
    NotSparse {
        /// Offending layer index.
        layer: usize,
    },
    /// The checkpoint store could not be created or read.
    Checkpoint(CheckpointError),
    /// Training failed (deterministic checkpoint error, or the crash
    /// restart budget ran out).
    Train(TrainSuperviseError),
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::NotSparse { layer } => {
                write!(f, "layer {layer} is dense; serving requires sparse layers")
            }
            OnlineError::Checkpoint(e) => write!(f, "checkpoint store: {e}"),
            OnlineError::Train(e) => write!(f, "fine-tune failed: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<CheckpointError> for OnlineError {
    fn from(e: CheckpointError) -> Self {
        OnlineError::Checkpoint(e)
    }
}

/// What the publisher accomplished during one fine-tune run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Generations successfully staged into the engine.
    pub published: u64,
    /// Reload attempts that failed (counted, never fatal — e.g. the
    /// engine died under fault injection while training carried on).
    pub errors: u64,
    /// The newest generation staged, if any.
    pub latest: Option<u64>,
}

/// The result of a completed fine-tune run.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Training history — identical to an offline run's (the serve
    /// traffic sharing the pool cannot perturb it; the chaos suite pins
    /// this bitwise).
    pub history: History,
    /// Crash-triggered training restarts along the way.
    pub restarts: u32,
    /// Weight publications staged into the live engine.
    pub publish: PublishStats,
}

/// A live serving engine paired with a checkpoint store, ready to
/// fine-tune the served weights in place.
pub struct OnlineSession {
    handle: ServeHandle,
    ckpt: Checkpointer,
    poll: Duration,
}

/// The sparse weight matrices of a fully sparse training network, or
/// the index of the first dense layer.
fn sparse_csrs(net: &Network) -> Result<Vec<CsrMatrix<f32>>, OnlineError> {
    net.layers()
        .iter()
        .enumerate()
        .map(|(i, l)| match l {
            radix_nn::Layer::Sparse(sl) => Ok(sl.weights().clone()),
            radix_nn::Layer::Dense(_) => Err(OnlineError::NotSparse { layer: i }),
        })
        .collect()
}

/// The newest committed generation in `dir`, by the checkpoint store's
/// canonical naming (`ckpt-NNNNNNNN.radix`; torn `.tmp` files are
/// invisible by construction).
fn latest_generation(dir: &Path) -> Option<(u64, PathBuf)> {
    let mut newest: Option<u64> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("ckpt-")
            .and_then(|r| r.strip_suffix(".radix"))
        {
            if num.len() == 8 {
                if let Ok(g) = num.parse::<u64>() {
                    newest = Some(newest.map_or(g, |n: u64| n.max(g)));
                }
            }
        }
    }
    newest.map(|g| (g, dir.join(format!("ckpt-{g:08}.radix"))))
}

/// Watches the checkpoint directory and stages every new committed
/// generation into the engine. Reads the stop flag *before* scanning, so
/// the final checkpoint (written before the trainer raises the flag) is
/// always seen on the last pass. A failed reload leaves the cursor in
/// place — the next poll retries.
fn publisher_loop(
    handle: &ServeHandle,
    dir: &Path,
    stop: &AtomicBool,
    poll: Duration,
) -> PublishStats {
    let mut stats = PublishStats::default();
    let mut last: Option<u64> = None;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        if let Some((g, path)) = latest_generation(dir) {
            if last.is_none_or(|l| g > l) {
                match handle.reload(&path) {
                    Ok(()) => {
                        stats.published += 1;
                        stats.latest = Some(g);
                        last = Some(g);
                    }
                    Err(_) => stats.errors += 1,
                }
            }
        }
        if stopping {
            return stats;
        }
        std::thread::sleep(poll);
    }
}

impl OnlineSession {
    /// Starts serving `net`'s current weights and opens (or reopens — the
    /// store resumes) a checkpoint directory at `ckpt_dir` with the
    /// config's cadence and retention.
    ///
    /// # Errors
    /// [`OnlineError::NotSparse`] if the network has a dense layer;
    /// [`OnlineError::Checkpoint`] if the store cannot be created.
    pub fn start(
        net: &Network,
        config: &OnlineConfig,
        ckpt_dir: &Path,
    ) -> Result<Self, OnlineError> {
        let ckpt = Checkpointer::new(ckpt_dir)?
            .with_every(config.publish_every)
            .with_keep(config.keep);
        Self::start_with(net, config, ckpt)
    }

    /// [`OnlineSession::start`] with a caller-built [`Checkpointer`] —
    /// the entry point the chaos suites use to thread a
    /// `TrainFaultInjector` into the training loop. The checkpointer's
    /// own cadence and retention are honored as-is.
    ///
    /// # Errors
    /// [`OnlineError::NotSparse`] if the network has a dense layer.
    pub fn start_with(
        net: &Network,
        config: &OnlineConfig,
        ckpt: Checkpointer,
    ) -> Result<Self, OnlineError> {
        Self::start_faulted(net, config, ckpt, crate::fault::FaultInjector::from_env())
    }

    /// [`OnlineSession::start_with`] with an explicit *serving* fault
    /// injector as well — the full chaos entry point: training faults
    /// ride the checkpointer, serving faults ride the engine, and the
    /// suite asserts both failure models hold at once.
    ///
    /// # Errors
    /// [`OnlineError::NotSparse`] if the network has a dense layer.
    pub fn start_faulted(
        net: &Network,
        config: &OnlineConfig,
        ckpt: Checkpointer,
        serve_faults: crate::fault::FaultInjector,
    ) -> Result<Self, OnlineError> {
        let serve_net = ChallengeNetwork::from_layers(sparse_csrs(net)?, config.bias, config.ymax);
        let handle = ServeEngine::start_with_faults(serve_net, &config.serve, serve_faults);
        Ok(OnlineSession {
            handle,
            ckpt,
            poll: config.publish_poll,
        })
    }

    /// A client for the live engine; clone freely into traffic threads.
    #[must_use]
    pub fn client(&self) -> ServeClient {
        self.handle.client()
    }

    /// The serving handle, for stats and ad-hoc reloads.
    #[must_use]
    pub fn handle(&self) -> &ServeHandle {
        &self.handle
    }

    /// Fine-tunes `net` on a regression problem while the engine keeps
    /// serving, publishing every committed checkpoint into the engine.
    /// Blocks until training completes; drive traffic from other threads
    /// holding [`ServeClient`] clones. Resume is automatic: if the
    /// checkpoint directory already holds generations from an interrupted
    /// run, training fast-forwards past them bitwise-identically.
    ///
    /// # Errors
    /// [`OnlineError::Train`] when training fails deterministically or
    /// exhausts its crash-restart budget.
    ///
    /// # Panics
    /// Panics if sample counts mismatch or the batch size is zero.
    pub fn fine_tune_regressor(
        &mut self,
        net: &mut Network,
        x: &DenseMatrix<f32>,
        y: &DenseMatrix<f32>,
        opt: &mut Optimizer,
        config: &OnlineConfig,
    ) -> Result<OnlineReport, OnlineError> {
        self.fine_tune(net, opt, config, |net, opt, ck| {
            train_regressor_checkpointed(net, x, y, opt, &config.train, ck)
        })
    }

    /// [`OnlineSession::fine_tune_regressor`] for a classification
    /// problem.
    ///
    /// # Errors
    /// As [`OnlineSession::fine_tune_regressor`].
    ///
    /// # Panics
    /// As [`OnlineSession::fine_tune_regressor`].
    pub fn fine_tune_classifier(
        &mut self,
        net: &mut Network,
        x: &DenseMatrix<f32>,
        labels: &[usize],
        opt: &mut Optimizer,
        config: &OnlineConfig,
    ) -> Result<OnlineReport, OnlineError> {
        self.fine_tune(net, opt, config, |net, opt, ck| {
            train_classifier_checkpointed(net, x, labels, opt, &config.train, ck)
        })
    }

    /// The shared core: supervised training on the calling thread (the
    /// pool submitter), the publisher poller alongside it.
    fn fine_tune<F>(
        &mut self,
        net: &mut Network,
        opt: &mut Optimizer,
        config: &OnlineConfig,
        attempt: F,
    ) -> Result<OnlineReport, OnlineError>
    where
        F: FnMut(
            &mut Network,
            &mut Optimizer,
            &mut Checkpointer,
        ) -> Result<History, CheckpointError>,
    {
        let stop = AtomicBool::new(false);
        let handle = &self.handle;
        let dir = self.ckpt.dir().to_path_buf();
        let poll = self.poll;
        let ckpt = &mut self.ckpt;
        let (result, publish) = std::thread::scope(|s| {
            let stop = &stop;
            let publisher = s.spawn({
                let dir = dir.clone();
                move || publisher_loop(handle, &dir, stop, poll)
            });
            let result = TrainSupervisor::new(config.restarts).run(net, opt, ckpt, attempt);
            stop.store(true, Ordering::Release);
            let publish = publisher
                .join()
                .unwrap_or_else(|_| unreachable!("publisher thread never panics"));
            (result, publish)
        });
        let report = result.map_err(OnlineError::Train)?;
        Ok(OnlineReport {
            history: report.history,
            restarts: report.restarts,
            publish,
        })
    }

    /// Graceful shutdown of the serving engine; returns its final
    /// counters. The checkpoint directory stays on disk for resume.
    ///
    /// # Errors
    /// [`ServeError::EngineFailed`] if the engine thread had already died.
    pub fn finish(self) -> Result<ServeStats, ServeError> {
        self.handle.shutdown()
    }
}
