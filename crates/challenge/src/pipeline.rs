//! Pipelined inference: batch tiles streamed through per-layer stage
//! threads over crossbeam channels.
//!
//! The batch-synchronous kernel (`infer`) finishes layer `l` on the whole
//! batch before starting layer `l+1`; the pipelined variant instead splits
//! the batch into row tiles and lets tile `t` run layer `l+1` while tile
//! `t+1` is still in layer `l` — the classic depth-pipelining trade-off the
//! DESIGN.md ablation list calls out. Results are bit-identical to the
//! batch-synchronous kernel because each tile's arithmetic is unchanged;
//! only the schedule differs.

use crossbeam::channel::bounded;

use radix_sparse::DenseMatrix;

use crate::infer::ChallengeNetwork;

/// Runs the network over `x` with the pipelined schedule: the batch is cut
/// into `tile_rows`-row tiles, and one OS thread per layer applies its
/// layer to tiles as they arrive.
///
/// # Panics
/// Panics if `tile_rows == 0` or `x.ncols() != net.n_in()`.
#[must_use]
pub fn forward_pipelined(
    net: &ChallengeNetwork,
    x: &DenseMatrix<f32>,
    tile_rows: usize,
) -> DenseMatrix<f32> {
    assert!(tile_rows > 0, "tile size must be positive");
    assert_eq!(x.ncols(), net.n_in(), "input width mismatch");
    let batch = x.nrows();
    if batch == 0 {
        let out_cols = net.layers().last().map_or(0, |w| w.ncols());
        return DenseMatrix::zeros(0, out_cols);
    }

    // Cut the input into tiles (index, rows).
    let tiles: Vec<(usize, DenseMatrix<f32>)> = (0..batch)
        .step_by(tile_rows)
        .enumerate()
        .map(|(t, start)| {
            let end = (start + tile_rows).min(batch);
            let mut tile = DenseMatrix::zeros(end - start, x.ncols());
            for (local, global) in (start..end).enumerate() {
                let dst: &mut [f32] = tile.row_mut(local);
                dst.copy_from_slice(x.row(global));
            }
            (t, tile)
        })
        .collect();
    let num_tiles = tiles.len();
    let layers = net.layers();
    let epi = net.epilogue();

    let out_cols = layers.last().unwrap().ncols();
    let mut collected: Vec<Option<DenseMatrix<f32>>> = vec![None; num_tiles];

    crossbeam::scope(|scope| {
        // Channel chain: feeder → stage_0 → stage_1 → … → collector.
        let (feed_tx, mut prev_rx) = bounded::<(usize, DenseMatrix<f32>)>(2);
        let mut stage_rxs = Vec::new();
        for w in layers {
            let (tx, rx) = bounded::<(usize, DenseMatrix<f32>)>(2);
            let in_rx = prev_rx;
            prev_rx = rx;
            stage_rxs.push((w, in_rx, tx));
        }
        let final_rx = prev_rx;

        for (w, in_rx, out_tx) in stage_rxs {
            scope.spawn(move |_| {
                // Output tiles are owned by the channel, so each is a fresh
                // buffer; the nonlinearity is fused into the prepared
                // kernel, and wide layers run the cache-tiled schedule
                // (serial within a stage — the stages themselves are the
                // parallelism here).
                for (t, tile) in in_rx {
                    let mut y = DenseMatrix::default();
                    w.spmm_tiled_into(&tile, &mut y, &epi)
                        .expect("layer widths chain");
                    if out_tx.send((t, y)).is_err() {
                        break;
                    }
                }
            });
        }

        scope.spawn(move |_| {
            for (t, tile) in tiles {
                if feed_tx.send((t, tile)).is_err() {
                    break;
                }
            }
        });

        for (t, y) in final_rx {
            collected[t] = Some(y);
        }
    })
    .expect("pipeline threads must not panic");

    // Stitch tiles back together in order.
    let mut out = DenseMatrix::zeros(batch, out_cols);
    let mut row = 0usize;
    for tile in collected.into_iter().map(|t| t.expect("tile lost")) {
        for local in 0..tile.nrows() {
            let dst: &mut [f32] = out.row_mut(row);
            dst.copy_from_slice(tile.row(local));
            row += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChallengeConfig;
    use radix_data::sparse_binary_batch;

    fn net() -> ChallengeNetwork {
        ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 4, 3)).unwrap()
    }

    #[test]
    fn pipelined_matches_batch_synchronous() {
        let n = net();
        let x = sparse_binary_batch(13, n.n_in(), 0.4, 0);
        let reference = n.forward(&x, false);
        for tile_rows in [1, 3, 5, 13, 20] {
            let piped = forward_pipelined(&n, &x, tile_rows);
            assert_eq!(piped, reference, "tile_rows = {tile_rows}");
        }
    }

    #[test]
    fn empty_batch_handled() {
        let n = net();
        let x = DenseMatrix::zeros(0, n.n_in());
        let y = forward_pipelined(&n, &x, 4);
        assert_eq!(y.shape(), (0, 16));
    }

    #[test]
    #[should_panic(expected = "tile size must be positive")]
    fn zero_tile_panics() {
        let n = net();
        let x = DenseMatrix::zeros(2, n.n_in());
        let _ = forward_pipelined(&n, &x, 0);
    }

    #[test]
    fn single_tile_degenerates_to_serial() {
        let n = net();
        let x = sparse_binary_batch(6, n.n_in(), 0.5, 2);
        assert_eq!(forward_pipelined(&n, &x, 100), n.forward(&x, false));
    }
}
