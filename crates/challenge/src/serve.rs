//! Asynchronous inference serving: many concurrent clients, one engine,
//! deadline-aware micro-batching onto the fused tiled kernels.
//!
//! This turns the batch pipeline into a *service*. Clients submit
//! single-row inference requests from any number of threads through a
//! clonable [`ServeClient`]; a dedicated engine thread coalesces them into
//! row blocks of at most [`ServeConfig::max_batch`] rows (the fused
//! schedule's tile height) under a configurable latency budget, runs each
//! block through [`ChallengeNetwork::forward_with`] on the persistent
//! worker pool, and demuxes every row's result back to its requester in
//! submission order. "Async" here is channel-and-thread asynchrony — the
//! offline build image has no async runtime, and none is needed: the
//! request path is two bounded hand-offs and a condvar.
//!
//! # Request lifecycle
//!
//! ```text
//! client                       engine thread                    pool
//!   │ check out slot             │                                │
//!   │ write row into slot        │                                │
//!   │ send slot id ──bounded──▶  │ MicroBatcher: coalesce ids     │
//!   │ wait on slot condvar       │   flush on full block OR       │
//!   │                            │   deadline, whichever first    │
//!   │                            │ gather rows → batch matrix     │
//!   │                            │ forward_with ───────────────▶  │ fused
//!   │                            │                 ◀───────────── │ tiled
//!   │ ◀─ result + notify ─────── │ demux rows → slots, in order   │
//!   │ return slot to free list   │                                │
//! ```
//!
//! # Allocation discipline
//!
//! Every buffer a request touches is pre-allocated at engine start: the
//! slot pool (one input row + one output row per in-flight request), the
//! batch gather matrix, the [`InferWorkspace`], and the micro-batcher's id
//! buffer. The bounded channel carries bare slot indices (`usize`). After
//! warm-up traffic has driven the channel/condvar parking structures to
//! their high-water marks, the steady-state serving loop — submit, batch,
//! execute, demux, respond — performs **zero heap allocation** on either
//! side (`tests/zero_alloc_serve.rs` pins this down with a counting
//! allocator on a forced 4-thread pool).
//!
//! # Backpressure and shutdown
//!
//! Two bounded stages push back on producers: clients block checking out a
//! slot when all [`ServeConfig::slots`] are in flight, and block again on
//! the bounded request channel when the engine is behind. Graceful
//! shutdown ([`ServeHandle::shutdown`]) stops admission first (new
//! requests fail fast with [`ServeError::Shutdown`]), then drains: the
//! engine keeps flushing until every queued request has been answered and
//! every slot returned, and only then exits. If the engine thread dies,
//! waiting clients are woken and receive [`ServeError::Shutdown`] instead
//! of hanging.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use radix_sparse::DenseMatrix;

use crate::infer::{ChallengeNetwork, InferWorkspace};

/// Default micro-batch latency budget in microseconds
/// (`RADIX_SERVE_DEADLINE_US`): the end-to-end time a request may spend
/// waiting for its block to fill *plus* being computed.
pub const DEFAULT_DEADLINE_US: usize = 10_000;

/// Default number of pre-allocated in-flight request slots
/// (`RADIX_SERVE_SLOTS`), as a multiple of [`ServeConfig::max_batch`].
const DEFAULT_SLOT_BLOCKS: usize = 4;

/// Serving engine configuration. [`ServeConfig::default`] reads the
/// `RADIX_SERVE_*` environment knobs (each field documents its variable),
/// so a deployment can be tuned without code changes; explicit fields win
/// over the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Rows per coalesced block — flush threshold of the micro-batcher.
    /// Defaults to `RADIX_SERVE_BATCH` or 32, the fused schedule's row
    /// block, so a full micro-batch is exactly one tile block.
    pub max_batch: usize,
    /// End-to-end latency budget per request, in microseconds
    /// (`RADIX_SERVE_DEADLINE_US`, default [`DEFAULT_DEADLINE_US`]). The
    /// engine measures the cost of a full block at start-up and budgets
    /// the batcher's *wait* deadline as half of
    /// `deadline_us - measured_compute` — the other half stays as slack
    /// for queueing and scheduler jitter — so at low load a lone
    /// request's tail latency still fits the budget instead of idling the
    /// full window before compute even starts.
    pub deadline_us: u64,
    /// Pre-allocated in-flight request slots (`RADIX_SERVE_SLOTS`, default
    /// `4 * max_batch`). This bounds memory *and* is the first
    /// backpressure stage: clients block when all slots are checked out.
    pub slots: usize,
    /// Bound of the request channel (`RADIX_SERVE_QUEUE`, default
    /// `slots`) — the second backpressure stage.
    pub queue: usize,
    /// Whether block execution uses the pool-parallel fused kernels
    /// (default) or the serial schedule. Results are bitwise identical
    /// either way; serial avoids pool contention when the caller runs
    /// several engines.
    pub parallel: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let max_batch = radix_sparse::kernel::env_usize("RADIX_SERVE_BATCH", 32).max(1);
        let slots = radix_sparse::kernel::env_usize("RADIX_SERVE_SLOTS", 0);
        let slots = if slots == 0 {
            DEFAULT_SLOT_BLOCKS * max_batch
        } else {
            slots
        };
        ServeConfig {
            max_batch,
            deadline_us: radix_sparse::kernel::env_usize(
                "RADIX_SERVE_DEADLINE_US",
                DEFAULT_DEADLINE_US,
            ) as u64,
            slots,
            queue: radix_sparse::kernel::env_usize("RADIX_SERVE_QUEUE", slots).max(1),
            parallel: true,
        }
    }
}

/// Why a request could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The engine is shutting down (or its thread has exited); the request
    /// was not executed.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shutdown => write!(f, "serving engine is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Counters the engine accumulates over its lifetime, returned by
/// [`ServeHandle::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Total rows (requests) served.
    pub rows: u64,
    /// Total coalesced blocks executed.
    pub batches: u64,
    /// Blocks flushed because they reached [`ServeConfig::max_batch`] rows.
    pub full_flushes: u64,
    /// Blocks flushed because the oldest pending request hit its wait
    /// deadline (or the channel disconnected with rows pending).
    pub deadline_flushes: u64,
    /// Largest block executed — never exceeds [`ServeConfig::max_batch`].
    pub max_rows: u64,
}

/// Deadline-aware micro-batching policy: a pure, tick-based accumulator
/// the engine loop drives (and property tests exercise without threads or
/// clocks). Requests are pushed with their arrival tick; the batch must be
/// flushed when it is full **or** when the *oldest* pending request has
/// waited `budget` ticks — whichever comes first. Because the deadline is
/// keyed to the oldest request, no request ever waits more than `budget`
/// ticks in the batcher (every later arrival's wait is strictly shorter).
#[derive(Debug, Clone)]
pub struct MicroBatcher {
    max_rows: usize,
    budget: u64,
    ids: Vec<usize>,
    first_tick: u64,
}

impl MicroBatcher {
    /// A batcher coalescing up to `max_rows` requests, holding the oldest
    /// at most `budget` ticks. Pre-allocates its id buffer — pushes never
    /// allocate.
    ///
    /// # Panics
    /// Panics if `max_rows == 0`.
    #[must_use]
    pub fn new(max_rows: usize, budget: u64) -> Self {
        assert!(max_rows > 0, "micro-batch size must be positive");
        MicroBatcher {
            max_rows,
            budget,
            ids: Vec::with_capacity(max_rows),
            first_tick: 0,
        }
    }

    /// Pending request count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no requests are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether the block has reached its row limit and must be flushed
    /// before the next push.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.ids.len() == self.max_rows
    }

    /// Adds a request (by id) arriving at tick `now`; returns whether the
    /// block is now full.
    ///
    /// # Panics
    /// Panics if the block is already full — the caller must flush first.
    pub fn push(&mut self, id: usize, now: u64) -> bool {
        assert!(!self.is_full(), "push into a full micro-batch");
        if self.ids.is_empty() {
            self.first_tick = now;
        }
        self.ids.push(id);
        self.is_full()
    }

    /// The tick by which the pending block must flush (`None` when empty):
    /// the oldest request's arrival plus the wait budget.
    #[must_use]
    pub fn deadline(&self) -> Option<u64> {
        if self.ids.is_empty() {
            None
        } else {
            Some(self.first_tick.saturating_add(self.budget))
        }
    }

    /// Whether the block must flush at tick `now`: it is full, or the
    /// oldest pending request has exhausted its wait budget.
    #[must_use]
    pub fn should_flush(&self, now: u64) -> bool {
        self.is_full() || self.deadline().is_some_and(|d| now >= d)
    }

    /// The pending request ids, oldest first (submission order).
    #[must_use]
    pub fn pending(&self) -> &[usize] {
        &self.ids
    }

    /// Empties the block (after the caller has taken [`Self::pending`]).
    pub fn clear(&mut self) {
        self.ids.clear();
    }
}

/// One in-flight request's pre-allocated state.
struct SlotData {
    /// The request row, written by the client before submission.
    input: Vec<f32>,
    /// The result row, written by the engine's demux stage.
    output: Vec<f32>,
    /// Set by the demux stage; the client's condvar predicate.
    done: bool,
}

struct Slot {
    data: Mutex<SlotData>,
    ready: Condvar,
}

/// State shared between clients, the engine thread, and the handle.
struct Shared {
    slots: Vec<Slot>,
    /// Indices of currently free slots; capacity `slots.len()`, so pushes
    /// never allocate.
    free: Mutex<Vec<usize>>,
    /// Signals a slot returning to the free list (and shutdown).
    free_ready: Condvar,
    /// Cleared by [`ServeHandle::shutdown`]; new requests fail fast.
    accepting: AtomicBool,
    /// Cleared when the engine thread exits (normally or by panic) so
    /// waiting clients never hang on a dead engine.
    engine_live: AtomicBool,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Engine/client panics must not wedge the other side; the protocol
    // only ever publishes fully-written rows, so continuing past a poison
    // is sound.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A clonable handle for submitting inference requests to a running
/// engine. Cheap to clone (an `Arc` and a channel sender); every thread
/// that issues requests should own a clone.
pub struct ServeClient {
    shared: Arc<Shared>,
    tx: crossbeam::channel::Sender<usize>,
    n_in: usize,
    n_out: usize,
}

impl Clone for ServeClient {
    fn clone(&self) -> Self {
        ServeClient {
            shared: Arc::clone(&self.shared),
            tx: self.tx.clone(),
            n_in: self.n_in,
            n_out: self.n_out,
        }
    }
}

impl ServeClient {
    /// Input width the engine's network expects.
    #[must_use]
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output width of a served result row.
    #[must_use]
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Submits one row and blocks until its result is written into `out`
    /// (resized to [`Self::n_out`]). With `out`'s capacity warmed, the
    /// whole round trip performs no heap allocation on the client thread.
    ///
    /// # Errors
    /// [`ServeError::Shutdown`] if the engine is no longer accepting
    /// requests or its thread has exited.
    ///
    /// # Panics
    /// Panics if `row.len() != self.n_in()`.
    pub fn infer_into(&self, row: &[f32], out: &mut Vec<f32>) -> Result<(), ServeError> {
        assert_eq!(row.len(), self.n_in, "request row width mismatch");
        if !self.shared.accepting.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        // Stage 1 (backpressure): check out a free slot.
        let k = {
            let mut free = lock(&self.shared.free);
            loop {
                if let Some(k) = free.pop() {
                    break k;
                }
                if !self.shared.accepting.load(Ordering::Acquire) {
                    return Err(ServeError::Shutdown);
                }
                free = self
                    .shared
                    .free_ready
                    .wait(free)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Write the request row into the slot, then publish its id.
        {
            let mut d = lock(&self.shared.slots[k].data);
            d.input.copy_from_slice(row);
            d.done = false;
        }
        // Stage 2 (backpressure): the bounded request channel.
        if self.tx.send(k).is_err() {
            self.release(k);
            return Err(ServeError::Shutdown);
        }
        // Wait for the demux stage to hand the result back. The timeout is
        // purely defensive: a live engine always answers (it cannot exit
        // with our slot outstanding), so the predicate loop only breaks
        // out early if the engine thread died.
        {
            let slot = &self.shared.slots[k];
            let mut d = lock(&slot.data);
            while !d.done {
                if !self.shared.engine_live.load(Ordering::Acquire) {
                    drop(d);
                    self.release(k);
                    return Err(ServeError::Shutdown);
                }
                let (guard, _timeout) = slot
                    .ready
                    .wait_timeout(d, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                d = guard;
            }
            out.resize(self.n_out, 0.0);
            out.copy_from_slice(&d.output);
            d.done = false;
        }
        self.release(k);
        Ok(())
    }

    /// Convenience wrapper around [`Self::infer_into`] that allocates the
    /// result row. Hot clients should hold a reusable buffer and call
    /// `infer_into` instead.
    ///
    /// # Errors
    /// [`ServeError::Shutdown`] if the engine is no longer accepting
    /// requests or its thread has exited.
    ///
    /// # Panics
    /// Panics if `row.len() != self.n_in()`.
    pub fn infer(&self, row: &[f32]) -> Result<Vec<f32>, ServeError> {
        let mut out = Vec::new();
        self.infer_into(row, &mut out)?;
        Ok(out)
    }

    /// Returns slot `k` to the free list and wakes one waiting client.
    fn release(&self, k: usize) {
        let mut free = lock(&self.shared.free);
        free.push(k);
        self.shared.free_ready.notify_one();
    }
}

/// The running engine's control handle: hands out clients, shuts the
/// engine down, and reports its stats.
pub struct ServeHandle {
    client: ServeClient,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<ServeStats>,
    batch_wait_us: u64,
}

impl ServeHandle {
    /// A new request handle onto this engine.
    #[must_use]
    pub fn client(&self) -> ServeClient {
        self.client.clone()
    }

    /// The batcher's effective wait deadline in microseconds: half of the
    /// configured end-to-end budget net of the block compute cost
    /// measured at start-up (zero when compute alone exceeds the budget,
    /// making every flush immediate); the withheld half is slack for
    /// queueing and scheduler jitter.
    #[must_use]
    pub fn batch_wait_us(&self) -> u64 {
        self.batch_wait_us
    }

    /// Graceful shutdown: stops admitting new requests (they fail fast
    /// with [`ServeError::Shutdown`]), lets every in-flight request finish
    /// and demux, then joins the engine thread and returns its counters.
    /// Outstanding [`ServeClient`] clones stay valid as error-returning
    /// stubs.
    ///
    /// # Panics
    /// Panics if the engine thread itself panicked.
    #[must_use]
    pub fn shutdown(self) -> ServeStats {
        self.shared.accepting.store(false, Ordering::Release);
        // Wake clients parked on the free list so they observe shutdown.
        self.shared.free_ready.notify_all();
        drop(self.client);
        self.thread.join().expect("serve engine thread panicked")
    }
}

/// Clears liveness flags and wakes every waiter when the engine thread
/// exits — including by panic — so no client blocks on a dead engine.
struct EngineExitGuard(Arc<Shared>);

impl Drop for EngineExitGuard {
    fn drop(&mut self) {
        self.0.accepting.store(false, Ordering::Release);
        self.0.engine_live.store(false, Ordering::Release);
        self.0.free_ready.notify_all();
        for slot in &self.0.slots {
            // Touch the mutex so a client between its predicate check and
            // its wait cannot miss the wake-up.
            drop(lock(&slot.data));
            slot.ready.notify_all();
        }
    }
}

/// The serving engine: constructor only — all further interaction goes
/// through the [`ServeHandle`] that [`ServeEngine::start`] returns.
pub struct ServeEngine;

impl ServeEngine {
    /// Starts an engine serving `net` with `config`, returning its control
    /// handle. Pre-allocates every steady-state buffer (slots, batch
    /// matrix, workspace), warms the fused kernels with one full block to
    /// both reach the workspace high-water mark and *measure* block
    /// compute cost — the micro-batcher's wait deadline is the configured
    /// latency budget minus that measurement.
    ///
    /// # Panics
    /// Panics if `config.max_batch`, `config.slots`, or `config.queue` is
    /// zero, or if the engine thread cannot be spawned.
    #[must_use]
    pub fn start(net: ChallengeNetwork, config: &ServeConfig) -> ServeHandle {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.slots > 0, "need at least one request slot");
        assert!(config.queue > 0, "request queue bound must be positive");
        let n_in = net.n_in();
        let n_out = net.layers().last().expect("non-empty network").ncols();

        // Warm-up block: drives the workspace to its high-water mark and
        // measures what a full block costs, so the wait budget can leave
        // room for compute inside the end-to-end deadline.
        let mut ws = InferWorkspace::for_network(&net, config.max_batch);
        let warm = DenseMatrix::zeros(config.max_batch, n_in);
        let t = Instant::now();
        let _ = net.forward_with(&warm, config.parallel, &mut ws);
        let compute_us = t.elapsed().as_micros() as u64;
        // Half the post-compute remainder goes to waiting; the other half
        // stays as slack for queueing, wake-up latency, and scheduler
        // jitter, so a lone request's p99 — wait + compute + slack-eaters
        // — still fits the configured end-to-end budget.
        let batch_wait_us = config.deadline_us.saturating_sub(compute_us) / 2;

        let shared = Arc::new(Shared {
            slots: (0..config.slots)
                .map(|_| Slot {
                    data: Mutex::new(SlotData {
                        input: vec![0.0; n_in],
                        output: vec![0.0; n_out],
                        done: false,
                    }),
                    ready: Condvar::new(),
                })
                .collect(),
            free: Mutex::new((0..config.slots).rev().collect()),
            free_ready: Condvar::new(),
            accepting: AtomicBool::new(true),
            engine_live: AtomicBool::new(true),
        });
        let (tx, rx) = crossbeam::channel::bounded::<usize>(config.queue);

        let engine = EngineLoop {
            net,
            ws,
            x: DenseMatrix::zeros(config.max_batch, n_in),
            batch: Vec::with_capacity(config.max_batch),
            mb: MicroBatcher::new(config.max_batch, batch_wait_us),
            rx,
            shared: Arc::clone(&shared),
            parallel: config.parallel,
            t0: Instant::now(),
            stats: ServeStats::default(),
        };
        let thread = std::thread::Builder::new()
            .name("radix-serve".to_string())
            .spawn(move || {
                let guard = EngineExitGuard(Arc::clone(&engine.shared));
                let stats = engine.run();
                drop(guard);
                stats
            })
            .expect("spawn serve engine thread");

        ServeHandle {
            client: ServeClient {
                shared: Arc::clone(&shared),
                tx,
                n_in,
                n_out,
            },
            shared,
            thread,
            batch_wait_us,
        }
    }
}

/// Everything the engine thread owns.
struct EngineLoop {
    net: ChallengeNetwork,
    ws: InferWorkspace,
    /// Gather target: the coalesced block's rows, contiguous.
    x: DenseMatrix<f32>,
    /// Slot ids of the block being executed (copied out of the batcher).
    batch: Vec<usize>,
    mb: MicroBatcher,
    rx: crossbeam::channel::Receiver<usize>,
    shared: Arc<Shared>,
    parallel: bool,
    t0: Instant,
    stats: ServeStats,
}

impl EngineLoop {
    /// Monotonic microsecond tick for the batcher.
    fn tick(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// The batching loop. Exits when the channel disconnects (every
    /// sender, handle included, dropped) or when shutdown has been
    /// requested and every request is drained and answered.
    fn run(mut self) -> ServeStats {
        use crossbeam::channel::{RecvTimeoutError, TryRecvError};
        // Re-check cadence while idle or awaiting shutdown; also bounds
        // how stale a deadline check can get under a zero wait budget.
        let idle = Duration::from_micros(self.mb.budget().clamp(200, 50_000));
        loop {
            // Greedy drain: coalesce everything already queued, up to one
            // full block, without blocking.
            let mut disconnected = false;
            while !self.mb.is_full() {
                match self.rx.try_recv() {
                    Ok(k) => {
                        let now = self.tick();
                        self.mb.push(k, now);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            if self.mb.should_flush(self.tick()) {
                self.execute();
                continue;
            }
            if disconnected {
                if !self.mb.is_empty() {
                    self.execute();
                }
                break;
            }
            // Nothing to flush: wait for the next arrival, but never past
            // the pending block's deadline.
            let timeout = match self.mb.deadline() {
                Some(d) => Duration::from_micros(d.saturating_sub(self.tick())),
                None => {
                    if self.drained_for_shutdown() {
                        break;
                    }
                    idle
                }
            };
            match self.rx.recv_timeout(timeout) {
                Ok(k) => {
                    let now = self.tick();
                    self.mb.push(k, now);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.mb.should_flush(self.tick()) {
                        self.execute();
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if !self.mb.is_empty() {
                        self.execute();
                    }
                    break;
                }
            }
        }
        self.stats
    }

    /// Graceful-shutdown exit test, only meaningful with no rows pending:
    /// admission stopped and every slot back on the free list (so no
    /// client is mid-request — anything submitted later fails fast).
    fn drained_for_shutdown(&self) -> bool {
        !self.shared.accepting.load(Ordering::Acquire)
            && lock(&self.shared.free).len() == self.shared.slots.len()
    }

    /// Flush: gather the block's rows, run the fused forward pass, demux
    /// results back to their slots in submission order.
    fn execute(&mut self) {
        if self.mb.is_full() {
            self.stats.full_flushes += 1;
        } else {
            self.stats.deadline_flushes += 1;
        }
        self.batch.clear();
        self.batch.extend_from_slice(self.mb.pending());
        self.mb.clear();
        let n = self.batch.len();
        self.x.resize_for_overwrite(n, self.net.n_in());
        for (i, &k) in self.batch.iter().enumerate() {
            let d = lock(&self.shared.slots[k].data);
            self.x.row_mut(i).copy_from_slice(&d.input);
        }
        let y = self.net.forward_with(&self.x, self.parallel, &mut self.ws);
        for (i, &k) in self.batch.iter().enumerate() {
            let slot = &self.shared.slots[k];
            let mut d = lock(&slot.data);
            d.output.copy_from_slice(y.row(i));
            d.done = true;
            slot.ready.notify_one();
        }
        self.stats.rows += n as u64;
        self.stats.batches += 1;
        self.stats.max_rows = self.stats.max_rows.max(n as u64);
    }
}

impl MicroBatcher {
    /// The configured wait budget in ticks.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChallengeConfig;
    use radix_data::sparse_binary_batch;

    fn small_net() -> ChallengeNetwork {
        ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 4, 2)).unwrap()
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            max_batch: 4,
            deadline_us: 2_000,
            slots: 8,
            queue: 8,
            parallel: false,
        }
    }

    #[test]
    fn batcher_flushes_on_full() {
        let mut mb = MicroBatcher::new(3, 100);
        assert!(mb.is_empty());
        assert!(!mb.push(0, 0));
        assert!(!mb.push(1, 0));
        assert!(!mb.should_flush(50));
        assert!(mb.push(2, 0));
        assert!(mb.is_full());
        assert!(mb.should_flush(0), "full block flushes regardless of time");
        assert_eq!(mb.pending(), &[0, 1, 2]);
        mb.clear();
        assert!(mb.is_empty());
        assert_eq!(mb.deadline(), None);
    }

    #[test]
    fn batcher_flushes_on_deadline_of_oldest() {
        let mut mb = MicroBatcher::new(10, 100);
        mb.push(7, 40);
        mb.push(8, 99);
        assert_eq!(mb.deadline(), Some(140), "keyed to the oldest request");
        assert!(!mb.should_flush(139));
        assert!(mb.should_flush(140));
        mb.clear();
        // The next block's deadline restarts from its own first arrival.
        mb.push(9, 200);
        assert_eq!(mb.deadline(), Some(300));
    }

    #[test]
    fn batcher_zero_budget_flushes_immediately() {
        let mut mb = MicroBatcher::new(8, 0);
        mb.push(1, 17);
        assert!(mb.should_flush(17));
    }

    #[test]
    #[should_panic(expected = "push into a full micro-batch")]
    fn batcher_rejects_push_past_capacity() {
        let mut mb = MicroBatcher::new(1, 10);
        mb.push(0, 0);
        mb.push(1, 0);
    }

    #[test]
    fn serve_roundtrip_matches_forward() {
        let net = small_net();
        let x = sparse_binary_batch(6, net.n_in(), 0.5, 3);
        let reference = net.forward(&x, false);
        let handle = ServeEngine::start(net, &quick_config());
        let client = handle.client();
        assert_eq!(client.n_in(), x.ncols());
        for i in 0..x.nrows() {
            let y = client.infer(x.row(i)).unwrap();
            assert_eq!(y.as_slice(), reference.row(i), "row {i}");
        }
        let stats = handle.shutdown();
        assert_eq!(stats.rows, 6);
        assert!(stats.max_rows <= 4);
        assert!(stats.batches >= 2, "6 rows cannot fit one 4-row block");
    }

    #[test]
    fn shutdown_rejects_new_requests_and_reports_stats() {
        let net = small_net();
        let n_in = net.n_in();
        let handle = ServeEngine::start(net, &quick_config());
        let client = handle.client();
        let row = vec![1.0f32; n_in];
        client.infer(&row).unwrap();
        let stats = handle.shutdown();
        assert_eq!(stats.rows, 1);
        assert_eq!(
            stats.deadline_flushes, 1,
            "lone request flushes on deadline"
        );
        assert_eq!(client.infer(&row), Err(ServeError::Shutdown));
        let mut out = Vec::new();
        assert_eq!(client.infer_into(&row, &mut out), Err(ServeError::Shutdown));
    }

    #[test]
    fn immediate_shutdown_of_idle_engine() {
        let stats = ServeEngine::start(small_net(), &quick_config()).shutdown();
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    #[should_panic(expected = "request row width mismatch")]
    fn wrong_width_panics() {
        let net = small_net();
        let handle = ServeEngine::start(net, &quick_config());
        let client = handle.client();
        let _ = client.infer(&[1.0]);
    }

    #[test]
    fn wait_budget_subtracts_measured_compute() {
        let net = small_net();
        let cfg = quick_config();
        let handle = ServeEngine::start(net, &cfg);
        assert!(handle.batch_wait_us() <= cfg.deadline_us);
        let _ = handle.shutdown();
    }

    #[test]
    fn default_config_reads_env_shape() {
        let cfg = ServeConfig::default();
        assert!(cfg.max_batch >= 1);
        assert!(cfg.slots >= cfg.max_batch);
        assert!(cfg.queue >= 1);
    }
}
