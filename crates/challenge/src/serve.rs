//! Asynchronous inference serving: many concurrent clients, one engine,
//! deadline-aware micro-batching onto the fused tiled kernels.
//!
//! This turns the batch pipeline into a *service*. Clients submit
//! single-row inference requests from any number of threads through a
//! clonable [`ServeClient`]; a dedicated engine thread coalesces them into
//! row blocks of at most [`ServeConfig::max_batch`] rows (the fused
//! schedule's tile height) under a configurable latency budget, runs each
//! block through [`ChallengeNetwork::forward_with`] on the persistent
//! worker pool, and demuxes every row's result back to its requester in
//! submission order. "Async" here is channel-and-thread asynchrony — the
//! offline build image has no async runtime, and none is needed: the
//! request path is two bounded hand-offs and a condvar.
//!
//! # Request lifecycle
//!
//! ```text
//! client                       engine thread                    pool
//!   │ validate row               │                                │
//!   │ check out slot             │                                │
//!   │ write row into slot        │                                │
//!   │ send slot id ──bounded──▶  │ MicroBatcher: coalesce ids     │
//!   │ wait on slot condvar       │   flush on full block OR       │
//!   │                            │   deadline, whichever first    │
//!   │                            │ shed rows past their deadline  │
//!   │                            │ gather live rows → batch       │
//!   │                            │ forward_with ───────────────▶  │ fused
//!   │                            │                 ◀───────────── │ tiled
//!   │ ◀─ result + notify ─────── │ demux rows → slots, in order   │
//!   │ return slot to free list   │                                │
//! ```
//!
//! # Allocation discipline
//!
//! Every buffer a request touches is pre-allocated at engine start: the
//! slot pool (one input row + one output row per in-flight request), the
//! batch gather matrix, the [`InferWorkspace`], and the micro-batcher's id
//! buffer. The bounded channel carries bare slot indices (`usize`). After
//! warm-up traffic has driven the channel/condvar parking structures to
//! their high-water marks, the steady-state serving loop — validate,
//! submit, batch, execute, demux, respond — performs **zero heap
//! allocation** on either side (`tests/zero_alloc_serve.rs` pins this down
//! with a counting allocator on a forced 4-thread pool). Error paths may
//! allocate (the [`ServeError::EngineFailed`] message), but the happy path
//! never does.
//!
//! # Failure model
//!
//! Every fallible outcome on the request path is a typed [`ServeError`] —
//! the library never panics across the API boundary for a malformed or
//! unlucky request, and every submitted request resolves to exactly one
//! outcome (a result or an error, never a hang):
//!
//! * malformed rows are rejected at admission ([`ServeError::WidthMismatch`],
//!   [`ServeError::NonFiniteInput`] — the latter gated by
//!   `RADIX_SERVE_VALIDATE`, default on),
//! * overload is shed at admission ([`ServeClient::try_infer`] returns
//!   [`ServeError::Overloaded`] instead of blocking;
//!   [`ServeClient::infer_within`] predicts a deadline miss from queue
//!   depth and sheds before queueing),
//! * requests that expire while queued are completed with
//!   [`ServeError::DeadlineExceeded`] at flush time *without* being
//!   computed — shed work, don't burn pool time on answers nobody reads,
//! * an engine-thread panic wakes every waiter with
//!   [`ServeError::EngineFailed`] (and [`ServeHandle::shutdown`] returns
//!   the panic message as an error instead of re-panicking); the
//!   `supervise` module layers bounded-restart recovery on top.
//!
//! The `fault` module provides deterministic fault injection (engine
//! panics, compute delays, slot-release stalls) driving the chaos suites
//! that pin these guarantees down.
//!
//! # Backpressure and shutdown
//!
//! Two bounded stages push back on producers: clients block checking out a
//! slot when all [`ServeConfig::slots`] are in flight, and block again on
//! the bounded request channel when the engine is behind. Graceful
//! shutdown ([`ServeHandle::shutdown`]) stops admission first (new
//! requests fail fast with [`ServeError::Shutdown`]), then drains: the
//! engine keeps flushing until every queued request has been answered and
//! every slot returned, and only then exits.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use radix_sparse::DenseMatrix;

use crate::fault::FaultInjector;
use crate::infer::{ChallengeNetwork, InferWorkspace};

/// Default micro-batch latency budget in microseconds
/// (`RADIX_SERVE_DEADLINE_US`): the end-to-end time a request may spend
/// waiting for its block to fill *plus* being computed.
pub const DEFAULT_DEADLINE_US: usize = 10_000;

/// Default number of pre-allocated in-flight request slots
/// (`RADIX_SERVE_SLOTS`), as a multiple of [`ServeConfig::max_batch`].
const DEFAULT_SLOT_BLOCKS: usize = 4;

/// Serving engine configuration. [`ServeConfig::default`] reads the
/// `RADIX_SERVE_*` environment knobs (each field documents its variable),
/// so a deployment can be tuned without code changes; explicit fields win
/// over the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Rows per coalesced block — flush threshold of the micro-batcher.
    /// Defaults to `RADIX_SERVE_BATCH` or 32, the fused schedule's row
    /// block, so a full micro-batch is exactly one tile block.
    pub max_batch: usize,
    /// End-to-end latency budget per request, in microseconds
    /// (`RADIX_SERVE_DEADLINE_US`, default [`DEFAULT_DEADLINE_US`]). The
    /// engine measures the cost of a full block at start-up and budgets
    /// the batcher's *wait* deadline as half of
    /// `deadline_us - measured_compute` — the other half stays as slack
    /// for queueing and scheduler jitter — so at low load a lone
    /// request's tail latency still fits the budget instead of idling the
    /// full window before compute even starts.
    pub deadline_us: u64,
    /// Pre-allocated in-flight request slots (`RADIX_SERVE_SLOTS`, default
    /// `4 * max_batch`). This bounds memory *and* is the first
    /// backpressure stage: clients block when all slots are checked out.
    pub slots: usize,
    /// Bound of the request channel (`RADIX_SERVE_QUEUE`, default
    /// `slots`) — the second backpressure stage.
    pub queue: usize,
    /// Whether block execution uses the pool-parallel fused kernels
    /// (default) or the serial schedule. Results are bitwise identical
    /// either way; serial avoids pool contention when the caller runs
    /// several engines.
    pub parallel: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let max_batch = radix_sparse::kernel::env_usize("RADIX_SERVE_BATCH", 32).max(1);
        let slots = radix_sparse::kernel::env_usize("RADIX_SERVE_SLOTS", 0);
        let slots = if slots == 0 {
            DEFAULT_SLOT_BLOCKS * max_batch
        } else {
            slots
        };
        ServeConfig {
            max_batch,
            deadline_us: radix_sparse::kernel::env_usize(
                "RADIX_SERVE_DEADLINE_US",
                DEFAULT_DEADLINE_US,
            ) as u64,
            slots,
            queue: radix_sparse::kernel::env_usize("RADIX_SERVE_QUEUE", slots).max(1),
            parallel: true,
        }
    }
}

/// Whether admission-time row validation is enabled: `RADIX_SERVE_VALIDATE`
/// unset or anything but `"0"` means on. Trusted callers that generate
/// rows programmatically can set `RADIX_SERVE_VALIDATE=0` to skip the
/// finiteness scan entirely (width is always checked — it is one integer
/// compare and a wrong width would corrupt the shared batch layout).
fn validate_enabled() -> bool {
    std::env::var("RADIX_SERVE_VALIDATE").map_or(true, |v| v != "0")
}

/// Why a request could not be served. Every variant is a *typed* outcome:
/// the serving stack never panics across the API boundary for a malformed
/// or unlucky request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The engine is shutting down gracefully (or has already drained and
    /// exited); the request was not executed.
    Shutdown,
    /// The request row's length does not match the network's input width.
    /// Rejected at admission, before any shared state is touched.
    WidthMismatch {
        /// Length of the submitted row.
        got: usize,
        /// Input width the engine's network expects.
        want: usize,
    },
    /// The request row contains a `NaN` or `±inf` at the given index.
    /// Rejected at admission (gated by `RADIX_SERVE_VALIDATE`, default on)
    /// so a corrupted row cannot silently poison a shared batch.
    NonFiniteInput {
        /// Index of the first non-finite element.
        index: usize,
    },
    /// The request's deadline passed (or was predicted unreachable) before
    /// its block was computed; the engine shed it without burning pool
    /// time. Only [`ServeClient::infer_within`] requests carry deadlines.
    DeadlineExceeded,
    /// The engine's admission stages are saturated: no free slot / queue
    /// space for a non-blocking submit, or the queue depth predicts a
    /// deadline miss for a bounded-wait submit. The request was never
    /// queued — retry later or shed upstream.
    Overloaded,
    /// The engine thread died abnormally (panicked); the payload's message
    /// is carried verbatim. In-flight requests on the dead engine resolve
    /// to this error rather than hanging.
    EngineFailed(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shutdown => write!(f, "serving engine is shut down"),
            ServeError::WidthMismatch { got, want } => {
                write!(f, "request row width mismatch: got {got}, want {want}")
            }
            ServeError::NonFiniteInput { index } => {
                write!(f, "request row has a non-finite value at index {index}")
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded; shed unserved"),
            ServeError::Overloaded => write!(f, "serving engine overloaded; request rejected"),
            ServeError::EngineFailed(msg) => write!(f, "serve engine thread failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Extracts a human-readable message from a panic payload (the
/// `Box<dyn Any>` a `JoinHandle::join` error or `catch_unwind` hands back).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "engine panicked with a non-string payload".to_string())
}

/// Counters the engine accumulates over its lifetime, returned by
/// [`ServeHandle::shutdown`] (and snapshotted live by
/// [`ServeHandle::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Total rows (requests) actually computed and answered.
    pub rows: u64,
    /// Total coalesced blocks flushed (including blocks whose every row
    /// was shed — `batches == full_flushes + deadline_flushes` always).
    pub batches: u64,
    /// Blocks flushed because they reached [`ServeConfig::max_batch`] rows.
    pub full_flushes: u64,
    /// Blocks flushed because the oldest pending request hit its wait
    /// deadline (or the channel disconnected with rows pending).
    pub deadline_flushes: u64,
    /// Largest block executed — never exceeds [`ServeConfig::max_batch`].
    pub max_rows: u64,
    /// Requests completed with [`ServeError::DeadlineExceeded`] at flush
    /// time: queued, expired, shed without compute.
    pub shed_deadline: u64,
    /// Requests rejected with [`ServeError::Overloaded`] at admission:
    /// never queued at all.
    pub shed_overload: u64,
    /// Engine restarts performed by a supervisor (always 0 for a bare
    /// [`ServeEngine`]; populated by `ServeSupervisor`).
    pub restarts: u64,
}

impl ServeStats {
    /// Folds another stats snapshot into this one (summing counters,
    /// taking the max of `max_rows`) — how a supervisor accumulates
    /// per-generation engine stats into one lifetime view.
    pub(crate) fn absorb(&mut self, other: &ServeStats) {
        self.rows += other.rows;
        self.batches += other.batches;
        self.full_flushes += other.full_flushes;
        self.deadline_flushes += other.deadline_flushes;
        self.max_rows = self.max_rows.max(other.max_rows);
        self.shed_deadline += other.shed_deadline;
        self.shed_overload += other.shed_overload;
        self.restarts += other.restarts;
    }
}

/// The engine's live counters, shared so they survive an engine-thread
/// panic (a dead engine's work is still accounted — the supervisor's
/// books must balance). Relaxed ordering throughout: these are statistics,
/// sequenced by the locks and joins around them, not synchronization.
#[derive(Default)]
pub(crate) struct SharedStats {
    rows: AtomicU64,
    batches: AtomicU64,
    full_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    max_rows: AtomicU64,
    shed_deadline: AtomicU64,
    shed_overload: AtomicU64,
}

impl SharedStats {
    pub(crate) fn snapshot(&self) -> ServeStats {
        ServeStats {
            rows: self.rows.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            full_flushes: self.full_flushes.load(Ordering::Relaxed),
            deadline_flushes: self.deadline_flushes.load(Ordering::Relaxed),
            max_rows: self.max_rows.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            restarts: 0,
        }
    }
}

/// Deadline-aware micro-batching policy: a pure, tick-based accumulator
/// the engine loop drives (and property tests exercise without threads or
/// clocks). Requests are pushed with their arrival tick; the batch must be
/// flushed when it is full **or** when the *oldest* pending request has
/// waited `budget` ticks — whichever comes first. Because the deadline is
/// keyed to the oldest request, no request ever waits more than `budget`
/// ticks in the batcher (every later arrival's wait is strictly shorter).
#[derive(Debug, Clone)]
pub struct MicroBatcher {
    max_rows: usize,
    budget: u64,
    ids: Vec<usize>,
    first_tick: u64,
}

impl MicroBatcher {
    /// A batcher coalescing up to `max_rows` requests, holding the oldest
    /// at most `budget` ticks. Pre-allocates its id buffer — pushes never
    /// allocate.
    ///
    /// # Panics
    /// Panics if `max_rows == 0`.
    #[must_use]
    pub fn new(max_rows: usize, budget: u64) -> Self {
        assert!(max_rows > 0, "micro-batch size must be positive");
        MicroBatcher {
            max_rows,
            budget,
            ids: Vec::with_capacity(max_rows),
            first_tick: 0,
        }
    }

    /// Pending request count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no requests are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether the block has reached its row limit and must be flushed
    /// before the next push.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.ids.len() == self.max_rows
    }

    /// Adds a request (by id) arriving at tick `now`; returns whether the
    /// block is now full.
    ///
    /// # Panics
    /// Panics if the block is already full — the caller must flush first.
    pub fn push(&mut self, id: usize, now: u64) -> bool {
        assert!(!self.is_full(), "push into a full micro-batch");
        if self.ids.is_empty() {
            self.first_tick = now;
        }
        self.ids.push(id);
        self.is_full()
    }

    /// The tick by which the pending block must flush (`None` when empty):
    /// the oldest request's arrival plus the wait budget.
    #[must_use]
    pub fn deadline(&self) -> Option<u64> {
        if self.ids.is_empty() {
            None
        } else {
            Some(self.first_tick.saturating_add(self.budget))
        }
    }

    /// Whether the block must flush at tick `now`: it is full, or the
    /// oldest pending request has exhausted its wait budget.
    #[must_use]
    pub fn should_flush(&self, now: u64) -> bool {
        self.is_full() || self.deadline().is_some_and(|d| now >= d)
    }

    /// The pending request ids, oldest first (submission order).
    #[must_use]
    pub fn pending(&self) -> &[usize] {
        &self.ids
    }

    /// Empties the block (after the caller has taken [`Self::pending`]).
    pub fn clear(&mut self) {
        self.ids.clear();
    }

    /// The configured wait budget in ticks.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

/// Terminal state of a slot's current request, written by the engine's
/// flush stage; the client's condvar predicate is "no longer pending".
#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotOutcome {
    /// Submitted (or idle); no outcome yet.
    Pending,
    /// Result row written into `output`.
    Ready,
    /// Expired in the queue; shed without compute.
    Shed,
}

/// One in-flight request's pre-allocated state.
struct SlotData {
    /// The request row, written by the client before submission.
    input: Vec<f32>,
    /// The result row, written by the engine's demux stage.
    output: Vec<f32>,
    /// Written by the engine's flush stage; `Pending` while queued.
    outcome: SlotOutcome,
    /// Absolute completion deadline for [`ServeClient::infer_within`]
    /// requests; `None` for plain submits (never shed once queued).
    deadline: Option<Instant>,
}

struct Slot {
    data: Mutex<SlotData>,
    ready: Condvar,
}

/// State shared between clients, the engine thread, the handle, and (via
/// `pub(crate)`) the supervisor.
pub(crate) struct Shared {
    slots: Vec<Slot>,
    /// Indices of currently free slots; capacity `slots.len()`, so pushes
    /// never allocate.
    free: Mutex<Vec<usize>>,
    /// Signals a slot returning to the free list (and shutdown).
    free_ready: Condvar,
    /// Cleared by [`ServeHandle::shutdown`]; new requests fail fast.
    accepting: AtomicBool,
    /// Cleared when the engine thread exits (normally or by panic) so
    /// waiting clients never hang on a dead engine.
    engine_live: AtomicBool,
    /// Set (before `engine_live` clears) when the engine thread exits *by
    /// panic* — distinguishes [`ServeError::EngineFailed`] from a plain
    /// [`ServeError::Shutdown`] for clients waking off a dead engine.
    failed: AtomicBool,
    /// Lifetime counters; shared so they survive an engine panic.
    pub(crate) stats: SharedStats,
    /// Full-block compute cost measured at start-up, in microseconds —
    /// the queue-depth admission predictor's unit of work.
    compute_us: u64,
    /// Block size, for the admission predictor.
    max_batch: usize,
    /// Deterministic fault hooks (inactive by default; a single branch).
    fault: FaultInjector,
    /// Staged replacement network from [`ServeHandle::reload`], awaiting
    /// pickup by the engine loop at its next batch boundary.
    reload_slot: Mutex<Option<Box<ChallengeNetwork>>>,
    /// Set after staging a reload — the engine's single steady-state
    /// check (one atomic load per loop iteration keeps the hot path
    /// allocation-free).
    reload_pending: AtomicBool,
    /// Per-layer `(nrows, ncols)` of the serving network, snapshotted at
    /// start: a reload must match them exactly so the engine's
    /// pre-allocated workspace stays valid.
    layer_shapes: Vec<(usize, usize)>,
    /// The serving network's output bias / cap — the Challenge recipe
    /// fixes them, so a reload swaps weights only and keeps these.
    net_bias: f32,
    net_ymax: f32,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Engine/client panics must not wedge the other side; the protocol
    // only ever publishes fully-written rows, so continuing past a poison
    // is sound.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a submit waits for admission (slot checkout + queue space).
enum Admission {
    /// Block indefinitely (plain [`ServeClient::infer_into`]).
    Block,
    /// Never block; saturated stages reject with
    /// [`ServeError::Overloaded`].
    NonBlock,
    /// Block up to the absolute deadline; on admission, the engine owns
    /// the deadline and sheds the request at flush time if it expires.
    Within(Instant),
}

/// A clonable handle for submitting inference requests to a running
/// engine. Cheap to clone (an `Arc` and a channel sender); every thread
/// that issues requests should own a clone.
pub struct ServeClient {
    shared: Arc<Shared>,
    tx: crossbeam::channel::Sender<usize>,
    n_in: usize,
    n_out: usize,
    /// Admission-time finiteness validation (`RADIX_SERVE_VALIDATE`),
    /// resolved once at engine start.
    validate: bool,
}

impl Clone for ServeClient {
    fn clone(&self) -> Self {
        ServeClient {
            shared: Arc::clone(&self.shared),
            tx: self.tx.clone(),
            n_in: self.n_in,
            n_out: self.n_out,
            validate: self.validate,
        }
    }
}

impl ServeClient {
    /// Input width the engine's network expects.
    #[must_use]
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output width of a served result row.
    #[must_use]
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Whether the engine thread is currently alive (false once it has
    /// exited, gracefully or by panic). Advisory — it can change between
    /// the check and a subsequent call — but a `false` is final.
    #[must_use]
    pub fn engine_live(&self) -> bool {
        self.shared.engine_live.load(Ordering::Acquire)
    }

    /// The error a dead engine resolves to: [`ServeError::EngineFailed`]
    /// if the engine thread panicked, [`ServeError::Shutdown`] if it
    /// exited gracefully.
    fn engine_error(&self) -> ServeError {
        if self.shared.failed.load(Ordering::Acquire) {
            ServeError::EngineFailed("serve engine thread panicked".to_string())
        } else {
            ServeError::Shutdown
        }
    }

    /// Admission-time validation: width always, finiteness when enabled.
    fn validate_row(&self, row: &[f32]) -> Result<(), ServeError> {
        if row.len() != self.n_in {
            return Err(ServeError::WidthMismatch {
                got: row.len(),
                want: self.n_in,
            });
        }
        if self.validate {
            if let Some(index) = row.iter().position(|v| !v.is_finite()) {
                return Err(ServeError::NonFiniteInput { index });
            }
        }
        Ok(())
    }

    /// Submits one row and blocks until its result is written into `out`
    /// (resized to [`Self::n_out`]). With `out`'s capacity warmed, the
    /// whole round trip performs no heap allocation on the client thread.
    ///
    /// # Errors
    /// [`ServeError::WidthMismatch`] / [`ServeError::NonFiniteInput`] for
    /// a malformed row (validated at admission); [`ServeError::Shutdown`]
    /// if the engine is no longer accepting requests;
    /// [`ServeError::EngineFailed`] if the engine thread died abnormally.
    pub fn infer_into(&self, row: &[f32], out: &mut Vec<f32>) -> Result<(), ServeError> {
        self.submit(row, out, Admission::Block)
    }

    /// Convenience wrapper around [`Self::infer_into`] that allocates the
    /// result row. Hot clients should hold a reusable buffer and call
    /// `infer_into` instead.
    ///
    /// # Errors
    /// As [`Self::infer_into`].
    pub fn infer(&self, row: &[f32]) -> Result<Vec<f32>, ServeError> {
        let mut out = Vec::new();
        self.infer_into(row, &mut out)?;
        Ok(out)
    }

    /// Non-blocking submit: if every slot is checked out or the request
    /// queue is full *right now*, rejects with [`ServeError::Overloaded`]
    /// instead of blocking (the request is never queued). Once admitted,
    /// blocks for the result like [`Self::infer_into`].
    ///
    /// # Errors
    /// As [`Self::infer_into`], plus [`ServeError::Overloaded`] when an
    /// admission stage is saturated.
    pub fn try_infer_into(&self, row: &[f32], out: &mut Vec<f32>) -> Result<(), ServeError> {
        self.submit(row, out, Admission::NonBlock)
    }

    /// Allocating wrapper around [`Self::try_infer_into`].
    ///
    /// # Errors
    /// As [`Self::try_infer_into`].
    pub fn try_infer(&self, row: &[f32]) -> Result<Vec<f32>, ServeError> {
        let mut out = Vec::new();
        self.try_infer_into(row, &mut out)?;
        Ok(out)
    }

    /// Deadline-bounded submit: the request must complete within `timeout`
    /// of this call. Admission first *predicts* whether the deadline is
    /// reachable from the current queue depth (checked-out slots imply
    /// `ceil(queued / max_batch)` blocks ahead, each costing the measured
    /// block compute time) and sheds with [`ServeError::Overloaded`] when
    /// it is not — without queueing. Once admitted, the engine owns the
    /// deadline: a request still queued when it expires is completed with
    /// [`ServeError::DeadlineExceeded`] at flush time instead of being
    /// computed. The wait for a free slot is likewise bounded by the
    /// deadline.
    ///
    /// The deadline governs *shedding*, not the client's wait: an admitted
    /// request always resolves (the engine answers or sheds it; a dead
    /// engine fails it), so in pathological cases the result may arrive
    /// slightly after the deadline rather than being abandoned — a late
    /// `Ok` is possible, a hang is not.
    ///
    /// # Errors
    /// As [`Self::infer_into`], plus [`ServeError::Overloaded`] (predicted
    /// miss or no slot within the deadline) and
    /// [`ServeError::DeadlineExceeded`] (expired while queued).
    pub fn infer_within_into(
        &self,
        row: &[f32],
        out: &mut Vec<f32>,
        timeout: Duration,
    ) -> Result<(), ServeError> {
        self.submit(row, out, Admission::Within(Instant::now() + timeout))
    }

    /// Allocating wrapper around [`Self::infer_within_into`].
    ///
    /// # Errors
    /// As [`Self::infer_within_into`].
    pub fn infer_within(&self, row: &[f32], timeout: Duration) -> Result<Vec<f32>, ServeError> {
        let mut out = Vec::new();
        self.infer_within_into(row, &mut out, timeout)?;
        Ok(out)
    }

    /// The shared submit path: validate, check out a slot (per the
    /// admission mode), publish the request, wait for its one typed
    /// outcome.
    fn submit(
        &self,
        row: &[f32],
        out: &mut Vec<f32>,
        admission: Admission,
    ) -> Result<(), ServeError> {
        self.validate_row(row)?;
        if !self.shared.accepting.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let deadline = match admission {
            Admission::Within(d) => Some(d),
            _ => None,
        };
        // Stage 1 (backpressure): check out a free slot.
        let k = {
            let mut free = lock(&self.shared.free);
            if let Some(d) = deadline {
                // Queue-depth admission predictor: every checked-out slot
                // is a queued row; the engine clears them a block at a
                // time, each block costing the measured compute time, and
                // ours rides in the block after those. A predicted miss is
                // shed here, before any shared state is consumed.
                let queued = (self.shared.slots.len() - free.len()) as u64;
                let blocks_ahead = queued.div_ceil(self.shared.max_batch.max(1) as u64) + 1;
                let predicted =
                    Duration::from_micros(self.shared.compute_us.saturating_mul(blocks_ahead));
                if Instant::now() + predicted > d {
                    drop(free);
                    self.shared
                        .stats
                        .shed_overload
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Overloaded);
                }
            }
            loop {
                if let Some(k) = free.pop() {
                    break k;
                }
                if !self.shared.accepting.load(Ordering::Acquire) {
                    return Err(ServeError::Shutdown);
                }
                match admission {
                    Admission::Block => {
                        free = self
                            .shared
                            .free_ready
                            .wait(free)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    Admission::NonBlock => {
                        drop(free);
                        self.shared
                            .stats
                            .shed_overload
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Overloaded);
                    }
                    Admission::Within(d) => {
                        let now = Instant::now();
                        if now >= d {
                            drop(free);
                            self.shared
                                .stats
                                .shed_overload
                                .fetch_add(1, Ordering::Relaxed);
                            return Err(ServeError::Overloaded);
                        }
                        let (guard, _timeout) = self
                            .shared
                            .free_ready
                            .wait_timeout(free, d - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        free = guard;
                    }
                }
            }
        };
        // Write the request row into the slot, then publish its id.
        {
            let mut d = lock(&self.shared.slots[k].data);
            d.input.copy_from_slice(row);
            d.outcome = SlotOutcome::Pending;
            d.deadline = deadline;
        }
        // Stage 2 (backpressure): the bounded request channel.
        match admission {
            Admission::NonBlock => {
                use crossbeam::channel::TrySendError;
                match self.tx.try_send(k) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        self.release(k);
                        self.shared
                            .stats
                            .shed_overload
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Overloaded);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.release(k);
                        return Err(self.engine_error());
                    }
                }
            }
            _ => {
                // A live engine always drains the queue, so a blocking
                // send is bounded by the engine's consumption rate; a
                // send error means the engine thread is gone.
                if self.tx.send(k).is_err() {
                    self.release(k);
                    return Err(self.engine_error());
                }
            }
        }
        // Wait for the flush stage to resolve the request. The timeout is
        // purely defensive: a live engine always answers (it cannot exit
        // with our slot outstanding), so the predicate loop only breaks
        // out early if the engine thread died.
        let result = {
            let slot = &self.shared.slots[k];
            let mut d = lock(&slot.data);
            loop {
                match d.outcome {
                    SlotOutcome::Ready => {
                        out.resize(self.n_out, 0.0);
                        out.copy_from_slice(&d.output);
                        d.outcome = SlotOutcome::Pending;
                        d.deadline = None;
                        break Ok(());
                    }
                    SlotOutcome::Shed => {
                        d.outcome = SlotOutcome::Pending;
                        d.deadline = None;
                        break Err(ServeError::DeadlineExceeded);
                    }
                    SlotOutcome::Pending => {
                        if !self.shared.engine_live.load(Ordering::Acquire) {
                            d.deadline = None;
                            break Err(self.engine_error());
                        }
                        let (guard, _timeout) = slot
                            .ready
                            .wait_timeout(d, Duration::from_millis(50))
                            .unwrap_or_else(PoisonError::into_inner);
                        d = guard;
                    }
                }
            }
        };
        self.release(k);
        result
    }

    /// Returns slot `k` to the free list and wakes one waiting client.
    fn release(&self, k: usize) {
        self.shared.fault.release_stall();
        let mut free = lock(&self.shared.free);
        free.push(k);
        self.shared.free_ready.notify_one();
    }
}

/// Why a [`ServeHandle::reload`] was refused. Every variant leaves the
/// engine serving its current weights — a failed reload is a no-op.
#[derive(Debug)]
pub enum ReloadError {
    /// The checkpoint file failed to load or validate.
    Checkpoint(radix_nn::CheckpointError),
    /// The checkpoint's network has a dense layer; the serving engine
    /// runs prepared sparse layers only.
    NotSparse {
        /// Zero-based index of the offending layer.
        layer: usize,
    },
    /// The checkpoint's layer count differs from the serving network's.
    LayerCountMismatch {
        /// Layers the engine serves.
        expected: usize,
        /// Layers in the checkpoint.
        got: usize,
    },
    /// A layer's shape differs from the serving network's — the engine's
    /// pre-allocated workspace would no longer fit.
    ShapeMismatch {
        /// Zero-based layer index.
        layer: usize,
        /// `(nrows, ncols)` the engine serves.
        expected: (usize, usize),
        /// `(nrows, ncols)` in the checkpoint.
        got: (usize, usize),
    },
    /// The engine thread has already exited; there is nothing to reload
    /// into.
    EngineDown,
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Checkpoint(e) => write!(f, "reload rejected: {e}"),
            ReloadError::NotSparse { layer } => {
                write!(
                    f,
                    "reload rejected: layer {layer} is dense, engine serves sparse layers"
                )
            }
            ReloadError::LayerCountMismatch { expected, got } => {
                write!(
                    f,
                    "reload rejected: {got} layers in checkpoint, engine serves {expected}"
                )
            }
            ReloadError::ShapeMismatch {
                layer,
                expected,
                got,
            } => write!(
                f,
                "reload rejected: layer {layer} is {}×{}, engine serves {}×{}",
                got.0, got.1, expected.0, expected.1
            ),
            ReloadError::EngineDown => write!(f, "reload rejected: engine is down"),
        }
    }
}

impl std::error::Error for ReloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReloadError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<radix_nn::CheckpointError> for ReloadError {
    fn from(e: radix_nn::CheckpointError) -> Self {
        ReloadError::Checkpoint(e)
    }
}

/// The running engine's control handle: hands out clients, shuts the
/// engine down, and reports its stats.
pub struct ServeHandle {
    client: ServeClient,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
    batch_wait_us: u64,
}

impl ServeHandle {
    /// A new request handle onto this engine.
    #[must_use]
    pub fn client(&self) -> ServeClient {
        self.client.clone()
    }

    /// The batcher's effective wait deadline in microseconds: half of the
    /// configured end-to-end budget net of the block compute cost
    /// measured at start-up (zero when compute alone exceeds the budget,
    /// making every flush immediate); the withheld half is slack for
    /// queueing and scheduler jitter.
    #[must_use]
    pub fn batch_wait_us(&self) -> u64 {
        self.batch_wait_us
    }

    /// A live snapshot of the engine's counters (restarts always 0 — a
    /// bare engine never restarts itself).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// The shared state, for the supervisor's cross-generation stats
    /// accounting (a retired generation's counters can still be bumped by
    /// a straggling client, so the supervisor keeps the live handle, not
    /// a snapshot).
    pub(crate) fn shared_arc(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Hot-reloads the engine's weights from a training checkpoint
    /// written by `radix_nn::checkpoint` (e.g. by a supervised training
    /// run), without stopping the engine or dropping requests.
    ///
    /// The checkpoint is loaded, validated (fully sparse, same layer
    /// count, every shape identical to the serving network's — the
    /// engine's pre-allocated workspace must stay valid), re-prepared
    /// into tiled ELL form, and *staged*; the engine thread swaps it in
    /// at its next batch boundary (bounded by its idle re-check cadence,
    /// ≤ 50 ms). In-flight requests complete on the old weights;
    /// subsequent flushes use the new ones. The engine keeps its
    /// configured output bias/cap — the Challenge recipe fixes them, so
    /// a reload swaps weights only. This call allocates (decode +
    /// prepare); the engine's steady-state loop stays allocation-free —
    /// its only new cost is one atomic load per iteration, and the swap
    /// itself is a pointer-sized move (`tests/zero_alloc_serve.rs` pins
    /// the post-reload steady state).
    ///
    /// Staging a second reload before the engine picks up the first
    /// replaces the staged network — last writer wins.
    ///
    /// # Errors
    /// [`ReloadError::Checkpoint`] when the file is missing, corrupt, or
    /// malformed; the shape variants when the checkpoint disagrees with
    /// the serving network; [`ReloadError::EngineDown`] when the engine
    /// thread has exited. Every error leaves current weights serving.
    pub fn reload(&self, path: &std::path::Path) -> Result<(), ReloadError> {
        let ck = radix_nn::checkpoint::load(path)?;
        let expected = &self.shared.layer_shapes;
        let layers = ck.net.layers();
        if layers.len() != expected.len() {
            return Err(ReloadError::LayerCountMismatch {
                expected: expected.len(),
                got: layers.len(),
            });
        }
        let mut csrs = Vec::with_capacity(layers.len());
        for (i, l) in layers.iter().enumerate() {
            let radix_nn::Layer::Sparse(sl) = l else {
                return Err(ReloadError::NotSparse { layer: i });
            };
            let got = (sl.weights().nrows(), sl.weights().ncols());
            if got != expected[i] {
                return Err(ReloadError::ShapeMismatch {
                    layer: i,
                    expected: expected[i],
                    got,
                });
            }
            csrs.push(sl.weights().clone());
        }
        let new_net =
            ChallengeNetwork::from_layers(csrs, self.shared.net_bias, self.shared.net_ymax);
        if !self.shared.engine_live.load(Ordering::Acquire) {
            return Err(ReloadError::EngineDown);
        }
        *lock(&self.shared.reload_slot) = Some(Box::new(new_net));
        self.shared.reload_pending.store(true, Ordering::Release);
        Ok(())
    }

    /// Graceful shutdown: stops admitting new requests (they fail fast
    /// with [`ServeError::Shutdown`]), lets every in-flight request finish
    /// and demux, then joins the engine thread and returns its counters.
    /// Outstanding [`ServeClient`] clones stay valid as error-returning
    /// stubs.
    ///
    /// # Errors
    /// [`ServeError::EngineFailed`] carrying the panic message if the
    /// engine thread panicked (its partial stats remain readable via a
    /// supervisor; the error is the signal to restart or escalate).
    pub fn shutdown(self) -> Result<ServeStats, ServeError> {
        self.shared.accepting.store(false, Ordering::Release);
        // Wake clients parked on the free list so they observe shutdown.
        self.shared.free_ready.notify_all();
        drop(self.client);
        match self.thread.join() {
            Ok(()) => Ok(self.shared.stats.snapshot()),
            Err(payload) => Err(ServeError::EngineFailed(panic_message(payload.as_ref()))),
        }
    }
}

/// Clears liveness flags and wakes every waiter when the engine thread
/// exits — including by panic — so no client blocks on a dead engine.
/// A panicking exit sets `failed` *before* clearing `engine_live` (release
/// ordering), so any client that observes the dead engine also observes
/// how it died.
struct EngineExitGuard(Arc<Shared>);

impl Drop for EngineExitGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.failed.store(true, Ordering::Release);
        }
        self.0.accepting.store(false, Ordering::Release);
        self.0.engine_live.store(false, Ordering::Release);
        self.0.free_ready.notify_all();
        for slot in &self.0.slots {
            // Touch the mutex so a client between its predicate check and
            // its wait cannot miss the wake-up.
            drop(lock(&slot.data));
            slot.ready.notify_all();
        }
    }
}

/// The serving engine: constructor only — all further interaction goes
/// through the [`ServeHandle`] that [`ServeEngine::start`] returns.
pub struct ServeEngine;

impl ServeEngine {
    /// Starts an engine serving `net` with `config`, returning its control
    /// handle. Pre-allocates every steady-state buffer (slots, batch
    /// matrix, workspace), warms the fused kernels with one full block to
    /// both reach the workspace high-water mark and *measure* block
    /// compute cost — the micro-batcher's wait deadline is the configured
    /// latency budget minus that measurement, and the same measurement
    /// feeds the deadline-admission predictor.
    ///
    /// Fault injection is read from the `RADIX_FAULT_*` environment (see
    /// [`crate::fault`]); in the default (unset) environment the hooks
    /// compile to a single branch.
    ///
    /// # Panics
    /// Panics if `config.max_batch`, `config.slots`, or `config.queue` is
    /// zero, or if the engine thread cannot be spawned.
    #[must_use]
    pub fn start(net: ChallengeNetwork, config: &ServeConfig) -> ServeHandle {
        Self::start_with_faults(net, config, FaultInjector::from_env())
    }

    /// [`ServeEngine::start`] with an explicit fault injector — the
    /// programmatic entry point the chaos suites use; production callers
    /// pass [`FaultInjector::inactive`] (or just call `start`).
    ///
    /// # Panics
    /// As [`ServeEngine::start`].
    #[must_use]
    pub fn start_with_faults(
        net: ChallengeNetwork,
        config: &ServeConfig,
        fault: FaultInjector,
    ) -> ServeHandle {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.slots > 0, "need at least one request slot");
        assert!(config.queue > 0, "request queue bound must be positive");
        let n_in = net.n_in();
        let n_out = net.layers().last().expect("non-empty network").ncols();

        // Warm-up block: drives the workspace to its high-water mark and
        // measures what a full block costs, so the wait budget can leave
        // room for compute inside the end-to-end deadline.
        let mut ws = InferWorkspace::for_network(&net, config.max_batch);
        let warm = DenseMatrix::zeros(config.max_batch, n_in);
        let t = Instant::now();
        let _ = net.forward_with(&warm, config.parallel, &mut ws);
        // An injected compute delay slows every engine-loop block, so the
        // measurement must pay it too — otherwise the batcher wait and the
        // admission predictor would plan around a block cost the engine
        // never achieves, and "admitted" requests would be served late.
        fault.compute_delay();
        let compute_us = t.elapsed().as_micros() as u64;
        // Half the post-compute remainder goes to waiting; the other half
        // stays as slack for queueing, wake-up latency, and scheduler
        // jitter, so a lone request's p99 — wait + compute + slack-eaters
        // — still fits the configured end-to-end budget.
        let batch_wait_us = config.deadline_us.saturating_sub(compute_us) / 2;

        let shared = Arc::new(Shared {
            slots: (0..config.slots)
                .map(|_| Slot {
                    data: Mutex::new(SlotData {
                        input: vec![0.0; n_in],
                        output: vec![0.0; n_out],
                        outcome: SlotOutcome::Pending,
                        deadline: None,
                    }),
                    ready: Condvar::new(),
                })
                .collect(),
            free: Mutex::new((0..config.slots).rev().collect()),
            free_ready: Condvar::new(),
            accepting: AtomicBool::new(true),
            engine_live: AtomicBool::new(true),
            failed: AtomicBool::new(false),
            stats: SharedStats::default(),
            compute_us,
            max_batch: config.max_batch,
            fault,
            reload_slot: Mutex::new(None),
            reload_pending: AtomicBool::new(false),
            layer_shapes: net
                .layers()
                .iter()
                .map(|l| (l.nrows(), l.ncols()))
                .collect(),
            net_bias: net.bias(),
            net_ymax: net.ymax(),
        });
        let (tx, rx) = crossbeam::channel::bounded::<usize>(config.queue);

        let engine = EngineLoop {
            net,
            ws,
            x: DenseMatrix::zeros(config.max_batch, n_in),
            batch: Vec::with_capacity(config.max_batch),
            live: Vec::with_capacity(config.max_batch),
            mb: MicroBatcher::new(config.max_batch, batch_wait_us),
            rx,
            shared: Arc::clone(&shared),
            parallel: config.parallel,
            t0: Instant::now(),
        };
        let thread = std::thread::Builder::new()
            .name("radix-serve".to_string())
            .spawn(move || {
                let guard = EngineExitGuard(Arc::clone(&engine.shared));
                // Serve flushes ride the scheduler's preferred lane: their
                // inference tiles are claimed ahead of any Normal-priority
                // work (a concurrent training job's gradient chunks) at
                // every claim boundary, keeping flush latency flat while
                // the pool is shared.
                rayon::with_priority(rayon::Priority::High, || engine.run());
                drop(guard);
            })
            .expect("spawn serve engine thread");

        let validate = validate_enabled();
        ServeHandle {
            client: ServeClient {
                shared: Arc::clone(&shared),
                tx,
                n_in,
                n_out,
                validate,
            },
            shared,
            thread,
            batch_wait_us,
        }
    }
}

/// Everything the engine thread owns.
struct EngineLoop {
    net: ChallengeNetwork,
    ws: InferWorkspace,
    /// Gather target: the coalesced block's rows, contiguous.
    x: DenseMatrix<f32>,
    /// Slot ids of the block being flushed (copied out of the batcher).
    batch: Vec<usize>,
    /// The flush's surviving (non-shed) slot ids, in submission order.
    live: Vec<usize>,
    mb: MicroBatcher,
    rx: crossbeam::channel::Receiver<usize>,
    shared: Arc<Shared>,
    parallel: bool,
    t0: Instant,
}

impl EngineLoop {
    /// Monotonic microsecond tick for the batcher.
    fn tick(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// The batching loop. Exits when the channel disconnects (every
    /// sender, handle included, dropped) or when shutdown has been
    /// requested and every request is drained and answered.
    fn run(mut self) {
        use crossbeam::channel::{RecvTimeoutError, TryRecvError};
        // Re-check cadence while idle or awaiting shutdown; also bounds
        // how stale a deadline check can get under a zero wait budget.
        let idle = Duration::from_micros(self.mb.budget().clamp(200, 50_000));
        loop {
            // Batch-boundary weight swap: one relaxed-path atomic load in
            // steady state; requests gathered after this point run on the
            // new weights, anything already flushed completed on the old.
            if self.shared.reload_pending.load(Ordering::Acquire) {
                self.apply_reload();
            }
            // Greedy drain: coalesce everything already queued, up to one
            // full block, without blocking.
            let mut disconnected = false;
            while !self.mb.is_full() {
                match self.rx.try_recv() {
                    Ok(k) => {
                        let now = self.tick();
                        self.mb.push(k, now);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            if self.mb.should_flush(self.tick()) {
                self.execute();
                continue;
            }
            if disconnected {
                if !self.mb.is_empty() {
                    self.execute();
                }
                break;
            }
            // Nothing to flush: wait for the next arrival, but never past
            // the pending block's deadline.
            let timeout = match self.mb.deadline() {
                Some(d) => Duration::from_micros(d.saturating_sub(self.tick())),
                None => {
                    if self.drained_for_shutdown() {
                        break;
                    }
                    idle
                }
            };
            match self.rx.recv_timeout(timeout) {
                Ok(k) => {
                    let now = self.tick();
                    self.mb.push(k, now);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.mb.should_flush(self.tick()) {
                        self.execute();
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if !self.mb.is_empty() {
                        self.execute();
                    }
                    break;
                }
            }
        }
    }

    /// Swaps a staged replacement network in (reload path — allocation
    /// and deallocation are fine here, this is not the steady state).
    /// Shapes were validated at staging time, so the pre-sized workspace
    /// and gather matrix remain valid.
    fn apply_reload(&mut self) {
        if let Some(new_net) = lock(&self.shared.reload_slot).take() {
            self.net = *new_net;
        }
        self.shared.reload_pending.store(false, Ordering::Release);
    }

    /// Graceful-shutdown exit test, only meaningful with no rows pending:
    /// admission stopped and every slot back on the free list (so no
    /// client is mid-request — anything submitted later fails fast).
    fn drained_for_shutdown(&self) -> bool {
        !self.shared.accepting.load(Ordering::Acquire)
            && lock(&self.shared.free).len() == self.shared.slots.len()
    }

    /// Flush: shed expired requests, gather the survivors' rows, run the
    /// fused forward pass, demux results back to their slots in
    /// submission order.
    fn execute(&mut self) {
        // Injected faults fire before any slot is touched, so a panic
        // here leaves every gathered request Pending — resolved to
        // `EngineFailed` by the exit guard, never half-answered.
        self.shared.fault.before_execute();
        let stats = &self.shared.stats;
        if self.mb.is_full() {
            stats.full_flushes.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.deadline_flushes.fetch_add(1, Ordering::Relaxed);
        }
        stats.batches.fetch_add(1, Ordering::Relaxed);
        self.batch.clear();
        self.batch.extend_from_slice(self.mb.pending());
        self.mb.clear();
        // Shed pass: a request that cannot finish by its deadline even if
        // computed right now (compute cost is known) is completed with
        // `Shed` instead of burning pool time on an answer nobody reads.
        let now = Instant::now();
        let compute = Duration::from_micros(self.shared.compute_us);
        self.live.clear();
        for &k in &self.batch {
            let slot = &self.shared.slots[k];
            let mut d = lock(&slot.data);
            if d.deadline.is_some_and(|dl| now + compute >= dl) {
                d.outcome = SlotOutcome::Shed;
                drop(d);
                slot.ready.notify_one();
                stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
            } else {
                drop(d);
                self.live.push(k);
            }
        }
        let n = self.live.len();
        if n == 0 {
            return;
        }
        self.x.resize_for_overwrite(n, self.net.n_in());
        for (i, &k) in self.live.iter().enumerate() {
            let d = lock(&self.shared.slots[k].data);
            self.x.row_mut(i).copy_from_slice(&d.input);
        }
        self.shared.fault.compute_delay();
        let y = self.net.forward_with(&self.x, self.parallel, &mut self.ws);
        for (i, &k) in self.live.iter().enumerate() {
            let slot = &self.shared.slots[k];
            let mut d = lock(&slot.data);
            d.output.copy_from_slice(y.row(i));
            d.outcome = SlotOutcome::Ready;
            drop(d);
            slot.ready.notify_one();
        }
        stats.rows.fetch_add(n as u64, Ordering::Relaxed);
        stats.max_rows.fetch_max(n as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChallengeConfig;
    use radix_data::sparse_binary_batch;

    fn small_net() -> ChallengeNetwork {
        ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 4, 2)).unwrap()
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            max_batch: 4,
            deadline_us: 2_000,
            slots: 8,
            queue: 8,
            parallel: false,
        }
    }

    #[test]
    fn batcher_flushes_on_full() {
        let mut mb = MicroBatcher::new(3, 100);
        assert!(mb.is_empty());
        assert!(!mb.push(0, 0));
        assert!(!mb.push(1, 0));
        assert!(!mb.should_flush(50));
        assert!(mb.push(2, 0));
        assert!(mb.is_full());
        assert!(mb.should_flush(0), "full block flushes regardless of time");
        assert_eq!(mb.pending(), &[0, 1, 2]);
        mb.clear();
        assert!(mb.is_empty());
        assert_eq!(mb.deadline(), None);
    }

    #[test]
    fn batcher_flushes_on_deadline_of_oldest() {
        let mut mb = MicroBatcher::new(10, 100);
        mb.push(7, 40);
        mb.push(8, 99);
        assert_eq!(mb.deadline(), Some(140), "keyed to the oldest request");
        assert!(!mb.should_flush(139));
        assert!(mb.should_flush(140));
        mb.clear();
        // The next block's deadline restarts from its own first arrival.
        mb.push(9, 200);
        assert_eq!(mb.deadline(), Some(300));
    }

    #[test]
    fn batcher_zero_budget_flushes_immediately() {
        let mut mb = MicroBatcher::new(8, 0);
        mb.push(1, 17);
        assert!(mb.should_flush(17));
    }

    #[test]
    #[should_panic(expected = "push into a full micro-batch")]
    fn batcher_rejects_push_past_capacity() {
        let mut mb = MicroBatcher::new(1, 10);
        mb.push(0, 0);
        mb.push(1, 0);
    }

    #[test]
    fn serve_roundtrip_matches_forward() {
        let net = small_net();
        let x = sparse_binary_batch(6, net.n_in(), 0.5, 3);
        let reference = net.forward(&x, false);
        let handle = ServeEngine::start(net, &quick_config());
        let client = handle.client();
        assert_eq!(client.n_in(), x.ncols());
        for i in 0..x.nrows() {
            let y = client.infer(x.row(i)).unwrap();
            assert_eq!(y.as_slice(), reference.row(i), "row {i}");
        }
        let stats = handle.shutdown().unwrap();
        assert_eq!(stats.rows, 6);
        assert!(stats.max_rows <= 4);
        assert!(stats.batches >= 2, "6 rows cannot fit one 4-row block");
        assert_eq!(stats.shed_deadline, 0);
        assert_eq!(stats.shed_overload, 0);
        assert_eq!(stats.restarts, 0);
    }

    #[test]
    fn shutdown_rejects_new_requests_and_reports_stats() {
        let net = small_net();
        let n_in = net.n_in();
        let handle = ServeEngine::start(net, &quick_config());
        let client = handle.client();
        let row = vec![1.0f32; n_in];
        client.infer(&row).unwrap();
        let stats = handle.shutdown().unwrap();
        assert_eq!(stats.rows, 1);
        assert_eq!(
            stats.deadline_flushes, 1,
            "lone request flushes on deadline"
        );
        assert_eq!(client.infer(&row), Err(ServeError::Shutdown));
        let mut out = Vec::new();
        assert_eq!(client.infer_into(&row, &mut out), Err(ServeError::Shutdown));
    }

    #[test]
    fn immediate_shutdown_of_idle_engine() {
        let stats = ServeEngine::start(small_net(), &quick_config())
            .shutdown()
            .unwrap();
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn wrong_width_is_typed_error() {
        let net = small_net();
        let handle = ServeEngine::start(net, &quick_config());
        let client = handle.client();
        let want = client.n_in();
        assert_eq!(
            client.infer(&[1.0]),
            Err(ServeError::WidthMismatch { got: 1, want })
        );
        // A typed rejection consumes nothing: the engine still serves.
        let ok = client.infer(&vec![0.5; want]).unwrap();
        assert_eq!(ok.len(), client.n_out());
        let stats = handle.shutdown().unwrap();
        assert_eq!(stats.rows, 1, "rejected request never reached the engine");
    }

    #[test]
    fn non_finite_input_is_typed_error() {
        let net = small_net();
        let handle = ServeEngine::start(net, &quick_config());
        let client = handle.client();
        let mut row = vec![0.5f32; client.n_in()];
        row[2] = f32::NAN;
        assert_eq!(
            client.infer(&row),
            Err(ServeError::NonFiniteInput { index: 2 })
        );
        row[2] = f32::INFINITY;
        assert_eq!(
            client.infer(&row),
            Err(ServeError::NonFiniteInput { index: 2 })
        );
        row[2] = 0.0;
        client.infer(&row).unwrap();
        let stats = handle.shutdown().unwrap();
        assert_eq!(stats.rows, 1);
    }

    #[test]
    fn try_infer_serves_when_unloaded() {
        let net = small_net();
        let handle = ServeEngine::start(net, &quick_config());
        let client = handle.client();
        let row = vec![0.25f32; client.n_in()];
        let y = client.try_infer(&row).unwrap();
        assert_eq!(y.len(), client.n_out());
        let stats = handle.shutdown().unwrap();
        assert_eq!(stats.rows, 1);
        assert_eq!(stats.shed_overload, 0);
    }

    #[test]
    fn infer_within_generous_deadline_serves() {
        let net = small_net();
        let handle = ServeEngine::start(net, &quick_config());
        let client = handle.client();
        let row = vec![0.25f32; client.n_in()];
        let y = client.infer_within(&row, Duration::from_secs(5)).unwrap();
        assert_eq!(y.len(), client.n_out());
        let stats = handle.shutdown().unwrap();
        assert_eq!(stats.rows, 1);
        assert_eq!(stats.shed_deadline, 0);
        assert_eq!(stats.shed_overload, 0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ServeError::WidthMismatch { got: 3, want: 20 };
        assert_eq!(e.to_string(), "request row width mismatch: got 3, want 20");
        assert!(ServeError::NonFiniteInput { index: 7 }
            .to_string()
            .contains("index 7"));
        assert!(ServeError::EngineFailed("boom".into())
            .to_string()
            .contains("boom"));
        assert!(!ServeError::Overloaded.to_string().is_empty());
        assert!(!ServeError::DeadlineExceeded.to_string().is_empty());
    }

    #[test]
    fn wait_budget_subtracts_measured_compute() {
        let net = small_net();
        let cfg = quick_config();
        let handle = ServeEngine::start(net, &cfg);
        assert!(handle.batch_wait_us() <= cfg.deadline_us);
        let _ = handle.shutdown().unwrap();
    }

    #[test]
    fn live_stats_snapshot_tracks_served_rows() {
        let net = small_net();
        let handle = ServeEngine::start(net, &quick_config());
        let client = handle.client();
        let row = vec![0.5f32; client.n_in()];
        client.infer(&row).unwrap();
        let live = handle.stats();
        assert_eq!(live.rows, 1);
        let final_stats = handle.shutdown().unwrap();
        assert_eq!(final_stats.rows, 1);
    }

    #[test]
    fn default_config_reads_env_shape() {
        let cfg = ServeConfig::default();
        assert!(cfg.max_batch >= 1);
        assert!(cfg.slots >= cfg.max_batch);
        assert!(cfg.queue >= 1);
    }
}
