//! Streaming multi-batch runner with per-layer activation accounting —
//! the Challenge's "category" bookkeeping.
//!
//! The official benchmark processes the full input set in batches and
//! validates by counting, per input row, which output neurons remain
//! active. This module runs a sequence of batches through a
//! [`ChallengeNetwork`], accumulates per-layer activation statistics, and
//! produces the final active-neuron categories for validation against a
//! reference run.

use radix_sparse::DenseMatrix;

use crate::infer::ChallengeNetwork;

/// Per-layer activation statistics accumulated over a streamed run.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerActivationStats {
    /// Number of nonzero activations entering each layer (index 0 = input).
    pub active_per_layer: Vec<u64>,
    /// Total activation mass (sum of values) entering each layer.
    pub mass_per_layer: Vec<f64>,
    /// Rows processed.
    pub rows: usize,
}

/// Result of a streamed run: categories plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// For each input row (in stream order), the sorted indices of output
    /// neurons that were active (> 0) — the Challenge's answer format.
    pub categories: Vec<Vec<usize>>,
    /// Accumulated per-layer statistics.
    pub stats: LayerActivationStats,
}

/// Runs a sequence of batches through the network, layer by layer,
/// accumulating activation statistics and collecting output categories.
///
/// # Panics
/// Panics if any batch's width differs from the network input width.
#[must_use]
pub fn run_stream(net: &ChallengeNetwork, batches: &[DenseMatrix<f32>]) -> StreamResult {
    let num_layers = net.layers().len();
    let mut stats = LayerActivationStats {
        active_per_layer: vec![0; num_layers + 1],
        mass_per_layer: vec![0.0; num_layers + 1],
        rows: 0,
    };
    let mut categories = Vec::new();
    // Ping-pong buffers shared across every batch in the stream: the
    // prepared kernels resize them in place, so steady-state batches run
    // allocation-free with the bias/ReLU/clamp epilogue fused in. Layers
    // run the cache-tiled pool-parallel kernel (the per-layer stats
    // recording needs every layer's full output, so the multi-layer fused
    // schedule does not apply here).
    let epi = net.epilogue();
    let mut buffers = radix_sparse::kernel::PingPong::new();
    for batch in batches {
        assert_eq!(batch.ncols(), net.n_in(), "batch width mismatch");
        stats.rows += batch.nrows();
        record(&mut stats, 0, batch);
        let y = buffers.run(batch, net.layers().len(), |l, src, dst| {
            net.layers()[l]
                .par_spmm_tiled_into(src, dst, &epi)
                .expect("widths chain");
            record(&mut stats, l + 1, dst);
        });
        for i in 0..y.nrows() {
            let active: Vec<usize> = y
                .row(i)
                .iter()
                .enumerate()
                .filter(|(_, v)| **v > 0.0)
                .map(|(j, _)| j)
                .collect();
            categories.push(active);
        }
    }
    StreamResult { categories, stats }
}

fn record(stats: &mut LayerActivationStats, layer: usize, y: &DenseMatrix<f32>) {
    let mut active = 0u64;
    let mut mass = 0.0f64;
    for &v in y.as_slice() {
        if v != 0.0 {
            active += 1;
            mass += f64::from(v);
        }
    }
    stats.active_per_layer[layer] += active;
    stats.mass_per_layer[layer] += mass;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChallengeConfig;
    use radix_data::sparse_binary_batch;

    fn net() -> ChallengeNetwork {
        ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 4, 2)).unwrap()
    }

    #[test]
    fn stream_matches_single_batch_forward() {
        let n = net();
        let x = sparse_binary_batch(10, n.n_in(), 0.5, 0);
        let result = run_stream(&n, std::slice::from_ref(&x));
        let reference = n.forward(&x, false);
        assert_eq!(result.categories.len(), 10);
        for (i, cats) in result.categories.iter().enumerate() {
            let expect: Vec<usize> = reference
                .row(i)
                .iter()
                .enumerate()
                .filter(|(_, v)| **v > 0.0)
                .map(|(j, _)| j)
                .collect();
            assert_eq!(cats, &expect, "row {i}");
        }
    }

    #[test]
    fn stream_splits_are_equivalent() {
        // Two batches of 5 == one batch of 10, in order.
        let n = net();
        let x = sparse_binary_batch(10, n.n_in(), 0.5, 1);
        let whole = run_stream(&n, std::slice::from_ref(&x));
        let mut a = DenseMatrix::zeros(5, n.n_in());
        let mut b = DenseMatrix::zeros(5, n.n_in());
        for i in 0..5 {
            let dst: &mut [f32] = a.row_mut(i);
            dst.copy_from_slice(x.row(i));
            let dst: &mut [f32] = b.row_mut(i);
            dst.copy_from_slice(x.row(i + 5));
        }
        let split = run_stream(&n, &[a, b]);
        assert_eq!(whole.categories, split.categories);
        assert_eq!(whole.stats, split.stats);
    }

    #[test]
    fn stats_monotone_sanity() {
        let n = net();
        let x = sparse_binary_batch(8, n.n_in(), 0.75, 2);
        let result = run_stream(&n, &[x]);
        assert_eq!(result.stats.rows, 8);
        // Input activations recorded.
        assert_eq!(result.stats.active_per_layer[0], 8 * 12); // ceil(16·0.75)
                                                              // Gain-2 dynamics above the fixed point: mass should not collapse.
        assert!(result.stats.mass_per_layer.last().unwrap() > &0.0);
    }

    #[test]
    fn empty_stream_is_empty() {
        let n = net();
        let result = run_stream(&n, &[]);
        assert!(result.categories.is_empty());
        assert_eq!(result.stats.rows, 0);
    }
}
