//! Supervised serving: automatic engine restart after a panic.
//!
//! A [`ServeSupervisor`] owns the network and wraps a serving engine in a
//! restart loop: when the engine thread dies abnormally, the supervisor
//! retires the dead generation (its in-flight requests have already
//! resolved to [`ServeError::EngineFailed`] via the engine's exit guard),
//! waits out a linear backoff, and starts a fresh engine from its own
//! copy of the network — new requests transparently hit the fresh engine.
//! Restarts are bounded by [`RestartPolicy::max_restarts`]; once the
//! budget is exhausted the supervisor stops restarting and every further
//! request fails fast with [`ServeError::EngineFailed`].
//!
//! The restart is *reactive*: the failure is detected by the first
//! request that observes the dead engine (or by an explicit
//! [`SupervisorClient`] call finding `engine_live()` false). That
//! request — genuinely in flight on the dead engine — still gets its
//! `EngineFailed`; it is not silently retried, because the supervisor
//! cannot know whether the dead engine computed it. Requests arriving
//! during the restart window block briefly on the supervisor's state
//! lock and then proceed against the new generation.
//!
//! Accounting survives failure: each generation's counters live in shared
//! atomics that outlive the engine thread, and the supervisor keeps every
//! retired generation's state alive (bounded by the restart budget), so
//! [`SupervisorHandle::shutdown`] returns lifetime totals — rows, sheds,
//! flushes, restarts — that balance the submitted request count even when
//! engines died mid-stream.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::fault::FaultInjector;
use crate::infer::ChallengeNetwork;
use crate::serve::{ServeClient, ServeConfig, ServeEngine, ServeError, ServeHandle, ServeStats};

/// How aggressively the supervisor restarts a dead engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Maximum engine restarts over the supervisor's lifetime; once
    /// exhausted, requests fail fast with [`ServeError::EngineFailed`].
    pub max_restarts: u32,
    /// Base backoff slept before restart `n` is `backoff * n` (linear):
    /// a crash loop decelerates instead of spinning.
    pub backoff: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Mutable supervisor state, serialized by one mutex: requests snapshot
/// the current generation under it, and failure handling (retire +
/// restart) runs entirely inside it, so concurrent failure observers
/// trigger exactly one restart.
struct SupState {
    /// The live engine; `None` only after shutdown or budget exhaustion.
    handle: Option<ServeHandle>,
    /// Clone source for request snapshots (kept outside `handle` so
    /// cloning does not borrow through the `Option`).
    client: Option<ServeClient>,
    /// Bumped on every restart; lets a failure observer detect that
    /// someone else already replaced the generation it saw fail.
    generation: u64,
    /// Restarts performed so far.
    restarts: u64,
    /// Retired generations' shared state — kept alive (bounded by the
    /// restart budget) so a straggling client's late counter bump is
    /// still visible to the final accounting.
    retired: Vec<Arc<crate::serve::Shared>>,
    /// Message of the most recent engine failure.
    last_error: Option<String>,
    /// Set when the restart budget is exhausted: no engine will run again.
    exhausted: bool,
}

/// Everything the supervisor's clients share.
struct SupShared {
    config: ServeConfig,
    policy: RestartPolicy,
    /// The supervisor's own copy of the network — each restart clones it
    /// for the fresh engine.
    net: ChallengeNetwork,
    /// Fault injector handed to every generation; its counters are shared,
    /// so an exhausted panic budget stays exhausted across restarts.
    fault: FaultInjector,
    /// Set by [`SupervisorHandle::shutdown`]: failures stop triggering
    /// restarts and requests fail fast.
    stopping: AtomicBool,
    state: Mutex<SupState>,
}

impl SupShared {
    /// Handles an observed engine failure: if the failed generation is
    /// still current (first observer wins), retire it and start a fresh
    /// engine — or mark the supervisor exhausted when the restart budget
    /// is spent. Returns with the state lock released.
    fn handle_failure(&self, observed_generation: u64) {
        let mut st = lock(&self.state);
        if st.generation != observed_generation
            || st.exhausted
            || self.stopping.load(Ordering::Acquire)
        {
            return;
        }
        let Some(old) = st.handle.take() else {
            return;
        };
        st.client = None;
        // Keep the dead generation's counters reachable, then join its
        // thread to capture the real panic message.
        st.retired.push(old.shared_arc());
        match old.shutdown() {
            Ok(_) => {
                // The engine exited cleanly after all (a graceful-exit
                // race, not a crash); still restart — callers saw errors.
            }
            Err(ServeError::EngineFailed(msg)) => st.last_error = Some(msg),
            Err(_) => {}
        }
        if st.restarts >= u64::from(self.policy.max_restarts) {
            st.exhausted = true;
            return;
        }
        st.restarts += 1;
        // Linear backoff, slept while holding the state lock: requests
        // arriving mid-restart block here and then see the new engine —
        // that blocking *is* the "transparently hit the fresh engine"
        // behavior (they never observe the dead generation).
        let pause = self
            .policy
            .backoff
            .saturating_mul(u32::try_from(st.restarts).unwrap_or(u32::MAX));
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
        let handle =
            ServeEngine::start_with_faults(self.net.clone(), &self.config, self.fault.clone());
        st.client = Some(handle.client());
        st.handle = Some(handle);
        st.generation += 1;
    }
}

/// The supervisor: constructor only — interaction goes through the
/// [`SupervisorHandle`] it returns.
pub struct ServeSupervisor;

impl ServeSupervisor {
    /// Starts a supervised engine serving `net` under `config`, restarting
    /// it per `policy` when it dies. Fault injection follows the
    /// `RADIX_FAULT_*` environment, exactly as [`ServeEngine::start`].
    ///
    /// # Panics
    /// As [`ServeEngine::start`] (invalid config, thread spawn failure).
    #[must_use]
    pub fn start(
        net: ChallengeNetwork,
        config: &ServeConfig,
        policy: RestartPolicy,
    ) -> SupervisorHandle {
        Self::start_with_faults(net, config, policy, FaultInjector::from_env())
    }

    /// [`ServeSupervisor::start`] with an explicit fault injector. The
    /// injector is shared across every engine generation this supervisor
    /// starts, so cumulative schedules (panic at batch N, budget M)
    /// behave deterministically through restarts.
    ///
    /// # Panics
    /// As [`ServeEngine::start`].
    #[must_use]
    pub fn start_with_faults(
        net: ChallengeNetwork,
        config: &ServeConfig,
        policy: RestartPolicy,
        fault: FaultInjector,
    ) -> SupervisorHandle {
        let handle = ServeEngine::start_with_faults(net.clone(), config, fault.clone());
        let client = handle.client();
        SupervisorHandle {
            shared: Arc::new(SupShared {
                config: config.clone(),
                policy,
                net,
                fault,
                stopping: AtomicBool::new(false),
                state: Mutex::new(SupState {
                    handle: Some(handle),
                    client: Some(client),
                    generation: 0,
                    restarts: 0,
                    retired: Vec::new(),
                    last_error: None,
                    exhausted: false,
                }),
            }),
        }
    }
}

/// Control handle for a supervised engine: hands out clients, reports
/// accumulated stats, shuts the whole supervision tree down.
pub struct SupervisorHandle {
    shared: Arc<SupShared>,
}

impl SupervisorHandle {
    /// A new request handle onto the supervised engine.
    #[must_use]
    pub fn client(&self) -> SupervisorClient {
        SupervisorClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Lifetime stats so far: every retired generation plus the live one,
    /// with [`ServeStats::restarts`] set to the restarts performed.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let st = lock(&self.shared.state);
        let mut total = ServeStats::default();
        for shared in &st.retired {
            total.absorb(&shared.stats.snapshot());
        }
        if let Some(handle) = &st.handle {
            total.absorb(&handle.stats());
        }
        total.restarts = st.restarts;
        total
    }

    /// The most recent engine failure's panic message, if any engine has
    /// died under this supervisor.
    #[must_use]
    pub fn last_error(&self) -> Option<String> {
        lock(&self.shared.state).last_error.clone()
    }

    /// Whether the restart budget is exhausted (no engine is running and
    /// none will be started).
    #[must_use]
    pub fn exhausted(&self) -> bool {
        lock(&self.shared.state).exhausted
    }

    /// Shuts the supervision tree down and returns lifetime stats across
    /// every generation. Infallible by design: a final engine panic is
    /// absorbed into [`Self::last_error`] accounting rather than
    /// propagated — the supervisor's whole job is that engine death is a
    /// counted event, not an escaping panic.
    #[must_use]
    pub fn shutdown(self) -> ServeStats {
        self.shared.stopping.store(true, Ordering::Release);
        let mut st = lock(&self.shared.state);
        let mut total = ServeStats::default();
        if let Some(handle) = st.handle.take() {
            st.client = None;
            // Grab the shared state first: if the final join reports a
            // panic, the counters are still there to be read.
            let shared = handle.shared_arc();
            match handle.shutdown() {
                Ok(stats) => total.absorb(&stats),
                Err(e) => {
                    if let ServeError::EngineFailed(msg) = e {
                        st.last_error = Some(msg);
                    }
                    total.absorb(&shared.stats.snapshot());
                }
            }
        }
        for shared in &st.retired {
            total.absorb(&shared.stats.snapshot());
        }
        total.restarts = st.restarts;
        total
    }
}

/// A clonable request handle that survives engine restarts: each call
/// snapshots the current generation's [`ServeClient`], and an observed
/// engine failure triggers the supervisor's restart path.
#[derive(Clone)]
pub struct SupervisorClient {
    shared: Arc<SupShared>,
}

impl SupervisorClient {
    /// Input width the engine's network expects.
    #[must_use]
    pub fn n_in(&self) -> usize {
        self.shared.net.n_in()
    }

    /// Output width of a served result row.
    #[must_use]
    pub fn n_out(&self) -> usize {
        self.shared.net.layers().last().map_or(0, |l| l.ncols())
    }

    /// Snapshots the current generation. A detectably-dead engine is
    /// restarted *before* the request is issued, so requests arriving
    /// after a crash (but before any other observer) still hit a live
    /// engine instead of burning their one attempt on a corpse.
    fn snapshot(&self) -> Result<(u64, ServeClient), ServeError> {
        loop {
            let (generation, client) = {
                let st = lock(&self.shared.state);
                if st.exhausted || self.shared.stopping.load(Ordering::Acquire) {
                    return Err(self.terminal_error(&st));
                }
                let Some(client) = st.client.as_ref() else {
                    return Err(self.terminal_error(&st));
                };
                (st.generation, client.clone())
            };
            if client.engine_live() {
                return Ok((generation, client));
            }
            self.shared.handle_failure(generation);
        }
    }

    /// The error for a supervisor that will never serve again.
    fn terminal_error(&self, st: &SupState) -> ServeError {
        if self.shared.stopping.load(Ordering::Acquire) && !st.exhausted {
            ServeError::Shutdown
        } else {
            ServeError::EngineFailed(
                st.last_error
                    .clone()
                    .unwrap_or_else(|| "engine restart budget exhausted".to_string()),
            )
        }
    }

    /// Runs one request against the current generation; on an engine
    /// failure, triggers the restart path and propagates the error (the
    /// request was in flight on the dead engine — the supervisor cannot
    /// know whether it was computed, so it is not retried).
    fn drive<R>(
        &self,
        f: impl FnOnce(&ServeClient) -> Result<R, ServeError>,
    ) -> Result<R, ServeError> {
        let (generation, client) = self.snapshot()?;
        match f(&client) {
            Err(e @ ServeError::EngineFailed(_)) => {
                self.shared.handle_failure(generation);
                Err(e)
            }
            other => other,
        }
    }

    /// Supervised [`ServeClient::infer_into`].
    ///
    /// # Errors
    /// As [`ServeClient::infer_into`]; additionally fails fast with
    /// [`ServeError::EngineFailed`] once the restart budget is exhausted.
    pub fn infer_into(&self, row: &[f32], out: &mut Vec<f32>) -> Result<(), ServeError> {
        self.drive(|c| c.infer_into(row, out))
    }

    /// Supervised [`ServeClient::infer`].
    ///
    /// # Errors
    /// As [`Self::infer_into`].
    pub fn infer(&self, row: &[f32]) -> Result<Vec<f32>, ServeError> {
        self.drive(|c| c.infer(row))
    }

    /// Supervised [`ServeClient::try_infer_into`].
    ///
    /// # Errors
    /// As [`ServeClient::try_infer_into`], plus exhausted-budget fail-fast.
    pub fn try_infer_into(&self, row: &[f32], out: &mut Vec<f32>) -> Result<(), ServeError> {
        self.drive(|c| c.try_infer_into(row, out))
    }

    /// Supervised [`ServeClient::try_infer`].
    ///
    /// # Errors
    /// As [`Self::try_infer_into`].
    pub fn try_infer(&self, row: &[f32]) -> Result<Vec<f32>, ServeError> {
        self.drive(|c| c.try_infer(row))
    }

    /// Supervised [`ServeClient::infer_within_into`].
    ///
    /// # Errors
    /// As [`ServeClient::infer_within_into`], plus exhausted-budget
    /// fail-fast.
    pub fn infer_within_into(
        &self,
        row: &[f32],
        out: &mut Vec<f32>,
        timeout: Duration,
    ) -> Result<(), ServeError> {
        self.drive(|c| c.infer_within_into(row, out, timeout))
    }

    /// Supervised [`ServeClient::infer_within`].
    ///
    /// # Errors
    /// As [`Self::infer_within_into`].
    pub fn infer_within(&self, row: &[f32], timeout: Duration) -> Result<Vec<f32>, ServeError> {
        self.drive(|c| c.infer_within(row, timeout))
    }
}
