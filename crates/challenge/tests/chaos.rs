//! Chaos suite: deterministic fault injection against the serving stack.
//!
//! Every test here drives the engine (or the supervisor) through injected
//! failures — engine-thread panics at a scheduled batch, per-batch compute
//! delays, slot-release stalls — and asserts the failure-model invariant:
//! **every submitted request resolves to exactly one typed outcome** — a
//! result or a [`ServeError`] — never a hang, never a panic across the API
//! boundary, with `ServeStats` accounting that balances the submitted
//! count.
//!
//! Scenarios that could hang if the invariant broke run under a watchdog
//! (scenario on its own thread, bounded `recv_timeout` on the result), so
//! a regression fails fast instead of wedging the suite.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use proptest::prelude::*;

use radix_challenge::{
    fault::INJECTED_PANIC_MSG, ChallengeConfig, ChallengeNetwork, FaultInjector, FaultPlan,
    RestartPolicy, ServeConfig, ServeEngine, ServeError, ServeStats, ServeSupervisor,
};

mod support;
use support::with_watchdog;

fn small_net() -> ChallengeNetwork {
    ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 4, 2)).unwrap()
}

fn chaos_config() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        deadline_us: 2_000,
        slots: 8,
        queue: 8,
        parallel: true,
    }
}

/// An injected engine panic resolves the in-flight request to
/// `EngineFailed` (not a hang, not a client-side panic), and `shutdown`
/// reports the injected panic's message as a typed error.
#[test]
fn injected_panic_fails_in_flight_and_shutdown_reports_it() {
    with_watchdog("panic-shutdown", Duration::from_secs(30), || {
        let fault = FaultInjector::new(FaultPlan {
            panic_at_batch: Some(1),
            panic_budget: 1,
            ..FaultPlan::default()
        });
        let handle = ServeEngine::start_with_faults(small_net(), &chaos_config(), fault);
        let client = handle.client();
        let row = vec![0.5f32; client.n_in()];
        // The very first flush panics, so this request must fail typed.
        match client.infer(&row) {
            Err(ServeError::EngineFailed(_)) | Err(ServeError::Shutdown) => {}
            other => panic!("expected engine failure, got {other:?}"),
        }
        // Shutdown surfaces the original injected panic message.
        match handle.shutdown() {
            Err(ServeError::EngineFailed(msg)) => {
                assert!(
                    msg.contains(INJECTED_PANIC_MSG),
                    "shutdown error should carry the injected panic message, got {msg:?}"
                );
            }
            other => panic!("expected EngineFailed from shutdown, got {other:?}"),
        }
    });
}

/// After an injected engine death, the supervisor restarts the engine and
/// subsequent requests are served correctly; stats carry the restart.
#[test]
fn supervisor_restarts_after_injected_panic() {
    with_watchdog("restart", Duration::from_secs(30), || {
        let net = small_net();
        let row = vec![0.5f32; net.n_in()];
        let reference = {
            let mut x = radix_sparse::DenseMatrix::zeros(1, net.n_in());
            x.row_mut(0).copy_from_slice(&row);
            net.forward(&x, false)
        };
        let fault = FaultInjector::new(FaultPlan {
            panic_at_batch: Some(1),
            panic_budget: 1,
            ..FaultPlan::default()
        });
        let sup = ServeSupervisor::start_with_faults(
            net,
            &chaos_config(),
            RestartPolicy::default(),
            fault,
        );
        let client = sup.client();
        // First request rides the doomed first batch: typed failure.
        match client.infer(&row) {
            Err(ServeError::EngineFailed(_)) => {}
            other => panic!("expected EngineFailed on the doomed batch, got {other:?}"),
        }
        // The failure triggered a restart; the fresh engine serves.
        let y = client.infer(&row).expect("restarted engine must serve");
        assert_eq!(y.as_slice(), reference.row(0));
        assert!(sup
            .last_error()
            .is_some_and(|m| m.contains(INJECTED_PANIC_MSG)));
        let stats = sup.shutdown();
        assert_eq!(stats.restarts, 1, "exactly one restart");
        assert_eq!(stats.rows, 1, "one request was actually computed");
    });
}

/// A panic budget larger than the restart budget exhausts the supervisor:
/// it stops restarting and fails fast, rather than crash-looping.
#[test]
fn restart_budget_exhausts_to_fast_failure() {
    with_watchdog("exhaust", Duration::from_secs(60), || {
        let fault = FaultInjector::new(FaultPlan {
            // Panic on every batch, far more times than the restart budget.
            panic_at_batch: Some(1),
            panic_budget: 100,
            ..FaultPlan::default()
        });
        let policy = RestartPolicy {
            max_restarts: 2,
            backoff: Duration::from_millis(1),
        };
        let sup = ServeSupervisor::start_with_faults(small_net(), &chaos_config(), policy, fault);
        let client = sup.client();
        let row = vec![0.5f32; client.n_in()];
        // Keep submitting until the supervisor gives up; every outcome
        // along the way must be a typed error (every engine dies on its
        // first batch, so nothing is ever served).
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            assert!(attempts < 50, "supervisor failed to reach exhaustion");
            match client.infer(&row) {
                Err(ServeError::EngineFailed(_)) | Err(ServeError::Shutdown) => {}
                Ok(_) => panic!("nothing can be served — every batch panics"),
                Err(e) => panic!("unexpected error {e:?}"),
            }
            if sup.exhausted() {
                break;
            }
        }
        // Exhausted: requests fail fast with the last failure's message.
        match client.infer(&row) {
            Err(ServeError::EngineFailed(msg)) => {
                assert!(msg.contains(INJECTED_PANIC_MSG), "got {msg:?}");
            }
            other => panic!("expected fail-fast EngineFailed, got {other:?}"),
        }
        let stats = sup.shutdown();
        assert_eq!(stats.restarts, 2, "restart budget fully spent");
        assert_eq!(stats.rows, 0);
    });
}

/// Compute delays push queued `infer_within` requests past their
/// deadlines: they must be shed with `DeadlineExceeded` (never served
/// late into the void, never hung), while generous-deadline traffic still
/// completes.
#[test]
fn compute_delay_sheds_expired_requests() {
    with_watchdog("shed", Duration::from_secs(60), || {
        let fault = FaultInjector::new(FaultPlan {
            compute_delay_us: 20_000, // 20 ms per batch
            ..FaultPlan::default()
        });
        let config = ServeConfig {
            max_batch: 2,
            deadline_us: 1_000,
            slots: 8,
            queue: 8,
            parallel: false,
        };
        let handle = ServeEngine::start_with_faults(small_net(), &config, fault);
        let client = handle.client();
        let row = vec![0.5f32; client.n_in()];
        std::thread::scope(|s| {
            for _ in 0..4 {
                let client = client.clone();
                let row = &row;
                s.spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..6 {
                        match client.infer_within_into(row, &mut out, Duration::from_millis(2)) {
                            // A late Ok is documented and possible; sheds
                            // are typed; nothing else may surface.
                            Ok(()) | Err(ServeError::DeadlineExceeded | ServeError::Overloaded) => {
                            }
                            Err(e) => panic!("unexpected error {e:?}"),
                        }
                    }
                });
            }
        });
        // Tally via the engine's stats: its books must account for every
        // one of the 4 × 6 submissions.
        let stats = handle.shutdown().unwrap();
        assert_eq!(
            stats.rows + stats.shed_deadline + stats.shed_overload,
            24,
            "every submitted request accounted: {stats:?}"
        );
        assert!(
            stats.shed_deadline + stats.shed_overload > 0,
            "20 ms batches against 2 ms deadlines must shed something: {stats:?}"
        );
    });
}

/// The shutdown-under-chaos stress from the issue: concurrent mixed
/// traffic (blocking, non-blocking, deadline-bounded), an injected engine
/// panic mid-stream, supervisor restart, then a clean shutdown — with
/// `ServeStats` accounting balancing the client-observed outcome counts.
/// Pool width is forced by the harness (`RADIX_POOL_THREADS`, see the
/// `verify-chaos` make target which runs this suite at 2 and 4 threads).
#[test]
fn shutdown_under_chaos_accounting_balances() {
    with_watchdog("stress", Duration::from_secs(120), || {
        const CLIENTS: usize = 4;
        const PER_CLIENT: usize = 40;
        let fault = FaultInjector::new(FaultPlan {
            panic_at_batch: Some(5),
            panic_budget: 2,
            compute_delay_us: 200,
            release_stall_us: 50,
        });
        let policy = RestartPolicy {
            max_restarts: 4,
            backoff: Duration::from_millis(1),
        };
        let sup = ServeSupervisor::start_with_faults(small_net(), &chaos_config(), policy, fault);
        let ok = AtomicU64::new(0);
        let deadline = AtomicU64::new(0);
        let overload = AtomicU64::new(0);
        let failed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for c in 0..CLIENTS {
                let client = sup.client();
                let (ok, deadline, overload, failed) = (&ok, &deadline, &overload, &failed);
                s.spawn(move || {
                    let mut out = Vec::new();
                    let row = vec![0.25f32; client.n_in()];
                    for i in 0..PER_CLIENT {
                        let result = match (c + i) % 3 {
                            0 => client.infer_into(&row, &mut out),
                            1 => client.try_infer_into(&row, &mut out),
                            _ => {
                                client.infer_within_into(&row, &mut out, Duration::from_millis(50))
                            }
                        };
                        match result {
                            Ok(()) => ok.fetch_add(1, Ordering::Relaxed),
                            Err(ServeError::DeadlineExceeded) => {
                                deadline.fetch_add(1, Ordering::Relaxed)
                            }
                            Err(ServeError::Overloaded) => overload.fetch_add(1, Ordering::Relaxed),
                            Err(ServeError::EngineFailed(_)) | Err(ServeError::Shutdown) => {
                                failed.fetch_add(1, Ordering::Relaxed)
                            }
                            Err(e) => panic!("malformed-input error for a well-formed row: {e:?}"),
                        };
                    }
                });
            }
        });
        let stats = sup.shutdown();
        let (ok, deadline, overload, failed) = (
            ok.into_inner(),
            deadline.into_inner(),
            overload.into_inner(),
            failed.into_inner(),
        );
        let submitted = (CLIENTS * PER_CLIENT) as u64;
        // Exactly one outcome per submitted request.
        assert_eq!(
            ok + deadline + overload + failed,
            submitted,
            "outcome counts must partition the submitted requests"
        );
        // The engine's books agree with the clients' tallies.
        assert_eq!(stats.rows, ok, "served rows == client Ok count: {stats:?}");
        assert_eq!(
            stats.shed_deadline, deadline,
            "deadline sheds == client DeadlineExceeded count: {stats:?}"
        );
        assert_eq!(
            stats.shed_overload, overload,
            "overload sheds == client Overloaded count: {stats:?}"
        );
        assert!(
            stats.restarts >= 1,
            "the injected panics must have caused at least one restart: {stats:?}"
        );
        assert_eq!(stats.batches, stats.full_flushes + stats.deadline_flushes);
    });
}

/// Clean supervised shutdown with zero faults active behaves exactly like
/// the bare engine: all rows served, no sheds, no restarts.
#[test]
fn supervisor_clean_path_matches_bare_engine() {
    with_watchdog("clean", Duration::from_secs(30), || {
        let sup = ServeSupervisor::start_with_faults(
            small_net(),
            &chaos_config(),
            RestartPolicy::default(),
            FaultInjector::inactive(),
        );
        let client = sup.client();
        let row = vec![0.5f32; client.n_in()];
        for _ in 0..10 {
            client.infer(&row).unwrap();
        }
        let stats = sup.shutdown();
        assert_eq!(stats.rows, 10);
        assert_eq!(stats.restarts, 0);
        assert_eq!(stats.shed_deadline + stats.shed_overload, 0);
    });
}

/// Start → traffic → panic → restart → clean shutdown, cycled repeatedly
/// in one process: no generation leaks state into the next, and the pool
/// absorbs every injected death.
#[test]
fn repeated_chaos_cycles_stay_clean() {
    with_watchdog("cycles", Duration::from_secs(120), || {
        for cycle in 0..3 {
            let fault = FaultInjector::new(FaultPlan {
                panic_at_batch: Some(2),
                panic_budget: 1,
                ..FaultPlan::default()
            });
            let sup = ServeSupervisor::start_with_faults(
                small_net(),
                &chaos_config(),
                RestartPolicy::default(),
                fault,
            );
            let client = sup.client();
            let row = vec![0.5f32; client.n_in()];
            let mut served = 0u64;
            for _ in 0..8 {
                match client.infer(&row) {
                    Ok(_) => served += 1,
                    Err(ServeError::EngineFailed(_)) => {}
                    Err(e) => panic!("cycle {cycle}: unexpected {e:?}"),
                }
            }
            let stats = sup.shutdown();
            assert_eq!(stats.rows, served, "cycle {cycle}: books balance");
            assert!(stats.restarts <= 1, "cycle {cycle}: one panic, one restart");
        }
    });
}

/// Accounting helper shared by the proptest: run a full chaos scenario
/// and return (client tallies, final stats).
fn run_chaos_schedule(
    plan: FaultPlan,
    clients: usize,
    per_client: usize,
    timeout_ms: u64,
) -> ([u64; 4], ServeStats) {
    let policy = RestartPolicy {
        max_restarts: 3,
        backoff: Duration::from_millis(1),
    };
    let sup = ServeSupervisor::start_with_faults(
        small_net(),
        &chaos_config(),
        policy,
        FaultInjector::new(plan),
    );
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let over = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for c in 0..clients {
            let client = sup.client();
            let (ok, shed, over, failed) = (&ok, &shed, &over, &failed);
            s.spawn(move || {
                let mut out = Vec::new();
                let row = vec![0.25f32; client.n_in()];
                for i in 0..per_client {
                    let result = match (c + i) % 3 {
                        0 => client.infer_into(&row, &mut out),
                        1 => client.try_infer_into(&row, &mut out),
                        _ => client.infer_within_into(
                            &row,
                            &mut out,
                            Duration::from_millis(timeout_ms),
                        ),
                    };
                    match result {
                        Ok(()) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(ServeError::DeadlineExceeded) => shed.fetch_add(1, Ordering::Relaxed),
                        Err(ServeError::Overloaded) => over.fetch_add(1, Ordering::Relaxed),
                        Err(ServeError::EngineFailed(_)) | Err(ServeError::Shutdown) => {
                            failed.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("unexpected validation error {e:?}"),
                    };
                }
            });
        }
    });
    let stats = sup.shutdown();
    (
        [
            ok.into_inner(),
            shed.into_inner(),
            over.into_inner(),
            failed.into_inner(),
        ],
        stats,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The failure-model invariant under *random* fault schedules: for any
    /// combination of scheduled engine panics, compute delays, and release
    /// stalls, every submitted request resolves to exactly one typed
    /// outcome, and the engine's accounting balances the clients' tallies.
    #[test]
    fn random_fault_schedules_preserve_exactly_one_outcome(
        // 0 disables the corresponding fault, so the sweep covers every
        // subset of {panic, delay, stall} including the all-off baseline.
        panic_at_raw in 0u64..8,
        panic_budget in 1u32..3,
        compute_delay_raw in 0u64..3_000,
        release_stall_raw in 0u64..300,
        timeout_ms in 1u64..40,
    ) {
        let plan = FaultPlan {
            panic_at_batch: (panic_at_raw > 0).then_some(panic_at_raw),
            panic_budget,
            compute_delay_us: if compute_delay_raw >= 100 { compute_delay_raw } else { 0 },
            release_stall_us: if release_stall_raw >= 10 { release_stall_raw } else { 0 },
        };
        let (tx, rx) = mpsc::channel();
        std::thread::Builder::new()
            .name("chaos-prop".into())
            .spawn(move || {
                let _ = tx.send(run_chaos_schedule(plan, 3, 12, timeout_ms));
            })
            .expect("spawn chaos proptest scenario");
        let (tallies, stats) = rx
            .recv_timeout(Duration::from_secs(120))
            .unwrap_or_else(|_| panic!("schedule {plan:?} hung — a request never resolved"));
        let [ok, shed, over, failed] = tallies;
        prop_assert_eq!(
            ok + shed + over + failed,
            36,
            "outcomes must partition submissions under {:?} (stats {:?})", plan, stats
        );
        prop_assert_eq!(stats.rows, ok, "rows == Ok under {:?}", plan);
        prop_assert_eq!(stats.shed_deadline, shed, "sheds == DeadlineExceeded under {:?}", plan);
        prop_assert_eq!(stats.shed_overload, over, "overloads match under {:?}", plan);
        prop_assert_eq!(stats.batches, stats.full_flushes + stats.deadline_flushes);
    }
}
