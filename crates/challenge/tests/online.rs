//! Train-while-serve chaos suite: one pool, two workloads, injected
//! failures in both.
//!
//! The [`OnlineSession`] claims that serving traffic and checkpointed
//! fine-tuning can share the single process-wide worker pool without
//! weakening either failure model. These tests pin both directions at
//! once, under live concurrency:
//!
//! * **serving**: every request submitted while training grinds on the
//!   same pool resolves to exactly one typed outcome — a result or a
//!   [`ServeError`] — and the engine's books balance (`rows` = Ok
//!   responses, sheds = typed shed errors), even with injected compute
//!   delays slowing every flush,
//! * **training**: an injected mid-run training crash restarts, resumes
//!   from the last committed checkpoint, and finishes **bitwise
//!   identical** to an offline, fault-free reference run — traffic
//!   hammering the pool the whole time changes nothing,
//! * **publishing**: committed checkpoint generations reach the live
//!   engine, and after the run the served outputs are exactly the
//!   trained weights' outputs, bit for bit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use radix_challenge::{
    ChallengeNetwork, FaultInjector, FaultPlan, OnlineConfig, OnlineSession, ServeClient,
    ServeConfig, ServeError,
};
use radix_data::sparse_binary_batch;
use radix_net::{MixedRadixSystem, RadixNetSpec};
use radix_nn::{
    train_regressor, Activation, Checkpointer, Init, Layer, Loss, Network, Optimizer, TrainConfig,
    TrainFaultInjector, TrainFaultPlan, TrainRestartPolicy,
};
use radix_sparse::{CsrMatrix, DenseMatrix};

mod support;
use support::with_watchdog;

const WATCHDOG: Duration = Duration::from_secs(120);

/// Per-test scratch directory under the OS temp dir, cleared up front.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("radix-online-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small all-sparse RadiX-Net regression network (8 → 16 → 16 → 8).
fn radix_network(seed: u64) -> Network {
    let sys = MixedRadixSystem::new([2, 2, 2]).unwrap();
    let spec = RadixNetSpec::new(vec![sys], vec![1, 2, 2, 1]).unwrap();
    Network::from_fnnt(
        spec.build().fnnt(),
        Activation::Relu,
        Init::He,
        Loss::Mse,
        seed,
    )
}

/// Deterministic pseudo-data (no RNG): 32 samples of a fixed map on the
/// network's 8-wide input/output.
fn toy_regression() -> (DenseMatrix<f32>, DenseMatrix<f32>) {
    let n = 32;
    let mut x = DenseMatrix::zeros(n, 8);
    let mut y = DenseMatrix::zeros(n, 8);
    for i in 0..n {
        for j in 0..8 {
            let v = ((i * 7 + j * 3) % 13) as f32 / 13.0 - 0.5;
            x.set(i, j, v);
        }
        for j in 0..8 {
            y.set(i, j, 0.5 * x.get(i, j) - 0.25 * x.get(i, (j + 1) % 8));
        }
    }
    (x, y)
}

/// A configuration that exercises the interesting paths: pool-parallel
/// training chunks (shares the worker pool with serve flushes), the
/// fused decay+clip reduction, and a publish every 2 batches.
fn online_config() -> OnlineConfig {
    OnlineConfig {
        serve: ServeConfig {
            max_batch: 4,
            deadline_us: 5_000,
            slots: 8,
            queue: 8,
            parallel: true,
        },
        bias: 0.2,
        ymax: 4.0,
        train: TrainConfig {
            epochs: 4,
            batch_size: 8, // 32 samples → 4 batches/epoch, 16 global batches
            seed: 5,
            parallel_chunks: 4,
            weight_decay: 1e-3,
            grad_clip: Some(0.5),
            ..TrainConfig::default()
        },
        publish_every: 2,
        keep: 3,
        restarts: TrainRestartPolicy {
            max_restarts: 3,
            backoff: Duration::from_millis(1),
        },
        publish_poll: Duration::from_millis(1),
    }
}

/// The sparse weight matrices of an all-sparse network.
fn sparse_csrs(net: &Network) -> Vec<CsrMatrix<f32>> {
    net.layers()
        .iter()
        .map(|l| match l {
            Layer::Sparse(sl) => sl.weights().clone(),
            Layer::Dense(_) => panic!("radix_network builds sparse layers only"),
        })
        .collect()
}

/// Typed-outcome tally from one traffic thread: every call accounted,
/// by kind.
#[derive(Default)]
struct Tally {
    ok: u64,
    shed: u64,
    rejected_width: u64,
    other_err: u64,
}

/// Hammers the client until `stop` — but never returns before at least 8
/// real outcomes, so a training run that finishes before the thread even
/// warms up still leaves evidence that traffic was served. Valid rows
/// are counted Ok / typed shed; a deliberately wrong-width row every
/// 16th call must be rejected typed at admission, never submitted.
fn traffic_loop(client: &ServeClient, rows: &DenseMatrix<f32>, stop: &AtomicBool) -> Tally {
    let mut tally = Tally::default();
    let mut i = 0usize;
    let bad = vec![0.25f32; 3];
    while !stop.load(Ordering::Acquire) || tally.ok + tally.shed < 8 {
        if i % 16 == 15 {
            match client.infer(&bad) {
                Err(ServeError::WidthMismatch { .. }) => tally.rejected_width += 1,
                other => panic!("wrong-width row must fail typed at admission, got {other:?}"),
            }
        } else {
            match client.infer(rows.row(i % rows.nrows())) {
                Ok(out) => {
                    assert_eq!(out.len(), client.n_out(), "torn response");
                    tally.ok += 1;
                }
                Err(ServeError::DeadlineExceeded) | Err(ServeError::Overloaded) => tally.shed += 1,
                Err(e) => panic!("unexpected serve outcome under live training: {e:?}"),
            }
        }
        i += 1;
    }
    tally
}

/// Baseline live run: no faults. Training shares the pool with real
/// traffic; the run must publish, the history must equal an offline
/// fault-free reference bitwise, the books must balance, and the served
/// outputs must land on the trained weights exactly.
#[test]
fn fine_tune_publishes_and_books_balance_under_live_traffic() {
    with_watchdog("online-baseline", WATCHDOG, || {
        let config = online_config();
        let (x, y) = toy_regression();

        // Offline fault-free reference: same net, optimizer, config.
        let mut ref_net = radix_network(11);
        let mut ref_opt = Optimizer::sgd(0.05);
        let ref_history = train_regressor(&mut ref_net, &x, &y, &mut ref_opt, &config.train);

        let mut net = radix_network(11);
        let mut opt = Optimizer::sgd(0.05);
        let dir = scratch_dir("baseline");
        let mut session =
            OnlineSession::start(&net, &config, &dir).expect("sparse net must start serving");
        let client = session.client();
        let rows = sparse_binary_batch(6, client.n_in(), 0.5, 7);

        let stop = AtomicBool::new(false);
        let (report, tally) = std::thread::scope(|s| {
            let traffic = s.spawn(|| traffic_loop(&client, &rows, &stop));
            let report = session
                .fine_tune_regressor(&mut net, &x, &y, &mut opt, &config)
                .expect("fault-free fine-tune succeeds");
            stop.store(true, Ordering::Release);
            (
                report,
                traffic.join().expect("traffic thread must not panic"),
            )
        });

        assert_eq!(report.restarts, 0);
        assert!(
            report.publish.published >= 1,
            "at least the final checkpoint must publish, got {:?}",
            report.publish
        );
        assert_eq!(
            report.publish.errors, 0,
            "no reload may fail in a fault-free run"
        );
        // Traffic on the shared pool cannot perturb training: bitwise
        // equal history and weights vs. the offline reference.
        assert_eq!(
            report.history, ref_history,
            "live traffic perturbed training"
        );
        for (a, b) in sparse_csrs(&net).iter().zip(sparse_csrs(&ref_net).iter()) {
            assert_eq!(a.data(), b.data(), "live traffic perturbed trained weights");
        }

        // Malformed traffic fails typed at admission even now, with a
        // staged reload possibly pending.
        match client.infer(&[0.25f32; 3]) {
            Err(ServeError::WidthMismatch { .. }) => {}
            other => panic!("wrong-width row must fail typed, got {other:?}"),
        }

        // The engine converges onto the trained weights (the final
        // publish is staged; the engine applies it at a batch boundary).
        let reference = ChallengeNetwork::from_layers(sparse_csrs(&net), config.bias, config.ymax);
        let expected = reference.forward(&rows, false);
        let mut swapped = false;
        for _ in 0..5_000 {
            match client.infer(rows.row(0)) {
                Ok(out) if out == expected.row(0) => {
                    swapped = true;
                    break;
                }
                Ok(_) | Err(ServeError::DeadlineExceeded) | Err(ServeError::Overloaded) => {}
                Err(e) => panic!("unexpected outcome while awaiting swap: {e:?}"),
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            swapped,
            "engine never picked up the final published weights"
        );
        for i in 0..rows.nrows() {
            assert_eq!(
                client.infer(rows.row(i)).unwrap(),
                expected.row(i),
                "served row {i} is not the trained weights' output"
            );
        }

        drop(client);
        let stats = session.finish().expect("clean shutdown");
        // Books balance: what traffic saw is what the engine counted.
        // (The swap-wait loop above also served rows, so `rows` is a
        // lower bound by the tally and an exact match on sheds' side
        // being typed.)
        assert!(
            stats.rows >= tally.ok,
            "engine answered {} rows but traffic got {} Oks",
            stats.rows,
            tally.ok
        );
        assert!(
            stats.shed_deadline + stats.shed_overload >= tally.shed,
            "typed sheds under-counted"
        );
        assert!(tally.ok > 0, "traffic must actually have been served");
        let _ = tally.rejected_width + tally.other_err; // tallied for completeness
    });
}

/// The chaos run: an injected training panic mid-run *and* injected
/// serve compute delays, with traffic live throughout. Training must
/// restart, resume from the last committed checkpoint, and finish
/// bitwise identical to the offline fault-free reference; every request
/// still resolves typed.
#[test]
fn training_resumes_bitwise_under_faults_while_traffic_continues() {
    with_watchdog("online-chaos", WATCHDOG, || {
        let config = online_config();
        let (x, y) = toy_regression();

        let mut ref_net = radix_network(23);
        let mut ref_opt = Optimizer::sgd(0.05);
        let ref_history = train_regressor(&mut ref_net, &x, &y, &mut ref_opt, &config.train);

        let mut net = radix_network(23);
        let mut opt = Optimizer::sgd(0.05);
        let dir = scratch_dir("chaos");

        // Training crashes at global batch 6 (mid-epoch 2, past committed
        // generations); the engine pays 200 µs extra per flush.
        let train_faults = TrainFaultInjector::new(TrainFaultPlan {
            panic_at_batch: Some(6),
            panic_budget: 1,
            ..TrainFaultPlan::default()
        });
        let serve_faults = FaultInjector::new(FaultPlan {
            compute_delay_us: 200,
            ..FaultPlan::default()
        });
        let ckpt = Checkpointer::new(&dir)
            .expect("checkpoint dir")
            .with_every(config.publish_every)
            .with_keep(config.keep)
            .with_faults(train_faults);
        let mut session = OnlineSession::start_faulted(&net, &config, ckpt, serve_faults)
            .expect("sparse net must start serving");
        let client = session.client();
        let rows = sparse_binary_batch(6, client.n_in(), 0.5, 9);

        let stop = AtomicBool::new(false);
        let served_during_crash = AtomicU64::new(0);
        let (report, tally) = std::thread::scope(|s| {
            let traffic = s.spawn(|| {
                let t = traffic_loop(&client, &rows, &stop);
                served_during_crash.store(t.ok, Ordering::Relaxed);
                t
            });
            let report = session
                .fine_tune_regressor(&mut net, &x, &y, &mut opt, &config)
                .expect("supervisor absorbs the injected crash");
            stop.store(true, Ordering::Release);
            (
                report,
                traffic.join().expect("traffic thread must not panic"),
            )
        });

        assert_eq!(report.restarts, 1, "exactly the injected crash restarts");
        // The recovery contract survives the shared pool: bitwise equal
        // to the offline fault-free run.
        assert_eq!(
            report.history, ref_history,
            "crash-resumed history diverged from the fault-free reference"
        );
        for (i, (a, b)) in sparse_csrs(&net)
            .iter()
            .zip(sparse_csrs(&ref_net).iter())
            .enumerate()
        {
            assert_eq!(
                a.data(),
                b.data(),
                "layer {i} weights diverged after crash-resume under traffic"
            );
        }
        assert!(
            report.publish.published >= 1,
            "publishing must survive the crash, got {:?}",
            report.publish
        );
        assert!(
            tally.ok > 0,
            "traffic must keep being served across the training crash"
        );

        drop(client);
        let stats = session.finish().expect("clean shutdown after chaos");
        assert!(stats.rows >= tally.ok);
    });
}
