//! Property tests for the Graph-Challenge harness: schedule equivalence,
//! conservation/monotonicity of the kernel, and configuration arithmetic
//! on random parameters.

use proptest::prelude::*;

use radix_challenge::{forward_pipelined, run_stream, ChallengeConfig, ChallengeNetwork};
use radix_data::sparse_binary_batch;
use radix_sparse::DenseMatrix;

fn small_config() -> impl Strategy<Value = ChallengeConfig> {
    (2usize..5, 2usize..4, 1usize..4)
        .prop_filter("bounded size", |(r, k, s)| {
            r.pow(*k as u32) <= 256 && k * s <= 12
        })
        .prop_map(|(r, k, s)| ChallengeConfig::preset(r, k, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_three_schedules_agree(config in small_config(), batch in 1usize..12, seed in any::<u64>()) {
        let net = ChallengeNetwork::from_config(&config).unwrap();
        let x = sparse_binary_batch(batch, net.n_in(), 0.5, seed);
        let serial = net.forward(&x, false);
        prop_assert_eq!(&net.forward(&x, true), &serial);
        prop_assert_eq!(&forward_pipelined(&net, &x, (batch / 2).max(1)), &serial);
    }

    #[test]
    fn outputs_always_within_clamp(config in small_config(), seed in any::<u64>()) {
        let net = ChallengeNetwork::from_config(&config).unwrap();
        let x = sparse_binary_batch(4, net.n_in(), 0.9, seed);
        let y = net.forward(&x, false);
        for &v in y.as_slice() {
            prop_assert!((0.0..=config.ymax).contains(&v));
        }
    }

    #[test]
    fn config_arithmetic_consistent(config in small_config()) {
        let net = ChallengeNetwork::from_config(&config).unwrap();
        prop_assert_eq!(net.n_in(), config.neurons());
        prop_assert_eq!(net.layers().len(), config.num_layers());
        prop_assert_eq!(net.total_nnz(), config.total_edges());
    }

    #[test]
    fn stream_stats_row_accounting(config in small_config(), batches in 1usize..4, seed in any::<u64>()) {
        let net = ChallengeNetwork::from_config(&config).unwrap();
        let inputs: Vec<DenseMatrix<f32>> = (0..batches)
            .map(|b| sparse_binary_batch(3, net.n_in(), 0.5, seed.wrapping_add(b as u64)))
            .collect();
        let result = run_stream(&net, &inputs);
        prop_assert_eq!(result.stats.rows, 3 * batches);
        prop_assert_eq!(result.categories.len(), 3 * batches);
        // Categories are sorted and in range.
        for cats in &result.categories {
            prop_assert!(cats.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(cats.iter().all(|&j| j < config.neurons()));
        }
    }

    #[test]
    fn zero_input_always_dies(config in small_config()) {
        // Negative bias + ReLU: zero in, zero out, at any depth.
        let net = ChallengeNetwork::from_config(&config).unwrap();
        let x = DenseMatrix::zeros(2, net.n_in());
        prop_assert!(net.forward(&x, false).all_equal_to(0.0));
    }
}
