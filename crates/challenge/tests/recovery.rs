//! End-to-end crash-and-recovery suite spanning training and serving:
//! a supervised training run killed by injected faults (panic, torn
//! checkpoint write, bit-flipped generation) must recover from the last
//! good checkpoint and finish **bitwise identical** to an uninterrupted
//! run, and a serving engine must hot-reload a training checkpoint
//! without dropping requests or ever exposing torn weights.
//!
//! Every scenario runs under the shared watchdog (`tests/support`): the
//! failure mode this suite exists to rule out is a recovery path that
//! wedges, and a wedged test must fail, not hang the harness.

mod support;

use std::time::Duration;

use radix_challenge::{ChallengeNetwork, ReloadError, ServeConfig, ServeEngine};
use radix_data::sparse_binary_batch;
use radix_net::{MixedRadixSystem, RadixNetSpec};
use radix_nn::{
    checkpoint, train_regressor, train_regressor_checkpointed, Activation, CheckpointError,
    Checkpointer, Init, Layer, Loss, Network, Optimizer, TrainConfig, TrainFaultInjector,
    TrainFaultPlan, TrainProgress, TrainRestartPolicy, TrainSupervisor,
};
use radix_sparse::{CsrMatrix, DenseMatrix};
use support::with_watchdog;

const WATCHDOG: Duration = Duration::from_secs(120);

/// Per-test scratch directory under the OS temp dir, cleared up front so
/// a previous crashed run cannot leak generations into this one.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("radix-recovery-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic pseudo-data (no RNG): 32 samples of a fixed linear map.
fn toy_regression() -> (DenseMatrix<f32>, DenseMatrix<f32>) {
    let n = 32;
    let mut x = DenseMatrix::zeros(n, 4);
    let mut y = DenseMatrix::zeros(n, 2);
    for i in 0..n {
        for j in 0..4 {
            let v = ((i * 7 + j * 3) % 13) as f32 / 13.0 - 0.5;
            x.set(i, j, v);
        }
        y.set(i, 0, x.get(i, 0) - 0.5 * x.get(i, 1));
        y.set(i, 1, 0.25 * x.get(i, 2) + x.get(i, 3));
    }
    (x, y)
}

fn train_config() -> TrainConfig {
    TrainConfig {
        epochs: 4,
        batch_size: 8, // 32 samples → 4 batches/epoch, 16 global batches
        seed: 5,
        ..TrainConfig::default()
    }
}

/// Runs the reference (uninterrupted, checkpoint-free) training and the
/// supervised run under `plan` side by side, and asserts the recovered
/// result is bitwise identical to the reference.
fn assert_recovers_bitwise(name: &str, plan: TrainFaultPlan, expected_restarts: u32) {
    let (x, y) = toy_regression();
    let config = train_config();

    let mut ref_net = Network::dense(&[4, 6, 2], Activation::Tanh, Init::Xavier, Loss::Mse, 3);
    let mut ref_opt = Optimizer::momentum(0.05, 0.9);
    let pristine_net = ref_net.clone();
    let pristine_opt = ref_opt.clone();
    let ref_history = train_regressor(&mut ref_net, &x, &y, &mut ref_opt, &config);

    let dir = scratch_dir(name);
    let mut ckpt = Checkpointer::new(&dir)
        .expect("create checkpoint dir")
        .with_every(2)
        .with_keep(2)
        .with_faults(TrainFaultInjector::new(plan));

    let mut net = pristine_net;
    let mut opt = pristine_opt;
    let report = TrainSupervisor::new(TrainRestartPolicy::default())
        .run(&mut net, &mut opt, &mut ckpt, |net, opt, ckpt| {
            train_regressor_checkpointed(net, &x, &y, opt, &config, ckpt)
        })
        .expect("supervised run must recover within the restart budget");

    assert_eq!(
        report.restarts, expected_restarts,
        "every injected fault costs exactly one restart"
    );
    assert_eq!(
        report.history, ref_history,
        "recovered history must be bitwise identical to the uninterrupted run"
    );
    assert_eq!(
        net, ref_net,
        "recovered network must be bitwise identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn checkpoint write (the simulated crash mid-`write`, before the
/// atomic rename) kills the training "process"; the supervisor restarts
/// it, resume skips the stale `.tmp`, recovers from the previous good
/// generation, and finishes bitwise identical.
#[test]
fn supervised_training_rides_through_a_torn_checkpoint_write() {
    with_watchdog("torn-write", WATCHDOG, || {
        assert_recovers_bitwise(
            "torn-write",
            TrainFaultPlan {
                torn_write_gen: Some(2),
                ..TrainFaultPlan::default()
            },
            1,
        );
    });
}

/// A bit flip corrupts a fully-committed generation, then a later panic
/// kills training: resume must *skip* the newest (corrupt) generation,
/// fall back to the previous good one, and still finish bitwise
/// identical — the per-section CRC turns silent corruption into a clean
/// fallback.
#[test]
fn resume_falls_back_past_a_bit_flipped_generation() {
    with_watchdog("bit-flip", WATCHDOG, || {
        assert_recovers_bitwise(
            "bit-flip",
            TrainFaultPlan {
                // Gen 2 (the epoch-0 end save) commits with one bit
                // flipped; the panic fires two batches later, so recovery
                // has to reject gen 2 and resume from gen 1.
                bit_flip_gen: Some(2),
                panic_at_batch: Some(6),
                panic_budget: 1,
                ..TrainFaultPlan::default()
            },
            1,
        );
    });
}

/// An all-sparse network on the Figure-1 RadiX-Net topology
/// (8 → 16 → 16 → 8), initialized from `seed`.
fn radix_network(seed: u64) -> Network {
    let sys = MixedRadixSystem::new([2, 2, 2]).unwrap();
    let spec = RadixNetSpec::new(vec![sys], vec![1, 2, 2, 1]).unwrap();
    Network::from_fnnt(
        spec.build().fnnt(),
        Activation::Relu,
        Init::He,
        Loss::Mse,
        seed,
    )
}

/// The sparse weight matrices of an all-sparse network.
fn sparse_csrs(net: &Network) -> Vec<CsrMatrix<f32>> {
    net.layers()
        .iter()
        .map(|l| match l {
            Layer::Sparse(sl) => sl.weights().clone(),
            Layer::Dense(_) => panic!("radix_network builds sparse layers only"),
        })
        .collect()
}

const SERVE_BIAS: f32 = 0.2;
const SERVE_YMAX: f32 = 4.0;

fn serve_config() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        deadline_us: 200,
        slots: 8,
        queue: 8,
        parallel: false,
    }
}

/// Hot reload end to end: serve on weights A, save a checkpoint of
/// weights B (same topology, different values), `reload`, and watch the
/// served outputs switch from the A-reference to the B-reference — with
/// every intermediate response exactly one or the other, never torn.
#[test]
fn hot_reload_swaps_serving_weights_without_dropping_requests() {
    with_watchdog("hot-reload", WATCHDOG, || {
        let net_a = radix_network(11);
        let net_b = radix_network(77);
        let serve_net = ChallengeNetwork::from_layers(sparse_csrs(&net_a), SERVE_BIAS, SERVE_YMAX);
        let ref_a = ChallengeNetwork::from_layers(sparse_csrs(&net_a), SERVE_BIAS, SERVE_YMAX);
        let ref_b = ChallengeNetwork::from_layers(sparse_csrs(&net_b), SERVE_BIAS, SERVE_YMAX);

        let rows = sparse_binary_batch(4, serve_net.n_in(), 0.5, 7);
        let out_a = ref_a.forward(&rows, false);
        let out_b = ref_b.forward(&rows, false);
        assert_ne!(
            out_a.row(0),
            out_b.row(0),
            "references must be distinguishable for the swap to be observable"
        );

        let dir = scratch_dir("hot-reload");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reload.radix");
        checkpoint::save(
            &path,
            &net_b,
            &Optimizer::adam(0.01),
            &TrainProgress::default(),
        )
        .unwrap();

        let handle = ServeEngine::start(serve_net, &serve_config());
        let client = handle.client();

        // Pre-reload traffic serves the A weights exactly.
        for i in 0..rows.nrows() {
            assert_eq!(client.infer(rows.row(i)).unwrap(), out_a.row(i));
        }

        handle
            .reload(&path)
            .expect("compatible checkpoint must stage");

        // The engine applies the staged swap at its next batch boundary
        // (bounded by the idle re-check cadence). Until then each response
        // is the old weights, bit for bit; afterwards the new ones.
        let mut swapped = false;
        for _ in 0..5_000 {
            let out = client.infer(rows.row(0)).unwrap();
            if out == out_b.row(0) {
                swapped = true;
                break;
            }
            assert_eq!(
                out,
                out_a.row(0),
                "a response must be old weights or new weights, never torn"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(swapped, "engine never picked up the staged reload");

        // Steady state on the new weights: every row matches the
        // B-reference exactly.
        for i in 0..rows.nrows() {
            assert_eq!(client.infer(rows.row(i)).unwrap(), out_b.row(i));
        }

        drop(client);
        handle
            .shutdown()
            .expect("engine shuts down cleanly after reload");
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Every way a reload can be refused — missing file, garbage bytes,
/// dense layers, wrong shapes, wrong layer count — is a typed error and
/// a no-op: the engine keeps serving its current weights exactly.
#[test]
fn reload_rejects_incompatible_checkpoints_and_keeps_serving() {
    with_watchdog("reload-reject", WATCHDOG, || {
        let net_a = radix_network(11);
        let serve_net = ChallengeNetwork::from_layers(sparse_csrs(&net_a), SERVE_BIAS, SERVE_YMAX);
        let ref_a = ChallengeNetwork::from_layers(sparse_csrs(&net_a), SERVE_BIAS, SERVE_YMAX);
        let rows = sparse_binary_batch(4, serve_net.n_in(), 0.5, 7);
        let out_a = ref_a.forward(&rows, false);

        let dir = scratch_dir("reload-reject");
        std::fs::create_dir_all(&dir).unwrap();
        let opt = Optimizer::sgd(0.1);
        let progress = TrainProgress::default();

        let handle = ServeEngine::start(serve_net, &serve_config());
        let client = handle.client();

        // Missing file.
        let missing = dir.join("does-not-exist.radix");
        assert!(matches!(
            handle.reload(&missing),
            Err(ReloadError::Checkpoint(CheckpointError::Io(_)))
        ));

        // Garbage bytes (wrong magic).
        let garbage = dir.join("garbage.radix");
        std::fs::write(&garbage, [0x5A; 64]).unwrap();
        assert!(matches!(
            handle.reload(&garbage),
            Err(ReloadError::Checkpoint(CheckpointError::BadMagic))
        ));

        // A dense network of the right sizes: the engine serves prepared
        // sparse layers only.
        let dense = dir.join("dense.radix");
        let dense_net = Network::dense(&[8, 16, 16, 8], Activation::Relu, Init::He, Loss::Mse, 1);
        checkpoint::save(&dense, &dense_net, &opt, &progress).unwrap();
        assert!(matches!(
            handle.reload(&dense),
            Err(ReloadError::NotSparse { layer: 0 })
        ));

        // Same layer count, different shapes (widths all 1 → 8×8 layers).
        let thin = dir.join("thin.radix");
        let sys = MixedRadixSystem::new([2, 2, 2]).unwrap();
        let thin_spec = RadixNetSpec::new(vec![sys], vec![1, 1, 1, 1]).unwrap();
        let thin_net = Network::from_fnnt(
            thin_spec.build().fnnt(),
            Activation::Relu,
            Init::He,
            Loss::Mse,
            1,
        );
        checkpoint::save(&thin, &thin_net, &opt, &progress).unwrap();
        assert!(matches!(
            handle.reload(&thin),
            Err(ReloadError::ShapeMismatch {
                layer: 0,
                expected: (8, 16),
                got: (8, 8),
            })
        ));

        // Wrong layer count entirely.
        let short = dir.join("short.radix");
        let short_sys = MixedRadixSystem::new([2, 2]).unwrap();
        let short_spec = RadixNetSpec::new(vec![short_sys], vec![1, 2, 1]).unwrap();
        let short_net = Network::from_fnnt(
            short_spec.build().fnnt(),
            Activation::Relu,
            Init::He,
            Loss::Mse,
            1,
        );
        checkpoint::save(&short, &short_net, &opt, &progress).unwrap();
        assert!(matches!(
            handle.reload(&short),
            Err(ReloadError::LayerCountMismatch {
                expected: 3,
                got: 2
            })
        ));

        // Every rejection was a no-op: the engine still serves the
        // original weights, bit for bit.
        for i in 0..rows.nrows() {
            assert_eq!(client.infer(rows.row(i)).unwrap(), out_a.row(i));
        }

        drop(client);
        handle
            .shutdown()
            .expect("engine unaffected by rejected reloads");
        let _ = std::fs::remove_dir_all(&dir);
    });
}
