//! Integration and property tests for the async serving engine: many
//! concurrent clients against one engine, bitwise identity with the
//! serial schedule, micro-batcher policy invariants, and shutdown
//! semantics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use radix_challenge::{
    ChallengeConfig, ChallengeNetwork, InferWorkspace, MicroBatcher, ServeConfig, ServeEngine,
    ServeError,
};
use radix_data::sparse_binary_batch;
use radix_sparse::DenseMatrix;

fn small_net() -> ChallengeNetwork {
    ChallengeNetwork::from_config(&ChallengeConfig::preset(3, 3, 2)).unwrap()
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        deadline_us: 5_000,
        slots: 16,
        queue: 16,
        parallel: true,
    }
}

/// N concurrent client threads, each issuing a stream of requests; every
/// response must be bitwise-identical to the serial reference for *that*
/// request's row — results must never be cross-wired between clients, no
/// matter how the engine interleaves them into blocks.
#[test]
fn concurrent_clients_get_their_own_answers() {
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 20;
    let net = small_net();
    let x = sparse_binary_batch(CLIENTS * PER_CLIENT, net.n_in(), 0.4, 42);
    let reference = net.forward(&x, false);

    let handle = ServeEngine::start(net, &serve_config());
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let client = handle.client();
            let x = &x;
            let reference = &reference;
            s.spawn(move || {
                let mut out = Vec::new();
                for j in 0..PER_CLIENT {
                    let i = c * PER_CLIENT + j;
                    client.infer_into(x.row(i), &mut out).unwrap();
                    assert_eq!(out.as_slice(), reference.row(i), "client {c} request {j}");
                }
            });
        }
    });
    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.rows, (CLIENTS * PER_CLIENT) as u64);
    assert!(stats.max_rows <= 8, "block exceeded max_batch");
    assert_eq!(stats.batches, stats.full_flushes + stats.deadline_flushes);
}

/// In-order demux within one client: a single submitter's responses come
/// back in submission order by construction (infer is synchronous), and
/// each equals the serial run of the same rows in the same order.
#[test]
fn single_client_in_order_bitwise_vs_serial() {
    let net = small_net();
    let x = sparse_binary_batch(24, net.n_in(), 0.6, 7);
    let mut ws = InferWorkspace::for_network(&net, x.nrows());
    let serial = net.forward_with(&x, false, &mut ws).clone();

    let handle = ServeEngine::start(net, &serve_config());
    let client = handle.client();
    let mut out = Vec::new();
    for i in 0..x.nrows() {
        client.infer_into(x.row(i), &mut out).unwrap();
        assert_eq!(out.as_slice(), serial.row(i), "row {i}");
    }
    let _ = handle.shutdown().unwrap();
}

/// Backpressure soak: more concurrent clients than slots, tiny queue. No
/// deadlock, no lost or cross-wired responses.
#[test]
fn oversubscribed_clients_block_and_complete() {
    const CLIENTS: usize = 12;
    let net = small_net();
    let x = sparse_binary_batch(CLIENTS, net.n_in(), 0.5, 99);
    let reference = net.forward(&x, false);
    let config = ServeConfig {
        max_batch: 4,
        deadline_us: 2_000,
        slots: 3, // fewer slots than clients: some must park on the free list
        queue: 2,
        parallel: false,
    };
    let handle = ServeEngine::start(net, &config);
    let served = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let client = handle.client();
            let x = &x;
            let reference = &reference;
            let served = Arc::clone(&served);
            s.spawn(move || {
                let y = client.infer(x.row(c)).unwrap();
                assert_eq!(y.as_slice(), reference.row(c), "client {c}");
                served.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(served.load(Ordering::Relaxed), CLIENTS);
    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.rows, CLIENTS as u64);
    assert!(stats.max_rows <= 4);
}

/// Shutdown drains in-flight work, then rejects; clients racing shutdown
/// either complete correctly or get a clean `Shutdown` error — never a
/// hang, never a wrong answer.
#[test]
fn shutdown_during_traffic_is_clean() {
    let net = small_net();
    let x = sparse_binary_batch(8, net.n_in(), 0.5, 5);
    let reference = net.forward(&x, false);
    let handle = ServeEngine::start(net, &serve_config());
    let racing = handle.client();
    let x2 = x.clone();
    let reference2 = reference.clone();
    let racer = std::thread::spawn(move || {
        let mut ok = 0usize;
        let mut out = Vec::new();
        for i in 0..x2.nrows() {
            match racing.infer_into(x2.row(i), &mut out) {
                Ok(()) => {
                    assert_eq!(out.as_slice(), reference2.row(i), "racing row {i}");
                    ok += 1;
                }
                Err(ServeError::Shutdown) => break,
                Err(e) => panic!("unexpected error racing shutdown: {e}"),
            }
        }
        ok
    });
    // Let the racer get some work through, then pull the plug.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let stats = handle.shutdown().unwrap();
    let ok = racer.join().unwrap();
    assert_eq!(stats.rows as usize, ok, "every Ok response was counted");
}

/// The engine survives being restarted many times in one process (pool
/// and workspace reuse must not leak state across engines).
#[test]
fn repeated_start_shutdown_cycles() {
    let net = small_net();
    let row = vec![1.0f32; net.n_in()];
    let reference = {
        let mut x = DenseMatrix::zeros(1, net.n_in());
        x.row_mut(0).copy_from_slice(&row);
        net.forward(&x, false)
    };
    for cycle in 0..5 {
        let handle = ServeEngine::start(net.clone(), &serve_config());
        let y = handle.client().infer(&row).unwrap();
        assert_eq!(y.as_slice(), reference.row(0), "cycle {cycle}");
        let stats = handle.shutdown().unwrap();
        assert_eq!(stats.rows, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Policy invariant: blocks never exceed the row limit, and no request
    /// waits past the deadline budget (in batcher ticks). Drives the pure
    /// batcher through a random arrival schedule the way the engine loop
    /// does: push arrivals in tick order, flush exactly when the policy
    /// says so.
    #[test]
    fn batcher_never_overfills_and_never_overwaits(
        max_rows in 1usize..40,
        budget in 0u64..500,
        gaps in proptest::collection::vec(0u64..80, 1..120),
    ) {
        let mut mb = MicroBatcher::new(max_rows, budget);
        let mut now = 0u64;
        let mut flushed: Vec<(Vec<usize>, u64)> = Vec::new(); // (ids, flush tick)
        let mut arrival = std::collections::HashMap::new();
        for (id, gap) in gaps.iter().enumerate() {
            now += gap;
            // The engine flushes before pushing into a full block, and
            // also whenever a deadline has expired by the time it looks.
            while mb.should_flush(now) {
                flushed.push((mb.pending().to_vec(), now.min(mb.deadline().unwrap_or(now))));
                mb.clear();
            }
            arrival.insert(id, now);
            mb.push(id, now);
        }
        // Drain: whatever remains flushes at its deadline.
        if !mb.is_empty() {
            let d = mb.deadline().unwrap();
            flushed.push((mb.pending().to_vec(), d));
            mb.clear();
        }
        let mut seen = 0usize;
        for (ids, at) in &flushed {
            prop_assert!(ids.len() <= max_rows, "block of {} exceeds {}", ids.len(), max_rows);
            prop_assert!(!ids.is_empty());
            for id in ids {
                // Submission order is preserved across flushes.
                prop_assert_eq!(*id, seen);
                seen += 1;
                let waited = at.saturating_sub(arrival[id]);
                prop_assert!(
                    waited <= budget,
                    "request {} waited {} ticks > budget {}", id, waited, budget
                );
            }
        }
        prop_assert_eq!(seen, gaps.len(), "every request flushed exactly once");
    }

    /// Full-block flushes happen eagerly: a batcher that reports full must
    /// flush regardless of the clock, so bursts coalesce into max-size
    /// blocks instead of fragmenting on deadlines.
    #[test]
    fn batcher_full_beats_deadline(max_rows in 1usize..32, budget in 1u64..1000) {
        let mut mb = MicroBatcher::new(max_rows, budget);
        for id in 0..max_rows {
            mb.push(id, 0);
        }
        prop_assert!(mb.is_full());
        prop_assert!(mb.should_flush(0), "full block must flush immediately");
    }

    /// End-to-end demux identity: random rows served through the engine
    /// (random batch/deadline geometry) are bitwise-identical to a serial
    /// `forward_with` over the same rows in the same order.
    #[test]
    fn served_outputs_bitwise_match_serial(
        rows in 1usize..14,
        max_batch in 1usize..6,
        deadline_us in 1u64..2000,
        seed in any::<u64>(),
    ) {
        let net = small_net();
        let x = sparse_binary_batch(rows, net.n_in(), 0.5, seed);
        let mut ws = InferWorkspace::for_network(&net, rows);
        let serial = net.forward_with(&x, false, &mut ws).clone();
        let config = ServeConfig {
            max_batch,
            deadline_us,
            slots: 2 * max_batch,
            queue: 2 * max_batch,
            parallel: false,
        };
        let handle = ServeEngine::start(net, &config);
        let client = handle.client();
        let mut out = Vec::new();
        for i in 0..rows {
            client.infer_into(x.row(i), &mut out).unwrap();
            prop_assert_eq!(out.as_slice(), serial.row(i), "row {}", i);
        }
        let stats = handle.shutdown().unwrap();
        prop_assert_eq!(stats.rows, rows as u64);
        prop_assert!(stats.max_rows <= max_batch as u64);
    }
}
