//! Shared test-support helpers for the chaos and recovery suites.

use std::sync::mpsc;
use std::time::Duration;

/// Runs `scenario` on its own thread with a hard wall-clock bound. If the
/// scenario hangs (the exact failure mode the chaos/recovery suites exist
/// to rule out), the watchdog panics the test instead of wedging the
/// harness; a scenario that panics on its own thread has its payload
/// re-raised so the test reports the real assertion failure.
pub fn with_watchdog<R: Send + 'static>(
    label: &str,
    limit: Duration,
    scenario: impl FnOnce() -> R + Send + 'static,
) -> R {
    let (tx, rx) = mpsc::channel();
    let runner = std::thread::Builder::new()
        .name(format!("chaos-{label}"))
        .spawn(move || {
            let _ = tx.send(scenario());
        })
        .expect("spawn chaos scenario");
    match rx.recv_timeout(limit) {
        Ok(result) => {
            runner.join().expect("chaos scenario panicked");
            result
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The scenario panicked before sending: re-raise its panic so
            // the test reports the real assertion failure.
            match runner.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(()) => unreachable!("sender dropped without panicking"),
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("chaos scenario {label:?} hung past {limit:?} — a request never resolved")
        }
    }
}
