//! Verifies the acceptance criterion of the prepared-kernel engine: after
//! workspace warm-up, the Challenge inference timed region performs **no
//! heap allocation**. A counting global allocator wraps the system
//! allocator; the serial forward pass through a warmed [`InferWorkspace`]
//! must leave the allocation counter untouched.
//!
//! The check targets the serial kernel: the parallel variant is
//! arithmetically identical but fans work out over scoped threads, whose
//! spawn machinery allocates (thread stacks, join handles) — that is
//! scheduling overhead, not per-layer buffer churn.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use radix_challenge::{ChallengeConfig, ChallengeNetwork, InferWorkspace};
use radix_data::sparse_binary_batch;

/// Counts every allocation (alloc + realloc) made through the global
/// allocator, delegating the actual memory management to [`System`].
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to the system allocator; the
// only added behavior is a relaxed atomic counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// One test function on purpose: the counter is process-global, so two
// tests measuring "no allocations happened in my window" concurrently
// would see each other's setup allocations and fail spuriously under the
// default parallel test harness.
#[test]
fn inference_timed_region_is_allocation_free() {
    // Part 1: warmed-up workspace — repeated passes allocate nothing.
    let net = ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 5, 3)).unwrap();
    let batch = 16usize;
    let x = sparse_binary_batch(batch, net.n_in(), 0.5, 7);
    let mut ws = InferWorkspace::for_network(&net, batch);

    // Warm-up: drives every buffer to its high-water mark.
    let reference = net.forward_with(&x, false, &mut ws).clone();

    // Timed-region equivalent: repeated serial passes through the warmed
    // workspace must not allocate at all.
    let before = allocations();
    for _ in 0..3 {
        let y = net.forward_with(&x, false, &mut ws);
        assert_eq!(y.shape(), reference.shape());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warmed-up serial inference must be allocation-free"
    );

    // And the results are still correct.
    assert_eq!(net.forward_with(&x, false, &mut ws), &reference);

    // Part 2: a workspace pre-sized with for_network makes even the
    // *first* pass allocation-free.
    let net2 = ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 4, 2)).unwrap();
    let batch2 = 8usize;
    let x2 = sparse_binary_batch(batch2, net2.n_in(), 0.4, 3);
    let mut ws2 = InferWorkspace::for_network(&net2, batch2);

    let before = allocations();
    let _ = net2.forward_with(&x2, false, &mut ws2);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "a workspace pre-sized with for_network must never allocate"
    );
}
