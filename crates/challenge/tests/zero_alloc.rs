//! Verifies the acceptance criterion of the prepared-kernel engine: after
//! workspace warm-up, the Challenge inference timed region performs **no
//! heap allocation** — on the serial path *and* on the pool-parallel
//! cache-tiled path. A counting global allocator wraps the system
//! allocator; a forward pass through a warmed [`InferWorkspace`] must
//! leave the allocation counter untouched. (The training-side twin of
//! this test — a full gradient step through the tiled transposed kernels
//! — lives in `crates/nn/tests/zero_alloc.rs`; each needs its own test
//! binary because the counter is process-global.)
//!
//! The parallel guarantee is what the persistent worker pool in the rayon
//! shim buys: thread stacks and join handles are paid once at pool
//! creation (part of warm-up), and the steady-state dispatch — condvar
//! wake, atomic chunk cursor, per-worker scratch reuse — touches the heap
//! not at all. The test forces a 4-thread pool and a small tile width via
//! environment variables set before anything touches the pool or the tile
//! configuration (both are read once, at first use, and this test binary
//! is its own process).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use radix_challenge::{ChallengeConfig, ChallengeNetwork, InferWorkspace};
use radix_data::sparse_binary_batch;

/// Counts every allocation (alloc + realloc) made through the global
/// allocator, delegating the actual memory management to [`System`].
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to the system allocator; the
// only added behavior is a relaxed atomic counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// One test function on purpose: the counter is process-global, so two
// tests measuring "no allocations happened in my window" concurrently
// would see each other's setup allocations and fail spuriously under the
// default parallel test harness.
#[test]
fn inference_timed_region_is_allocation_free() {
    // Force a real multi-thread pool (even on 1-core CI) and a tile width
    // small enough that this test's layers actually take the tiled path.
    // Must happen before the first pool / tile_cols use; both are cached
    // process-wide after that.
    // RADIX_POOL_THREADS has highest precedence (the CI multi-thread
    // matrix sets it process-wide), so force it too.
    std::env::set_var("RADIX_POOL_THREADS", "4");
    std::env::set_var("RAYON_NUM_THREADS", "4");
    std::env::set_var("RADIX_TILE_COLS", "8");

    // Part 1: warmed-up workspace — repeated passes allocate nothing.
    let net = ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 5, 3)).unwrap();
    let batch = 16usize;
    let x = sparse_binary_batch(batch, net.n_in(), 0.5, 7);
    let mut ws = InferWorkspace::for_network(&net, batch);

    // Warm-up: drives every buffer to its high-water mark.
    let reference = net.forward_with(&x, false, &mut ws).clone();

    // The counter is process-global, and libtest's harness thread lazily
    // allocates its channel-parking context the first time it gets
    // scheduled — which, on a single-core machine, can land in the middle
    // of a measured window. Yield long enough for the harness thread to
    // finish that one-time setup before any measurement starts.
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Timed-region equivalent: repeated serial passes through the warmed
    // workspace must not allocate at all.
    let before = allocations();
    for _ in 0..3 {
        let y = net.forward_with(&x, false, &mut ws);
        assert_eq!(y.shape(), reference.shape());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warmed-up serial inference must be allocation-free"
    );

    // And the results are still correct.
    assert_eq!(net.forward_with(&x, false, &mut ws), &reference);

    // Part 2: a workspace pre-sized with for_network makes even the
    // *first* pass allocation-free.
    let net2 = ChallengeNetwork::from_config(&ChallengeConfig::preset(2, 4, 2)).unwrap();
    let batch2 = 8usize;
    let x2 = sparse_binary_batch(batch2, net2.n_in(), 0.4, 3);
    let mut ws2 = InferWorkspace::for_network(&net2, batch2);

    let before = allocations();
    let _ = net2.forward_with(&x2, false, &mut ws2);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "a workspace pre-sized with for_network must never allocate"
    );

    // Part 3: the pool-parallel cache-tiled path. The layers are tiled
    // (RADIX_TILE_COLS=8 < 32 columns); the batch spans several fused row
    // blocks, so multi-layer groups dispatch blocks to the 4-thread pool
    // (per-worker scratch ping-pongs) and single-layer groups run the
    // pool-parallel tiled product. Warm-up pays for pool spawn and
    // per-worker scratch growth; after that, repeated parallel passes must
    // allocate nothing.
    assert!(
        net.layers().iter().all(|w| w.is_tiled()),
        "test layers must take the tiled path"
    );
    let batch3 = 80usize; // > 2 fuse blocks of 32 rows
    let x3 = sparse_binary_batch(batch3, net.n_in(), 0.5, 11);
    let serial_reference = net.forward(&x3, false);
    let mut ws3 = InferWorkspace::for_network(&net, batch3);
    let par_reference = net.forward_with(&x3, true, &mut ws3).clone();
    assert_eq!(
        par_reference, serial_reference,
        "parallel must match serial"
    );

    let before = allocations();
    for _ in 0..3 {
        let y = net.forward_with(&x3, true, &mut ws3);
        assert_eq!(y.shape(), par_reference.shape());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warmed-up pool-parallel tiled inference must be allocation-free"
    );
    assert_eq!(net.forward_with(&x3, true, &mut ws3), &par_reference);
}
