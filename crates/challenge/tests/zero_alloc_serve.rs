//! Verifies the serving-engine acceptance criterion: after warm-up
//! traffic, the steady-state serving loop — client submit, micro-batch,
//! fused pool-parallel execute, demux, respond — performs **no heap
//! allocation** on a forced 4-thread pool. The counter is process-global
//! (same [`GlobalAlloc`] wrapper as `tests/zero_alloc.rs`), so it observes
//! the client thread, the engine thread, *and* every pool worker at once:
//! a single measured window covers the whole request path.
//!
//! Why this holds: every request-path buffer is pre-allocated at engine
//! start (slot rows, batch gather matrix, `InferWorkspace`, batcher id
//! buffer), the bounded channel carries bare `usize` slot indices, and the
//! std sync primitives underneath (futex mutex/condvar, array-backed
//! channel) allocate only lazy per-thread parking state — which warm-up
//! traffic from the *same* threads pays for up front.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use radix_challenge::{ChallengeConfig, ChallengeNetwork, ServeConfig, ServeEngine};
use radix_data::sparse_binary_batch;
use radix_nn::{checkpoint, Activation, Init, Layer, Loss, Network, Optimizer, TrainProgress};

/// Counts every allocation (alloc + realloc) made through the global
/// allocator, delegating the actual memory management to [`System`].
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to the system allocator; the
// only added behavior is a relaxed atomic counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// One test function on purpose: the counter is process-global, so a second
// test running concurrently under libtest's parallel harness would bleed
// its setup allocations into the measured window.
#[test]
fn steady_state_serving_loop_is_allocation_free() {
    // Force a real multi-thread pool (even on 1-core CI) and a tile width
    // small enough that the layers take the tiled path. Must happen before
    // anything touches the pool or tile configuration — both are read once
    // process-wide, and this test binary is its own process.
    std::env::set_var("RADIX_POOL_THREADS", "4");
    std::env::set_var("RAYON_NUM_THREADS", "4");
    std::env::set_var("RADIX_TILE_COLS", "8");

    let cfg = ChallengeConfig::preset(2, 5, 3);
    let net = ChallengeNetwork::from_config(&cfg).unwrap();
    let n_in = net.n_in();
    let rows = sparse_binary_batch(8, n_in, 0.5, 13);
    let reference = net.forward(&rows, false);

    // A short deadline keeps the measured loop fast; the engine measures
    // block compute at start and shrinks the batcher wait to fit.
    let config = ServeConfig {
        max_batch: 8,
        deadline_us: 500,
        slots: 16,
        queue: 16,
        parallel: true,
    };
    let handle = ServeEngine::start(net, &config);
    let client = handle.client();

    // Warm-up traffic from the measuring thread: pays for every lazy
    // one-time cost on the exact threads the measured window will use —
    // pool spawn (first parallel forward), per-thread channel parking
    // contexts on both sides of the bounded channel, condvar futex state,
    // and the client's reusable output buffer.
    let mut out = Vec::new();
    for round in 0..3 {
        for i in 0..rows.nrows() {
            client.infer_into(rows.row(i), &mut out).unwrap();
            assert_eq!(
                out.as_slice(),
                reference.row(i),
                "warm-up round {round} row {i}"
            );
        }
    }

    // libtest's harness thread lazily allocates its own parking context
    // the first time it gets scheduled, which on a 1-core machine can land
    // mid-window. Let that one-time setup finish first.
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Steady state: the full request path — slot checkout, row write,
    // bounded-channel send, batcher push/flush, gather, fused parallel
    // forward on the 4-thread pool, demux, condvar wake, slot return —
    // must not allocate at all, on any thread.
    let before = allocations();
    for _ in 0..3 {
        for i in 0..rows.nrows() {
            client.infer_into(rows.row(i), &mut out).unwrap();
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state serving loop must be allocation-free"
    );

    // Results stayed correct through the measured window.
    for i in 0..rows.nrows() {
        client.infer_into(rows.row(i), &mut out).unwrap();
        assert_eq!(out.as_slice(), reference.row(i), "post-measurement row {i}");
    }
    let mut served = 7 * rows.nrows() as u64;

    // Hot reload must not disturb the steady state: stage a checkpoint
    // of different weights on the same topology, wait for the engine to
    // swap it in at a batch boundary, then re-measure — the post-reload
    // serving loop must still be allocation-free. (The reload *call*
    // allocates — decode + prepare — but on this thread, outside the
    // measured window; the engine's pickup is a pointer-sized move.)
    let nn_net = Network::from_fnnt(
        cfg.spec().unwrap().build().fnnt(),
        Activation::Relu,
        Init::He,
        Loss::Mse,
        41,
    );
    let csrs = nn_net
        .layers()
        .iter()
        .map(|l| match l {
            Layer::Sparse(sl) => sl.weights().clone(),
            Layer::Dense(_) => unreachable!("from_fnnt builds sparse layers"),
        })
        .collect();
    let reloaded_ref =
        ChallengeNetwork::from_layers(csrs, cfg.bias, cfg.ymax).forward(&rows, false);
    assert_ne!(
        reloaded_ref.row(0),
        reference.row(0),
        "reloaded weights must be distinguishable"
    );

    let ckpt_dir = std::env::temp_dir().join(format!("radix-zero-alloc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let ckpt_path = ckpt_dir.join("reload.radix");
    checkpoint::save(
        &ckpt_path,
        &nn_net,
        &Optimizer::sgd(0.1),
        &TrainProgress::default(),
    )
    .unwrap();
    handle.reload(&ckpt_path).unwrap();

    // The engine applies the staged swap at its next batch boundary
    // (bounded by its idle re-check cadence); until then responses are
    // the old weights bit for bit, never torn.
    let mut swapped = false;
    for _ in 0..5_000 {
        client.infer_into(rows.row(0), &mut out).unwrap();
        served += 1;
        if out.as_slice() == reloaded_ref.row(0) {
            swapped = true;
            break;
        }
        assert_eq!(out.as_slice(), reference.row(0), "never torn mid-reload");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(swapped, "engine never picked up the staged reload");

    // Warm one full round on the new weights, then the same zero-alloc
    // criterion must hold post-reload.
    for i in 0..rows.nrows() {
        client.infer_into(rows.row(i), &mut out).unwrap();
        assert_eq!(out.as_slice(), reloaded_ref.row(i), "post-reload row {i}");
    }
    let before = allocations();
    for _ in 0..3 {
        for i in 0..rows.nrows() {
            client.infer_into(rows.row(i), &mut out).unwrap();
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "post-reload steady-state serving loop must be allocation-free"
    );
    served += 4 * rows.nrows() as u64;

    drop(client);
    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.rows, served);
    assert!(stats.max_rows <= 8);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
