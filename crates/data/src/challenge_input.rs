//! Synthetic inputs for the Graph-Challenge-style inference harness.
//!
//! The real Sparse DNN Graph Challenge feeds MNIST images thresholded to
//! sparse binary feature vectors into RadiX-Net-generated networks. We
//! generate the same *statistical* object directly: batches of binary
//! feature vectors with a controlled fraction of active features
//! (DESIGN.md §4).

use rand::rngs::StdRng;
use rand::SeedableRng;

use radix_sparse::DenseMatrix;

/// A batch of sparse binary feature vectors as a dense batch-major matrix
/// (`batch × features`), each row having `ceil(features · active_fraction)`
/// ones at random positions.
///
/// # Panics
/// Panics if `active_fraction` is outside `(0, 1]` or `features == 0`.
#[must_use]
pub fn sparse_binary_batch(
    batch: usize,
    features: usize,
    active_fraction: f64,
    seed: u64,
) -> DenseMatrix<f32> {
    assert!(features > 0, "need at least one feature");
    assert!(
        active_fraction > 0.0 && active_fraction <= 1.0,
        "active fraction must be in (0, 1]"
    );
    let active = ((features as f64 * active_fraction).ceil() as usize).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = DenseMatrix::zeros(batch, features);
    let mut positions: Vec<usize> = (0..features).collect();
    for i in 0..batch {
        use rand::seq::SliceRandom;
        let (chosen, _) = positions.partial_shuffle(&mut rng, active);
        let on: Vec<usize> = chosen.to_vec();
        let row: &mut [f32] = x.row_mut(i);
        for j in on {
            row[j] = 1.0;
        }
    }
    x
}

/// Per-row count of active (nonzero) features.
#[must_use]
pub fn active_counts(x: &DenseMatrix<f32>) -> Vec<usize> {
    (0..x.nrows())
        .map(|i| x.row(i).iter().filter(|v| **v != 0.0).count())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_counts_exact() {
        let x = sparse_binary_batch(16, 64, 0.25, 0);
        for &c in &active_counts(&x) {
            assert_eq!(c, 16); // 64 · 0.25
        }
    }

    #[test]
    fn values_are_binary() {
        let x = sparse_binary_batch(8, 32, 0.1, 1);
        for &v in x.as_slice() {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn full_fraction_gives_all_ones() {
        let x = sparse_binary_batch(2, 10, 1.0, 2);
        assert!(x.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn tiny_fraction_gives_at_least_one() {
        let x = sparse_binary_batch(4, 100, 0.001, 3);
        for &c in &active_counts(&x) {
            assert_eq!(c, 1);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(
            sparse_binary_batch(4, 16, 0.5, 9),
            sparse_binary_batch(4, 16, 0.5, 9)
        );
    }

    #[test]
    #[should_panic(expected = "active fraction")]
    fn zero_fraction_panics() {
        let _ = sparse_binary_batch(1, 4, 0.0, 0);
    }
}
