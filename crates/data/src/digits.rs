//! Procedural digit-raster dataset — the MNIST stand-in (DESIGN.md §4).
//!
//! Each sample is an 8×8 grayscale raster of one of the glyphs 0–9, drawn
//! from a fixed seven-segment-style bitmap font and perturbed by a random
//! sub-pixel shift and additive noise. Classes are visually distinct but
//! non-trivially overlapping at high noise, which is all the training
//! comparison needs: the same 64-dimensional raster task MNIST poses,
//! at laptop scale and with no external data dependency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use radix_sparse::DenseMatrix;

use crate::synthetic::Dataset;

/// Raster side length (images are `SIDE × SIDE`).
pub const SIDE: usize = 8;

/// Feature dimension (`SIDE²`).
pub const DIM: usize = SIDE * SIDE;

/// 8×8 bitmap glyphs for the ten digits (1 bit per pixel, row-major,
/// MSB = leftmost pixel).
const GLYPHS: [[u8; 8]; 10] = [
    // 0
    [0x3C, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x3C],
    // 1
    [0x18, 0x38, 0x18, 0x18, 0x18, 0x18, 0x18, 0x3C],
    // 2
    [0x3C, 0x66, 0x06, 0x0C, 0x18, 0x30, 0x60, 0x7E],
    // 3
    [0x3C, 0x66, 0x06, 0x1C, 0x06, 0x06, 0x66, 0x3C],
    // 4
    [0x0C, 0x1C, 0x2C, 0x4C, 0x7E, 0x0C, 0x0C, 0x0C],
    // 5
    [0x7E, 0x60, 0x60, 0x7C, 0x06, 0x06, 0x66, 0x3C],
    // 6
    [0x3C, 0x66, 0x60, 0x7C, 0x66, 0x66, 0x66, 0x3C],
    // 7
    [0x7E, 0x06, 0x0C, 0x0C, 0x18, 0x18, 0x30, 0x30],
    // 8
    [0x3C, 0x66, 0x66, 0x3C, 0x66, 0x66, 0x66, 0x3C],
    // 9
    [0x3C, 0x66, 0x66, 0x66, 0x3E, 0x06, 0x66, 0x3C],
];

/// Renders the clean glyph for `digit` as a `DIM`-length intensity vector
/// in `[0, 1]`.
///
/// # Panics
/// Panics if `digit > 9`.
#[must_use]
pub fn clean_glyph(digit: usize) -> Vec<f32> {
    assert!(digit <= 9, "digit out of range");
    let mut out = vec![0.0f32; DIM];
    for (r, bits) in GLYPHS[digit].iter().enumerate() {
        for c in 0..SIDE {
            if bits & (0x80 >> c) != 0 {
                out[r * SIDE + c] = 1.0;
            }
        }
    }
    out
}

/// Generates `per_class` noisy samples of each digit: each sample is the
/// glyph shifted by up to ±1 pixel in each axis, with Gaussian pixel noise
/// of the given std, clamped to `[0, 1]`.
#[must_use]
pub fn digits(per_class: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 10 * per_class;
    let mut x = DenseMatrix::zeros(n, DIM);
    let mut labels = Vec::with_capacity(n);
    for digit in 0..10 {
        let glyph = clean_glyph(digit);
        for s in 0..per_class {
            let i = digit * per_class + s;
            let dr: isize = rng.gen_range(-1..=1);
            let dc: isize = rng.gen_range(-1..=1);
            let row: &mut [f32] = x.row_mut(i);
            for r in 0..SIDE {
                for c in 0..SIDE {
                    let sr = r as isize - dr;
                    let sc = c as isize - dc;
                    let base =
                        if (0..SIDE as isize).contains(&sr) && (0..SIDE as isize).contains(&sc) {
                            glyph[sr as usize * SIDE + sc as usize]
                        } else {
                            0.0
                        };
                    let u1: f32 = rng.gen_range(1e-7f32..1.0);
                    let u2: f32 = rng.gen_range(0.0f32..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                    row[r * SIDE + c] = (base + z * noise).clamp(0.0, 1.0);
                }
            }
            labels.push(digit);
        }
    }
    Dataset {
        x,
        labels,
        num_classes: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_distinct() {
        for a in 0..10 {
            for b in (a + 1)..10 {
                assert_ne!(clean_glyph(a), clean_glyph(b), "glyphs {a} and {b}");
            }
        }
    }

    #[test]
    fn glyph_pixels_binary() {
        for d in 0..10 {
            for &p in &clean_glyph(d) {
                assert!(p == 0.0 || p == 1.0);
            }
        }
    }

    #[test]
    fn dataset_shape_and_balance() {
        let d = digits(12, 0.1, 0);
        assert_eq!(d.len(), 120);
        assert_eq!(d.dim(), 64);
        assert_eq!(d.num_classes, 10);
        for digit in 0..10 {
            assert_eq!(d.labels.iter().filter(|&&l| l == digit).count(), 12);
        }
    }

    #[test]
    fn pixels_stay_in_unit_interval() {
        let d = digits(5, 0.5, 1);
        for &v in d.x.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn zero_noise_zero_shift_recovers_glyph_sometimes() {
        // With noise 0, every sample is a shifted clean glyph; at least one
        // sample per class should be the unshifted glyph for enough draws.
        let d = digits(30, 0.0, 2);
        let mut found_exact = 0;
        for digit in 0..10 {
            let glyph = clean_glyph(digit);
            for i in 0..d.len() {
                if d.labels[i] == digit && d.x.row(i) == glyph.as_slice() {
                    found_exact += 1;
                    break;
                }
            }
        }
        assert!(found_exact >= 8, "only {found_exact} exact glyphs found");
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(digits(3, 0.2, 9), digits(3, 0.2, 9));
        assert_ne!(digits(3, 0.2, 9), digits(3, 0.2, 10));
    }

    #[test]
    #[should_panic(expected = "digit out of range")]
    fn bad_digit_panics() {
        let _ = clean_glyph(10);
    }
}
