//! # radix-data
//!
//! Synthetic datasets for the RadiX-Net reproduction. The companion
//! training study and the Graph Challenge use MNIST-derived data we cannot
//! ship; these generators produce statistically equivalent laptop-scale
//! substitutes (the substitution table lives in DESIGN.md §4):
//!
//! * [`gaussian_blobs`], [`two_spirals`], [`checkerboard`] — classification
//!   tasks of graded difficulty,
//! * [`fn@digits`] — a procedural 8×8 digit-raster task standing in for MNIST,
//! * [`Teacher`] — teacher–student regression targets with known required
//!   expressiveness,
//! * [`sparse_binary_batch`] — sparse binary feature batches matching the
//!   Graph Challenge's thresholded-image inputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod challenge_input;
pub mod digits;
pub mod synthetic;
pub mod teacher;

pub use challenge_input::{active_counts, sparse_binary_batch};
pub use digits::{clean_glyph, digits, DIM as DIGIT_DIM, SIDE as DIGIT_SIDE};
pub use synthetic::{checkerboard, gaussian_blobs, two_spirals, Dataset};
pub use teacher::Teacher;
