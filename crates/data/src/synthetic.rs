//! Synthetic classification datasets.
//!
//! These stand in for the image benchmarks (MNIST/CIFAR) of the companion
//! training study — see DESIGN.md §4: the claim under test is *relative*
//! (sparse-topology nets reach dense-net accuracy on the same data), so any
//! non-trivial classification task exercises the same code path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use radix_sparse::DenseMatrix;

/// A labelled classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Features, one sample per row.
    pub x: DenseMatrix<f32>,
    /// Class labels, one per row of `x`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.x.ncols()
    }

    /// Splits into `(train, test)` with the first `train_fraction` of a
    /// seeded shuffle going to train.
    ///
    /// # Panics
    /// Panics if `train_fraction` is outside `(0, 1)`.
    #[must_use]
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0,1)"
        );
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let take = |ids: &[usize]| {
            let mut x = DenseMatrix::zeros(ids.len(), self.dim());
            let mut labels = Vec::with_capacity(ids.len());
            for (local, &global) in ids.iter().enumerate() {
                let dst: &mut [f32] = x.row_mut(local);
                dst.copy_from_slice(self.x.row(global));
                labels.push(self.labels[global]);
            }
            Dataset {
                x,
                labels,
                num_classes: self.num_classes,
            }
        };
        (take(&idx[..cut]), take(&idx[cut..]))
    }
}

/// Isotropic Gaussian blobs: `num_classes` random centers in `dim`
/// dimensions, `per_class` samples each with the given noise std.
#[must_use]
pub fn gaussian_blobs(
    num_classes: usize,
    per_class: usize,
    dim: usize,
    noise: f32,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..num_classes)
        .map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let n = num_classes * per_class;
    let mut x = DenseMatrix::zeros(n, dim);
    let mut labels = Vec::with_capacity(n);
    for (class, center) in centers.iter().enumerate() {
        for s in 0..per_class {
            let i = class * per_class + s;
            let row: &mut [f32] = x.row_mut(i);
            for (v, &c) in row.iter_mut().zip(center) {
                // Box–Muller gaussian noise.
                let u1: f32 = rng.gen_range(1e-7f32..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                *v = c + z * noise;
            }
            labels.push(class);
        }
    }
    Dataset {
        x,
        labels,
        num_classes,
    }
}

/// The classic two-spirals task (2 classes, 2 native dimensions), embedded
/// into `dim ≥ 2` dimensions by zero-padding plus small noise so sparse
/// input layers see realistic widths.
///
/// # Panics
/// Panics if `dim < 2`.
#[must_use]
pub fn two_spirals(per_class: usize, dim: usize, noise: f32, seed: u64) -> Dataset {
    assert!(dim >= 2, "spirals need at least 2 dimensions");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2 * per_class;
    let mut x = DenseMatrix::zeros(n, dim);
    let mut labels = Vec::with_capacity(n);
    for class in 0..2 {
        for s in 0..per_class {
            let i = class * per_class + s;
            let t = 0.25 + 3.5 * (s as f32 / per_class as f32); // radians-ish
            let r = t / 4.0;
            let phase = if class == 0 {
                0.0
            } else {
                std::f32::consts::PI
            };
            let row: &mut [f32] = x.row_mut(i);
            row[0] = r * (t * std::f32::consts::PI + phase).cos() + rng.gen_range(-noise..=noise);
            row[1] = r * (t * std::f32::consts::PI + phase).sin() + rng.gen_range(-noise..=noise);
            for v in row.iter_mut().skip(2) {
                *v = rng.gen_range(-noise..=noise);
            }
            labels.push(class);
        }
    }
    Dataset {
        x,
        labels,
        num_classes: 2,
    }
}

/// A `k × k` checkerboard over `[−1, 1]²` (2 classes by parity of cell),
/// embedded into `dim ≥ 2` dimensions like [`two_spirals`].
///
/// # Panics
/// Panics if `dim < 2` or `k == 0`.
#[must_use]
pub fn checkerboard(samples: usize, k: usize, dim: usize, seed: u64) -> Dataset {
    assert!(dim >= 2, "checkerboard needs at least 2 dimensions");
    assert!(k > 0, "checkerboard needs at least one cell");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = DenseMatrix::zeros(samples, dim);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let a: f32 = rng.gen_range(-1.0..1.0);
        let b: f32 = rng.gen_range(-1.0..1.0);
        let cell = (((a + 1.0) / 2.0 * k as f32) as usize).min(k - 1)
            + (((b + 1.0) / 2.0 * k as f32) as usize).min(k - 1);
        let row: &mut [f32] = x.row_mut(i);
        row[0] = a;
        row[1] = b;
        for v in row.iter_mut().skip(2) {
            *v = rng.gen_range(-0.05..0.05);
        }
        labels.push(cell % 2);
    }
    Dataset {
        x,
        labels,
        num_classes: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shapes_and_labels() {
        let d = gaussian_blobs(4, 25, 8, 0.2, 0);
        assert_eq!(d.len(), 100);
        assert_eq!(d.dim(), 8);
        assert_eq!(d.num_classes, 4);
        assert!(d.labels.iter().all(|&l| l < 4));
        for class in 0..4 {
            assert_eq!(d.labels.iter().filter(|&&l| l == class).count(), 25);
        }
    }

    #[test]
    fn blobs_deterministic_by_seed() {
        let a = gaussian_blobs(2, 10, 4, 0.1, 7);
        let b = gaussian_blobs(2, 10, 4, 0.1, 7);
        assert_eq!(a, b);
        let c = gaussian_blobs(2, 10, 4, 0.1, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn blobs_classes_are_separated_at_low_noise() {
        // At tiny noise, same-class points cluster far tighter than the
        // typical inter-center distance.
        let d = gaussian_blobs(2, 30, 4, 0.01, 3);
        let mean = |class: usize| -> Vec<f32> {
            let rows: Vec<usize> = (0..d.len()).filter(|&i| d.labels[i] == class).collect();
            let mut m = vec![0.0f32; d.dim()];
            for &i in &rows {
                for (mm, &v) in m.iter_mut().zip(d.x.row(i)) {
                    *mm += v / rows.len() as f32;
                }
            }
            m
        };
        let m0 = mean(0);
        let m1 = mean(1);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 0.5, "centers too close: {dist}");
    }

    #[test]
    fn spirals_balanced_and_bounded() {
        let d = two_spirals(50, 6, 0.01, 1);
        assert_eq!(d.len(), 100);
        assert_eq!(d.dim(), 6);
        assert_eq!(d.labels.iter().filter(|&&l| l == 0).count(), 50);
        // Spiral radii stay within ~1.
        for i in 0..d.len() {
            assert!(d.x.get(i, 0).abs() < 1.5);
            assert!(d.x.get(i, 1).abs() < 1.5);
        }
    }

    #[test]
    fn checkerboard_labels_match_parity() {
        let d = checkerboard(200, 4, 2, 5);
        for i in 0..d.len() {
            let a = d.x.get(i, 0);
            let b = d.x.get(i, 1);
            let cell = (((a + 1.0) / 2.0 * 4.0) as usize).min(3)
                + (((b + 1.0) / 2.0 * 4.0) as usize).min(3);
            assert_eq!(d.labels[i], cell % 2);
        }
    }

    #[test]
    fn split_partitions_without_loss() {
        let d = gaussian_blobs(3, 20, 4, 0.3, 2);
        let (train, test) = d.split(0.75, 0);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.len(), 45);
        assert_eq!(train.num_classes, 3);
        assert_eq!(train.dim(), 4);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_split_fraction_panics() {
        let d = gaussian_blobs(2, 5, 2, 0.1, 0);
        let _ = d.split(1.5, 0);
    }
}
