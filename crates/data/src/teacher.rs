//! Teacher–student targets: a fixed random "teacher" function labels the
//! inputs, so the *exact* expressiveness needed is known by construction.
//!
//! This is the cleanest probe of the paper's expressive-power discussion
//! (§IV): if a sparse student matches a dense student on targets produced
//! by a dense teacher, the sparse topology did not lose the function class
//! on this sample — the empirical shadow of the §IV.B conjecture.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use radix_sparse::DenseMatrix;

/// A fixed random two-layer tanh teacher `R^in → R^out`.
#[derive(Debug, Clone)]
pub struct Teacher {
    w1: DenseMatrix<f32>,
    w2: DenseMatrix<f32>,
}

impl Teacher {
    /// Creates a random teacher with the given widths.
    #[must_use]
    pub fn new(n_in: usize, hidden: usize, n_out: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fill = |r: usize, c: usize| {
            let mut m = DenseMatrix::zeros(r, c);
            for i in 0..r {
                let row: &mut [f32] = m.row_mut(i);
                for v in row.iter_mut() {
                    *v = rng.gen_range(-1.0..1.0);
                }
            }
            m
        };
        Teacher {
            w1: fill(n_in, hidden),
            w2: fill(hidden, n_out),
        }
    }

    /// Input dimension.
    #[must_use]
    pub fn n_in(&self) -> usize {
        self.w1.nrows()
    }

    /// Output dimension.
    #[must_use]
    pub fn n_out(&self) -> usize {
        self.w2.ncols()
    }

    /// Evaluates the teacher on a batch.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    #[must_use]
    pub fn eval(&self, x: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let mut h = x.matmul(&self.w1).expect("input width");
        h.map_inplace(f32::tanh);
        h.matmul(&self.w2).expect("hidden width")
    }

    /// Generates a regression dataset: `samples` uniform inputs in
    /// `[−1, 1]^n_in` and their teacher outputs.
    #[must_use]
    pub fn dataset(&self, samples: usize, seed: u64) -> (DenseMatrix<f32>, DenseMatrix<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = DenseMatrix::zeros(samples, self.n_in());
        for i in 0..samples {
            let row: &mut [f32] = x.row_mut(i);
            for v in row.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
        }
        let y = self.eval(&x);
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teacher_is_deterministic() {
        let t = Teacher::new(4, 8, 2, 5);
        let (x1, y1) = t.dataset(10, 1);
        let (x2, y2) = t.dataset(10, 1);
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn shapes_match() {
        let t = Teacher::new(6, 12, 3, 0);
        assert_eq!(t.n_in(), 6);
        assert_eq!(t.n_out(), 3);
        let (x, y) = t.dataset(20, 2);
        assert_eq!(x.shape(), (20, 6));
        assert_eq!(y.shape(), (20, 3));
    }

    #[test]
    fn outputs_are_nonconstant() {
        let t = Teacher::new(4, 8, 1, 3);
        let (_, y) = t.dataset(50, 4);
        let first = y.get(0, 0);
        assert!(
            (0..50).any(|i| (y.get(i, 0) - first).abs() > 1e-3),
            "teacher output is constant"
        );
    }

    #[test]
    fn eval_matches_manual_computation() {
        let t = Teacher::new(2, 3, 1, 7);
        let x = DenseMatrix::from_rows(&[&[0.5f32, -0.25]]);
        let y = t.eval(&x);
        // Manual: tanh(x·W1)·W2.
        let mut h = x.matmul(&t.w1).unwrap();
        h.map_inplace(f32::tanh);
        let expect = h.matmul(&t.w2).unwrap();
        assert_eq!(y, expect);
    }
}
