//! Property tests for the synthetic dataset generators.

use proptest::prelude::*;

use radix_data::{
    active_counts, checkerboard, digits, gaussian_blobs, sparse_binary_batch, two_spirals, Teacher,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blobs_invariants(
        classes in 2usize..6, per_class in 1usize..20, dim in 1usize..12,
        seed in any::<u64>()
    ) {
        let d = gaussian_blobs(classes, per_class, dim, 0.3, seed);
        prop_assert_eq!(d.len(), classes * per_class);
        prop_assert_eq!(d.dim(), dim);
        prop_assert!(d.labels.iter().all(|&l| l < classes));
        prop_assert!(d.x.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn split_partitions_and_preserves(
        per_class in 4usize..20, frac in 0.2f64..0.8, seed in any::<u64>()
    ) {
        let d = gaussian_blobs(3, per_class, 4, 0.2, seed);
        let (train, test) = d.split(frac, seed ^ 1);
        prop_assert_eq!(train.len() + test.len(), d.len());
        prop_assert!(!train.is_empty() || !test.is_empty());
        // Every (features, label) pair is preserved as a multiset: check
        // the label histogram survives the split.
        let mut hist_orig = [0usize; 3];
        for &l in &d.labels { hist_orig[l] += 1; }
        let mut hist_split = [0usize; 3];
        for &l in train.labels.iter().chain(&test.labels) { hist_split[l] += 1; }
        prop_assert_eq!(hist_orig, hist_split);
    }

    #[test]
    fn spirals_balanced(per_class in 2usize..40, seed in any::<u64>()) {
        let d = two_spirals(per_class, 4, 0.05, seed);
        prop_assert_eq!(d.labels.iter().filter(|&&l| l == 0).count(), per_class);
        prop_assert_eq!(d.labels.iter().filter(|&&l| l == 1).count(), per_class);
    }

    #[test]
    fn checkerboard_labels_valid(samples in 1usize..100, k in 1usize..6, seed in any::<u64>()) {
        let d = checkerboard(samples, k, 3, seed);
        prop_assert_eq!(d.len(), samples);
        prop_assert!(d.labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn digits_class_balance(per_class in 1usize..12, seed in any::<u64>()) {
        let d = digits(per_class, 0.2, seed);
        for digit in 0..10 {
            prop_assert_eq!(
                d.labels.iter().filter(|&&l| l == digit).count(),
                per_class
            );
        }
        prop_assert!(d.x.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn teacher_deterministic_and_finite(
        n_in in 1usize..8, hidden in 1usize..12, n_out in 1usize..6,
        seed in any::<u64>()
    ) {
        let t = Teacher::new(n_in, hidden, n_out, seed);
        let (x1, y1) = t.dataset(16, seed ^ 2);
        let (x2, y2) = t.dataset(16, seed ^ 2);
        prop_assert_eq!(x1, x2);
        prop_assert_eq!(&y1, &y2);
        prop_assert!(y1.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn challenge_inputs_have_exact_activity(
        batch in 1usize..16, features in 1usize..64, frac in 0.01f64..1.0,
        seed in any::<u64>()
    ) {
        let x = sparse_binary_batch(batch, features, frac, seed);
        let expect = ((features as f64 * frac).ceil() as usize).max(1).min(features);
        for &c in &active_counts(&x) {
            prop_assert_eq!(c, expect);
        }
    }
}
