//! Activation functions.
//!
//! The paper's functional-analytic framing (§IV.A, Cybenko's theorem) is
//! stated for sigmoidal activations; the companion training work and the
//! Graph Challenge use ReLU. Both are provided, plus identity (for linear
//! probes) and tanh.

/// Elementwise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `σ(t) = 1 / (1 + e^{−t})` — the sigmoidal function of §IV.A.
    Sigmoid,
    /// `max(0, t)` — the Graph-Challenge nonlinearity.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no nonlinearity); used for output logits.
    Identity,
}

impl Activation {
    /// Applies the activation to a single pre-activation value.
    #[inline]
    #[must_use]
    pub fn apply(self, t: f32) -> f32 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-t).exp()),
            Activation::Relu => t.max(0.0),
            Activation::Tanh => t.tanh(),
            Activation::Identity => t,
        }
    }

    /// Derivative expressed in terms of the *output* value `y = f(t)` —
    /// cheaper than re-deriving from the pre-activation for sigmoid/tanh,
    /// and exact for ReLU except at the measure-zero kink (where we take 0).
    #[inline]
    #[must_use]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to a slice in place.
    pub fn apply_slice(self, values: &mut [f32]) {
        if self == Activation::Identity {
            return;
        }
        for v in values {
            *v = self.apply(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_limits_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(s.apply(20.0) > 0.999_99);
        assert!(s.apply(-20.0) < 1e-5);
    }

    #[test]
    fn sigmoid_is_sigmoidal_in_cybenko_sense() {
        // lim t→∞ σ(t) = 1, lim t→−∞ σ(t) = 0, continuous (spot-checked).
        let s = Activation::Sigmoid;
        let mut prev = s.apply(-5.0);
        let mut t = -5.0f32;
        while t <= 5.0 {
            let y = s.apply(t);
            assert!(y >= prev - 1e-6, "monotone");
            prev = y;
            t += 0.25;
        }
    }

    #[test]
    fn relu_clamps_negative() {
        let r = Activation::Relu;
        assert_eq!(r.apply(-3.0), 0.0);
        assert_eq!(r.apply(3.0), 3.0);
        assert_eq!(r.derivative_from_output(0.0), 0.0);
        assert_eq!(r.derivative_from_output(2.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-3f32;
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Identity] {
            for &t in &[-1.5f32, -0.3, 0.0, 0.7, 2.0] {
                let y = act.apply(t);
                let numeric = (act.apply(t + h) - act.apply(t - h)) / (2.0 * h);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act:?} at {t}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut vs = [-1.0f32, 0.0, 2.5];
        Activation::Relu.apply_slice(&mut vs);
        assert_eq!(vs, [0.0, 0.0, 2.5]);
        let mut id = [-1.0f32, 0.5];
        Activation::Identity.apply_slice(&mut id);
        assert_eq!(id, [-1.0, 0.5]);
    }

    #[test]
    fn tanh_is_odd() {
        let t = Activation::Tanh;
        for &x in &[0.1f32, 0.5, 1.0, 2.0] {
            assert!((t.apply(x) + t.apply(-x)).abs() < 1e-6);
        }
    }
}
