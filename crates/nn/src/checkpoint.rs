//! Crash-safe, checksummed checkpoints for training state.
//!
//! A checkpoint captures everything a `train_*` loop needs to continue a
//! run **bitwise identically** to an uninterrupted one: the network (all
//! weight and bias values at exact `f32` bit patterns), the optimizer
//! (hyperparameters, Adam's step clock, and every per-parameter state
//! vector), and the training cursor (epoch, batch, shuffle seed, the
//! partial epoch-loss accumulator, and the per-epoch history so far).
//! The RNG needs no serialized state: the loops consume randomness only
//! through one `shuffle` per epoch, so the cursor plus the seed lets the
//! resume path *replay* the shuffles and land on the exact generator
//! state (see `train`).
//!
//! ## Wire format (version 1, little-endian)
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic  "RXNCKPT\x01"                                  8 bytes │
//! │ version u32                                                  │
//! │ section count u32 (= 3)                                      │
//! ├── section × 3: NET, OPT, PROG ───────────────────────────────┤
//! │   tag u32 · payload length u64 · payload · CRC32(payload)    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ footer: CRC32 over every preceding byte               4 bytes │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Sparse layers exploit the constant-degree ELLPACK layout: a
//! RadiX/X-Net layer stores `degree` once plus `nnz` column ids and
//! values — no `indptr` array at all (`indptr[i] = i·degree` is implied).
//! Irregular CSR layers and dense layers have their own records.
//!
//! ## Atomic write protocol
//!
//! [`save`] encodes to memory, writes `<name>.tmp` in the target
//! directory, fsyncs the file, atomically renames it over the final
//! path, then fsyncs the directory. A crash at any point leaves either
//! the old checkpoint or the new one — never a torn hybrid — and a stale
//! `.tmp` from a torn write is invisible to recovery (the
//! [`Checkpointer`] only considers `ckpt-NNNNNNNN.radix` names).
//!
//! ## Hostile bytes
//!
//! [`decode`] never panics on malformed input: every length is bounds-
//! checked against the remaining buffer before any allocation, every
//! structural invariant (index ordering, shape chaining, optimizer state
//! lengths) is validated, and every failure is a typed
//! [`CheckpointError`]. `tests/checkpoint.rs` fuzzes truncations and bit
//! flips to pin this down.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use radix_sparse::{CsrMatrix, DenseMatrix};

use crate::activation::Activation;
use crate::fault::{TrainFaultInjector, WriteFault, INJECTED_TRAIN_PANIC_MSG};
use crate::layer::{DenseLinear, Layer, SparseLinear};
use crate::loss::Loss;
use crate::network::Network;
use crate::optimizer::Optimizer;
use crate::train::History;

/// File magic: "RXNCKPT" plus a format-generation byte.
const MAGIC: &[u8; 8] = b"RXNCKPT\x01";
/// Current (and only) wire-format version.
pub const FORMAT_VERSION: u32 = 1;

const TAG_NET: u32 = 1;
const TAG_OPT: u32 = 2;
const TAG_PROG: u32 = 3;

const KIND_SPARSE_ELL: u8 = 0;
const KIND_SPARSE_CSR: u8 = 1;
const KIND_DENSE: u8 = 2;

/// Why a checkpoint could not be written, read, or resumed from.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the file.
        got: u32,
        /// Newest version this build can read.
        supported: u32,
    },
    /// The buffer ended before a declared field — a torn or truncated
    /// file.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
        /// Total bytes available.
        len: usize,
    },
    /// A section (or the whole-file footer) failed its CRC32 check.
    ChecksumMismatch {
        /// Which checksum failed (`"NET"`, `"OPT"`, `"PROG"`, `"footer"`).
        section: &'static str,
    },
    /// A decoded matrix violates a shape invariant (layers that do not
    /// chain, bias length vs layer width, …).
    ShapeMismatch {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// An ELLPACK record's implied `nnz = nrows · degree` does not match
    /// its payload.
    DegreeMismatch {
        /// Zero-based layer index.
        layer: usize,
        /// Declared row degree.
        degree: usize,
        /// Values actually present.
        nnz: usize,
    },
    /// Any other structural violation in the byte stream (bad enum
    /// discriminant, out-of-range index, non-canonical section order…).
    Malformed {
        /// Human-readable description.
        detail: String,
    },
    /// The checkpoint is internally valid but cannot resume the run it
    /// was offered to (different architecture, loss, or shuffle seed).
    Incompatible {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "checkpoint version {got} unsupported (newest readable: {supported})"
                )
            }
            CheckpointError::Truncated {
                offset,
                needed,
                len,
            } => write!(
                f,
                "checkpoint truncated: needed {needed} bytes at offset {offset}, file has {len}"
            ),
            CheckpointError::ChecksumMismatch { section } => {
                write!(f, "checkpoint {section} checksum mismatch (corrupt bytes)")
            }
            CheckpointError::ShapeMismatch { detail } => {
                write!(f, "checkpoint shape mismatch: {detail}")
            }
            CheckpointError::DegreeMismatch { layer, degree, nnz } => write!(
                f,
                "checkpoint layer {layer}: degree {degree} inconsistent with {nnz} stored values"
            ),
            CheckpointError::Malformed { detail } => {
                write!(f, "malformed checkpoint: {detail}")
            }
            CheckpointError::Incompatible { detail } => {
                write!(f, "checkpoint incompatible with this run: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The training cursor and bookkeeping a resumed run restarts from.
///
/// Cursor semantics: epochs `0..epoch` are fully complete (their history
/// rows pushed, learning-rate decay applied), plus the first `batch`
/// mini-batches of epoch `epoch`. `batch > 0` implies epoch `epoch`'s
/// shuffle has already been drawn from the RNG.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainProgress {
    /// Epoch the cursor sits in.
    pub epoch: u64,
    /// Mini-batches of that epoch already applied.
    pub batch: u64,
    /// The run's shuffle seed (`TrainConfig::seed`) — resume refuses a
    /// checkpoint recorded under a different seed.
    pub seed: u64,
    /// Partial sum of the current epoch's per-batch losses (exact bits).
    pub epoch_loss: f32,
    /// Per-epoch history of all completed epochs.
    pub history: History,
}

/// A decoded checkpoint: network, optimizer, and training cursor.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The network at the cursor, every value at its exact bit pattern.
    pub net: Network,
    /// The optimizer at the cursor, including per-parameter state.
    pub opt: Optimizer,
    /// Where training stands.
    pub progress: TrainProgress,
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — implemented here
// because the build is offline; no external crate.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the per-section and footer checksum.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Little-endian primitives.
// ---------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_f32(buf: &mut Vec<u8>, v: f32) {
    put_u32(buf, v.to_bits());
}
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Bounds-checked cursor over untrusted bytes: every read is validated
/// against the remaining buffer *before* it happens (and before any
/// allocation is sized from a decoded length), so hostile input can
/// produce only typed errors, never a panic or an OOM.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated {
                offset: self.pos,
                needed: n,
                len: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Validates that a declared element count is physically satisfiable
    /// by the remaining bytes (guarding `Vec` pre-sizing against decoded
    /// lengths like `u64::MAX`), returning it as `usize`.
    fn array_len(&self, count: u64, elem_size: usize) -> Result<usize, CheckpointError> {
        let count_usize = usize::try_from(count).map_err(|_| CheckpointError::Malformed {
            detail: format!("array length {count} exceeds address space"),
        })?;
        let bytes =
            count_usize
                .checked_mul(elem_size)
                .ok_or_else(|| CheckpointError::Malformed {
                    detail: format!("array length {count} overflows"),
                })?;
        if bytes > self.remaining() {
            return Err(CheckpointError::Truncated {
                offset: self.pos,
                needed: bytes,
                len: self.buf.len(),
            });
        }
        Ok(count_usize)
    }

    fn f32_vec(&mut self, count: u64) -> Result<Vec<f32>, CheckpointError> {
        let n = self.array_len(count, 4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f32()?);
        }
        Ok(v)
    }

    fn u32_index_vec(&mut self, count: u64) -> Result<Vec<usize>, CheckpointError> {
        let n = self.array_len(count, 4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()? as usize);
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------
// Encode.
// ---------------------------------------------------------------------

fn act_code(a: Activation) -> u8 {
    match a {
        Activation::Sigmoid => 0,
        Activation::Relu => 1,
        Activation::Tanh => 2,
        Activation::Identity => 3,
    }
}

fn act_from(code: u8) -> Result<Activation, CheckpointError> {
    Ok(match code {
        0 => Activation::Sigmoid,
        1 => Activation::Relu,
        2 => Activation::Tanh,
        3 => Activation::Identity,
        other => {
            return Err(CheckpointError::Malformed {
                detail: format!("unknown activation code {other}"),
            })
        }
    })
}

fn encode_net(net: &Network, buf: &mut Vec<u8>) {
    put_u8(
        buf,
        match net.loss() {
            Loss::Mse => 0,
            Loss::SoftmaxCrossEntropy => 1,
        },
    );
    put_u32(buf, net.layers().len() as u32);
    for layer in net.layers() {
        match layer {
            Layer::Sparse(sl) => {
                let csr = sl.weights();
                put_u8(
                    buf,
                    if sl.prepared().degree().is_some() {
                        KIND_SPARSE_ELL
                    } else {
                        KIND_SPARSE_CSR
                    },
                );
                put_u8(buf, act_code(sl.activation()));
                put_u64(buf, csr.nrows() as u64);
                put_u64(buf, csr.ncols() as u64);
                if let Some(degree) = sl.prepared().degree() {
                    // ELLPACK: constant row degree, indptr implied.
                    put_u32(buf, degree as u32);
                } else {
                    put_u64(buf, csr.nnz() as u64);
                    for &p in csr.indptr() {
                        put_u64(buf, p as u64);
                    }
                }
                for &j in csr.indices() {
                    put_u32(buf, j as u32);
                }
                for &v in csr.data() {
                    put_f32(buf, v);
                }
                for &b in sl.bias() {
                    put_f32(buf, b);
                }
            }
            Layer::Dense(dl) => {
                put_u8(buf, KIND_DENSE);
                put_u8(buf, act_code(dl.activation()));
                let w = dl.weights();
                put_u64(buf, w.nrows() as u64);
                put_u64(buf, w.ncols() as u64);
                for &v in w.as_slice() {
                    put_f32(buf, v);
                }
                for &b in dl.bias() {
                    put_f32(buf, b);
                }
            }
        }
    }
}

/// Serializes one optimizer state table in deterministic (sorted
/// param-id) order, so identical states encode to identical bytes.
fn encode_state_table(table: &HashMap<usize, Vec<f32>>, buf: &mut Vec<u8>) {
    let mut ids: Vec<usize> = table.keys().copied().collect();
    ids.sort_unstable();
    put_u32(buf, ids.len() as u32);
    for id in ids {
        put_u32(buf, id as u32);
        let v = &table[&id];
        put_u64(buf, v.len() as u64);
        for &x in v {
            put_f32(buf, x);
        }
    }
}

fn encode_opt(opt: &Optimizer, buf: &mut Vec<u8>) {
    match opt {
        Optimizer::Sgd { lr } => {
            put_u8(buf, 0);
            put_f32(buf, *lr);
        }
        Optimizer::Momentum { lr, mu, velocity } => {
            put_u8(buf, 1);
            put_f32(buf, *lr);
            put_f32(buf, *mu);
            encode_state_table(velocity, buf);
        }
        Optimizer::Adam {
            lr,
            beta1,
            beta2,
            eps,
            t,
            m,
            v,
        } => {
            put_u8(buf, 2);
            put_f32(buf, *lr);
            put_f32(buf, *beta1);
            put_f32(buf, *beta2);
            put_f32(buf, *eps);
            put_u32(buf, *t);
            encode_state_table(m, buf);
            encode_state_table(v, buf);
        }
    }
}

fn encode_progress(p: &TrainProgress, buf: &mut Vec<u8>) {
    put_u64(buf, p.epoch);
    put_u64(buf, p.batch);
    put_u64(buf, p.seed);
    put_f32(buf, p.epoch_loss);
    put_u32(buf, p.history.losses.len() as u32);
    for &l in &p.history.losses {
        put_f32(buf, l);
    }
    put_u32(buf, p.history.accuracies.len() as u32);
    for &a in &p.history.accuracies {
        put_f64(buf, a);
    }
}

fn put_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    put_u32(out, tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u32(out, crc32(payload));
}

/// Encodes a checkpoint to its complete byte representation (sections,
/// per-section CRCs, whole-file footer). Identical inputs produce
/// identical bytes.
#[must_use]
pub fn encode(net: &Network, opt: &Optimizer, progress: &TrainProgress) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, 3);
    let mut payload = Vec::with_capacity(4096);
    encode_net(net, &mut payload);
    put_section(&mut out, TAG_NET, &payload);
    payload.clear();
    encode_opt(opt, &mut payload);
    put_section(&mut out, TAG_OPT, &payload);
    payload.clear();
    encode_progress(progress, &mut payload);
    put_section(&mut out, TAG_PROG, &payload);
    let footer = crc32(&out);
    put_u32(&mut out, footer);
    out
}

// ---------------------------------------------------------------------
// Decode.
// ---------------------------------------------------------------------

/// Validates CSR structure the kernels rely on without rejecting stored
/// zero values (a trained weight may legitimately pass through 0.0, and
/// round-tripping must preserve exact bits either way).
fn validated_csr(
    layer: usize,
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f32>,
) -> Result<CsrMatrix<f32>, CheckpointError> {
    if indptr.len() != nrows + 1 || indptr[0] != 0 || *indptr.last().unwrap() != indices.len() {
        return Err(CheckpointError::Malformed {
            detail: format!("layer {layer}: inconsistent indptr"),
        });
    }
    if indptr.windows(2).any(|w| w[1] < w[0]) {
        return Err(CheckpointError::Malformed {
            detail: format!("layer {layer}: indptr not monotone"),
        });
    }
    for r in 0..nrows {
        let row = &indices[indptr[r]..indptr[r + 1]];
        if row.windows(2).any(|w| w[1] <= w[0]) || row.last().is_some_and(|&j| j >= ncols) {
            return Err(CheckpointError::Malformed {
                detail: format!("layer {layer}: bad column indices in row {r}"),
            });
        }
    }
    Ok(CsrMatrix::from_parts_unchecked(
        nrows, ncols, indptr, indices, data,
    ))
}

fn decode_net(payload: &[u8]) -> Result<Network, CheckpointError> {
    let r = &mut Reader::new(payload);
    let loss = match r.u8()? {
        0 => Loss::Mse,
        1 => Loss::SoftmaxCrossEntropy,
        other => {
            return Err(CheckpointError::Malformed {
                detail: format!("unknown loss code {other}"),
            })
        }
    };
    let n_layers = r.u32()? as usize;
    if n_layers == 0 {
        return Err(CheckpointError::Malformed {
            detail: "network has zero layers".into(),
        });
    }
    let mut layers = Vec::with_capacity(n_layers.min(1024));
    let mut prev_out: Option<usize> = None;
    for li in 0..n_layers {
        let kind = r.u8()?;
        let act = act_from(r.u8()?)?;
        let nrows_raw = r.u64()?;
        let nrows = usize::try_from(nrows_raw).map_err(|_| CheckpointError::Malformed {
            detail: format!("layer {li}: row count {nrows_raw} exceeds address space"),
        })?;
        let ncols_raw = r.u64()?;
        let ncols = usize::try_from(ncols_raw).map_err(|_| CheckpointError::Malformed {
            detail: format!("layer {li}: column count {ncols_raw} exceeds address space"),
        })?;
        if let Some(p) = prev_out {
            if p != nrows {
                return Err(CheckpointError::ShapeMismatch {
                    detail: format!("layer {li} expects {nrows} inputs, previous layer emits {p}"),
                });
            }
        }
        prev_out = Some(ncols);
        let layer = match kind {
            KIND_SPARSE_ELL => {
                let degree = r.u32()? as usize;
                let nnz = nrows
                    .checked_mul(degree)
                    .ok_or(CheckpointError::DegreeMismatch {
                        layer: li,
                        degree,
                        nnz: usize::MAX,
                    })?;
                if degree > ncols {
                    return Err(CheckpointError::DegreeMismatch {
                        layer: li,
                        degree,
                        nnz,
                    });
                }
                let indices = r.u32_index_vec(nnz as u64)?;
                let data = r.f32_vec(nnz as u64)?;
                let indptr: Vec<usize> = (0..=nrows).map(|i| i * degree).collect();
                let csr = validated_csr(li, nrows, ncols, indptr, indices, data)?;
                let bias = r.f32_vec(ncols as u64)?;
                Layer::Sparse(SparseLinear::with_bias(csr, bias, act))
            }
            KIND_SPARSE_CSR => {
                let nnz = r.u64()?;
                let indptr_len = r.array_len((nrows as u64) + 1, 8)?;
                let mut indptr = Vec::with_capacity(indptr_len);
                for _ in 0..indptr_len {
                    let p = r.u64()?;
                    indptr.push(usize::try_from(p).map_err(|_| CheckpointError::Malformed {
                        detail: format!("layer {li}: indptr entry {p} exceeds address space"),
                    })?);
                }
                let indices = r.u32_index_vec(nnz)?;
                let data = r.f32_vec(nnz)?;
                let csr = validated_csr(li, nrows, ncols, indptr, indices, data)?;
                let bias = r.f32_vec(ncols as u64)?;
                Layer::Sparse(SparseLinear::with_bias(csr, bias, act))
            }
            KIND_DENSE => {
                let n = (nrows as u64).checked_mul(ncols as u64).ok_or_else(|| {
                    CheckpointError::Malformed {
                        detail: format!("layer {li}: dense size overflows"),
                    }
                })?;
                let data = r.f32_vec(n)?;
                let w = DenseMatrix::from_vec(nrows, ncols, data).map_err(|e| {
                    CheckpointError::Malformed {
                        detail: format!("layer {li}: {e}"),
                    }
                })?;
                let bias = r.f32_vec(ncols as u64)?;
                Layer::Dense(DenseLinear::with_bias(w, bias, act))
            }
            other => {
                return Err(CheckpointError::Malformed {
                    detail: format!("layer {li}: unknown layer kind {other}"),
                })
            }
        };
        layers.push(layer);
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed {
            detail: format!("{} trailing bytes in NET section", r.remaining()),
        });
    }
    Ok(Network::new(layers, loss))
}

fn decode_state_table(
    r: &mut Reader<'_>,
    net: &Network,
) -> Result<HashMap<usize, Vec<f32>>, CheckpointError> {
    let n = r.u32()? as usize;
    let mut table = HashMap::with_capacity(n.min(4096));
    let mut prev: Option<usize> = None;
    for _ in 0..n {
        let id = r.u32()? as usize;
        // Sorted, unique ids are the canonical encoding; enforcing it
        // also validates the id range in one place.
        if prev.is_some_and(|p| id <= p) {
            return Err(CheckpointError::Malformed {
                detail: format!("optimizer state ids not strictly increasing at {id}"),
            });
        }
        prev = Some(id);
        let layer = id / 2;
        let Some(l) = net.layers().get(layer) else {
            return Err(CheckpointError::Malformed {
                detail: format!("optimizer state for nonexistent parameter {id}"),
            });
        };
        let (w_len, b_len) = l.param_lens();
        let expect = if id.is_multiple_of(2) { w_len } else { b_len };
        let len = r.u64()?;
        if len != expect as u64 {
            return Err(CheckpointError::ShapeMismatch {
                detail: format!(
                    "optimizer state for parameter {id} has {len} entries, layer needs {expect}"
                ),
            });
        }
        let v = r.f32_vec(len)?;
        table.insert(id, v);
    }
    Ok(table)
}

fn decode_opt(payload: &[u8], net: &Network) -> Result<Optimizer, CheckpointError> {
    let r = &mut Reader::new(payload);
    let opt = match r.u8()? {
        0 => Optimizer::Sgd { lr: r.f32()? },
        1 => {
            let lr = r.f32()?;
            let mu = r.f32()?;
            let velocity = decode_state_table(r, net)?;
            Optimizer::Momentum { lr, mu, velocity }
        }
        2 => {
            let lr = r.f32()?;
            let beta1 = r.f32()?;
            let beta2 = r.f32()?;
            let eps = r.f32()?;
            let t = r.u32()?;
            let m = decode_state_table(r, net)?;
            let v = decode_state_table(r, net)?;
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            }
        }
        other => {
            return Err(CheckpointError::Malformed {
                detail: format!("unknown optimizer code {other}"),
            })
        }
    };
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed {
            detail: format!("{} trailing bytes in OPT section", r.remaining()),
        });
    }
    Ok(opt)
}

fn decode_progress(payload: &[u8]) -> Result<TrainProgress, CheckpointError> {
    let r = &mut Reader::new(payload);
    let epoch = r.u64()?;
    let batch = r.u64()?;
    let seed = r.u64()?;
    let epoch_loss = r.f32()?;
    let n_losses = r.u32()?;
    let mut history = History {
        losses: r.f32_vec(u64::from(n_losses))?,
        ..History::default()
    };
    let n_acc_raw = r.u32()?;
    let n_acc = r.array_len(u64::from(n_acc_raw), 8)?;
    history.accuracies.reserve_exact(n_acc);
    for _ in 0..n_acc {
        history.accuracies.push(r.f64()?);
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed {
            detail: format!("{} trailing bytes in PROG section", r.remaining()),
        });
    }
    Ok(TrainProgress {
        epoch,
        batch,
        seed,
        epoch_loss,
        history,
    })
}

/// Decodes a checkpoint from bytes, validating magic, version, section
/// structure, per-section CRCs, the whole-file footer, and every
/// structural invariant of the payloads.
///
/// # Errors
/// Every malformation maps to a typed [`CheckpointError`]; this function
/// never panics on hostile input.
pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let r = &mut Reader::new(bytes);
    if r.take(MAGIC.len()).map_err(|_| CheckpointError::BadMagic)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            got: version,
            supported: FORMAT_VERSION,
        });
    }
    let n_sections = r.u32()?;
    if n_sections != 3 {
        return Err(CheckpointError::Malformed {
            detail: format!("expected 3 sections, found {n_sections}"),
        });
    }
    let mut sections: Vec<(u32, &[u8])> = Vec::with_capacity(3);
    for (expected_tag, name) in [(TAG_NET, "NET"), (TAG_OPT, "OPT"), (TAG_PROG, "PROG")] {
        let tag = r.u32()?;
        if tag != expected_tag {
            return Err(CheckpointError::Malformed {
                detail: format!("expected section {name}, found tag {tag}"),
            });
        }
        let len_raw = r.u64()?;
        let len = r.array_len(len_raw, 1)?;
        let payload = r.take(len)?;
        let stored_crc = r.u32()?;
        if crc32(payload) != stored_crc {
            return Err(CheckpointError::ChecksumMismatch { section: name });
        }
        sections.push((tag, payload));
    }
    // Whole-file footer: CRC over everything before the final 4 bytes.
    let footer = r.u32()?;
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed {
            detail: format!("{} trailing bytes after footer", r.remaining()),
        });
    }
    if crc32(&bytes[..bytes.len() - 4]) != footer {
        return Err(CheckpointError::ChecksumMismatch { section: "footer" });
    }

    let net = decode_net(sections[0].1)?;
    let opt = decode_opt(sections[1].1, &net)?;
    let progress = decode_progress(sections[2].1)?;
    Ok(Checkpoint { net, opt, progress })
}

// ---------------------------------------------------------------------
// Filesystem layer: atomic write, generation store.
// ---------------------------------------------------------------------

fn tmp_path(path: &Path) -> PathBuf {
    path.with_extension("tmp")
}

/// Writes `bytes` to `path` via the atomic protocol: temp file in the
/// same directory, fsync, rename over the final name, fsync the
/// directory. A crash anywhere leaves either the old file or the new one.
fn write_atomic(path: &Path, bytes: &[u8], fault: WriteFault) -> Result<(), CheckpointError> {
    let tmp = tmp_path(path);
    let mut f = File::create(&tmp)?;
    if let WriteFault::TornCrash { keep } = fault {
        // Simulated crash mid-write: a prefix reaches the disk, the
        // rename never happens, and the stale temp file is left behind
        // for recovery to ignore.
        f.write_all(&bytes[..keep.min(bytes.len())])?;
        let _ = f.sync_all();
        drop(f);
        panic!(
            "{INJECTED_TRAIN_PANIC_MSG}: torn write of {}",
            tmp.display()
        );
    }
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Directory fsync makes the rename itself durable; best-effort
        // (some filesystems refuse opening directories).
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Saves a checkpoint to `path` via [`encode`] and the atomic write
/// protocol.
///
/// # Errors
/// Propagates filesystem errors as [`CheckpointError::Io`].
pub fn save(
    path: &Path,
    net: &Network,
    opt: &Optimizer,
    progress: &TrainProgress,
) -> Result<(), CheckpointError> {
    write_atomic(path, &encode(net, opt, progress), WriteFault::None)
}

/// Loads and fully validates a checkpoint from `path`.
///
/// # Errors
/// [`CheckpointError::Io`] on filesystem failure; the [`decode`] taxonomy
/// on malformed bytes.
pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
    decode(&fs::read(path)?)
}

/// A directory of numbered checkpoint generations
/// (`ckpt-00000001.radix`, `ckpt-00000002.radix`, …) with a retention
/// bound, periodic-save cadence, and fault hooks.
///
/// Recovery contract: [`Checkpointer::load_latest`] walks generations
/// newest-first and returns the first one that passes full validation —
/// a torn or bit-flipped newest generation falls back to the previous
/// good one, and stale `.tmp` files from torn writes are never
/// considered.
#[derive(Debug)]
pub struct Checkpointer {
    dir: PathBuf,
    every: usize,
    keep: usize,
    faults: TrainFaultInjector,
    next_gen: u64,
}

/// Default mid-epoch save cadence, in batches (`RADIX_CKPT_EVERY`).
pub const DEFAULT_CKPT_EVERY: usize = 64;
/// Default generations kept on disk (`RADIX_CKPT_KEEP`). At least 2, so
/// one corrupt newest generation always leaves a fallback.
pub const DEFAULT_CKPT_KEEP: usize = 2;

impl Checkpointer {
    /// Opens (creating if needed) a checkpoint directory. Cadence and
    /// retention come from `RADIX_CKPT_EVERY` / `RADIX_CKPT_KEEP` (env),
    /// defaulting to [`DEFAULT_CKPT_EVERY`] / [`DEFAULT_CKPT_KEEP`];
    /// fault injection from the `RADIX_FAULT_TRAIN_*` /
    /// `RADIX_FAULT_CKPT_*` environment. Builders override all three.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the directory cannot be created or
    /// scanned.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        };
        let mut ck = Checkpointer {
            dir,
            every: parse("RADIX_CKPT_EVERY").unwrap_or(DEFAULT_CKPT_EVERY),
            keep: parse("RADIX_CKPT_KEEP").unwrap_or(DEFAULT_CKPT_KEEP).max(1),
            faults: TrainFaultInjector::from_env(),
            next_gen: 1,
        };
        ck.next_gen = ck.generations()?.last().copied().unwrap_or(0) + 1;
        Ok(ck)
    }

    /// Sets the mid-epoch save cadence in batches (`0` = only at epoch
    /// boundaries).
    #[must_use]
    pub fn with_every(mut self, every: usize) -> Self {
        self.every = every;
        self
    }

    /// Sets how many generations stay on disk (clamped to at least 1).
    #[must_use]
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// Replaces the fault injector (tests pass explicit plans).
    #[must_use]
    pub fn with_faults(mut self, faults: TrainFaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Mid-epoch save cadence in batches (`0` = epoch boundaries only).
    #[must_use]
    pub fn every(&self) -> usize {
        self.every
    }

    /// The fault injector driving this checkpointer's write hooks.
    #[must_use]
    pub fn faults(&self) -> &TrainFaultInjector {
        &self.faults
    }

    /// Path of generation `g`.
    #[must_use]
    pub fn generation_path(&self, g: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{g:08}.radix"))
    }

    /// Committed generation numbers, ascending. Only canonical
    /// `ckpt-NNNNNNNN.radix` names count — `.tmp` leftovers from torn
    /// writes are invisible here by construction.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the directory cannot be read.
    pub fn generations(&self) -> Result<Vec<u64>, CheckpointError> {
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("ckpt-")
                .and_then(|r| r.strip_suffix(".radix"))
            {
                if num.len() == 8 {
                    if let Ok(g) = num.parse::<u64>() {
                        gens.push(g);
                    }
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Writes the next generation atomically (running the fault hooks),
    /// then prunes generations beyond the retention bound. Returns the
    /// committed generation number.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on filesystem failure.
    ///
    /// # Panics
    /// An injected torn-write fault panics mid-write by design (the
    /// simulated crash); see [`crate::fault`].
    pub fn save(
        &mut self,
        net: &Network,
        opt: &mut Optimizer,
        progress: &TrainProgress,
    ) -> Result<u64, CheckpointError> {
        let _ = &opt; // &mut keeps the call-site honest about exclusivity
        let gen = self.next_gen;
        let mut bytes = encode(net, opt, progress);
        let fault = self.faults.checkpoint_fault(gen, &mut bytes);
        write_atomic(&self.generation_path(gen), &bytes, fault)?;
        self.next_gen = gen + 1;
        let gens = self.generations()?;
        if gens.len() > self.keep {
            for &old in &gens[..gens.len() - self.keep] {
                let _ = fs::remove_file(self.generation_path(old));
            }
        }
        Ok(gen)
    }

    /// Loads the newest generation that passes full validation, falling
    /// back through older generations when the newest is torn, flipped,
    /// or otherwise malformed. `Ok(None)` when no valid generation
    /// exists.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the directory itself cannot be read —
    /// individual bad generations are skipped, not errors.
    pub fn load_latest(&self) -> Result<Option<(u64, Checkpoint)>, CheckpointError> {
        for &g in self.generations()?.iter().rev() {
            if let Ok(ck) = load(&self.generation_path(g)) {
                return Ok(Some((g, ck)));
            }
        }
        Ok(None)
    }
}
