//! Classifier evaluation: confusion matrices and per-class metrics.

use radix_sparse::DenseMatrix;

/// A `k × k` confusion matrix: `counts[true][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the confusion matrix from logits and labels.
    ///
    /// # Panics
    /// Panics if row counts mismatch or a label is out of range.
    #[must_use]
    pub fn from_logits(logits: &DenseMatrix<f32>, labels: &[usize], num_classes: usize) -> Self {
        assert_eq!(logits.nrows(), labels.len(), "batch size mismatch");
        let mut counts = vec![vec![0usize; num_classes]; num_classes];
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < num_classes, "label {label} out of range");
            let row = logits.row(i);
            let pred = row
                .iter()
                .take(num_classes)
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0);
            counts[label][pred] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of samples with true class `t` predicted as `p`.
    #[must_use]
    pub fn get(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Overall accuracy.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.num_classes()).map(|c| self.counts[c][c]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision of class `c`: TP / (TP + FP). `None` when the class was
    /// never predicted.
    #[must_use]
    pub fn precision(&self, c: usize) -> Option<f64> {
        let tp = self.counts[c][c];
        let predicted: usize = (0..self.num_classes()).map(|t| self.counts[t][c]).sum();
        (predicted > 0).then(|| tp as f64 / predicted as f64)
    }

    /// Recall of class `c`: TP / (TP + FN). `None` when the class has no
    /// true samples.
    #[must_use]
    pub fn recall(&self, c: usize) -> Option<f64> {
        let tp = self.counts[c][c];
        let actual: usize = self.counts[c].iter().sum();
        (actual > 0).then(|| tp as f64 / actual as f64)
    }

    /// Macro-averaged F1 over classes that have both a defined precision
    /// and recall.
    #[must_use]
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in 0..self.num_classes() {
            if let (Some(p), Some(r)) = (self.precision(c), self.recall(c)) {
                if p + r > 0.0 {
                    sum += 2.0 * p * r / (p + r);
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "true\\pred")?;
        for row in &self.counts {
            for c in row {
                write!(f, "{c:>6}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits_for(preds: &[usize], k: usize) -> DenseMatrix<f32> {
        let mut m = DenseMatrix::zeros(preds.len(), k);
        for (i, &p) in preds.iter().enumerate() {
            m.set(i, p, 1.0);
        }
        m
    }

    #[test]
    fn perfect_predictions() {
        let labels = vec![0, 1, 2, 1];
        let cm = ConfusionMatrix::from_logits(&logits_for(&labels, 3), &labels, 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        for c in 0..3 {
            assert_eq!(cm.precision(c), Some(1.0));
            assert_eq!(cm.recall(c), Some(1.0));
        }
    }

    #[test]
    fn off_diagonal_counts() {
        // True 0 predicted 1 twice; true 1 predicted 1 once.
        let cm = ConfusionMatrix::from_logits(&logits_for(&[1, 1, 1], 2), &[0, 0, 1], 2);
        assert_eq!(cm.get(0, 1), 2);
        assert_eq!(cm.get(1, 1), 1);
        assert!((cm.accuracy() - 1.0 / 3.0).abs() < 1e-12);
        // Class 0 never predicted → precision undefined.
        assert_eq!(cm.precision(0), None);
        assert_eq!(cm.recall(0), Some(0.0));
        assert_eq!(cm.precision(1), Some(1.0 / 3.0));
    }

    #[test]
    fn display_renders() {
        let cm = ConfusionMatrix::from_logits(&logits_for(&[0, 1], 2), &[0, 1], 2);
        let s = cm.to_string();
        assert!(s.contains("true"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn extra_logit_columns_ignored() {
        // A net with more outputs than classes: argmax over first k only.
        let mut m = DenseMatrix::zeros(1, 4);
        m.set(0, 3, 9.0); // outside the 2-class range
        m.set(0, 1, 0.5);
        let cm = ConfusionMatrix::from_logits(&m, &[1], 2);
        assert_eq!(cm.accuracy(), 1.0);
    }
}
