//! Deterministic fault injection for the training and checkpoint paths.
//!
//! The training-side twin of `radix-challenge`'s serving fault injector,
//! and built to the same rules: compiled unconditionally (no feature
//! flag), inactive by default at the cost of a single branch per hook,
//! and sequenced by `Arc`-shared counters so a supervisor restart
//! continues the old schedule instead of re-firing an exhausted fault.
//!
//! Three failure shapes cover the persistence fault surface:
//!
//! * **train-loop panic at the Nth batch**
//!   ([`TrainFaultPlan::panic_at_batch`]) — kills the training run
//!   mid-epoch, driving the `TrainSupervisor` restart-from-checkpoint
//!   path; bounded by [`TrainFaultPlan::panic_budget`],
//! * **torn checkpoint write** ([`TrainFaultPlan::torn_write_gen`]) —
//!   the process "crashes" (panics) after writing only half of a
//!   checkpoint generation's temp file: the atomic-rename protocol must
//!   leave the last good generation untouched and recovery must ignore
//!   the stale temp file,
//! * **checkpoint bit flip** ([`TrainFaultPlan::bit_flip_gen`]) — one
//!   bit of a generation's encoded bytes is flipped before the (fully
//!   committed) write: validation on load must reject the generation
//!   with a checksum error and fall back to the previous one.
//!
//! Activation routes: construct a [`TrainFaultPlan`] and hand the
//! injector to a `Checkpointer`, or set the environment variables (read
//! by [`TrainFaultInjector::from_env`]):
//!
//! | variable | meaning |
//! |---|---|
//! | `RADIX_FAULT_TRAIN_PANIC_BATCH` | panic the training loop at this (1-based, cumulative) batch |
//! | `RADIX_FAULT_TRAIN_PANIC_BUDGET` | how many injected train panics may fire in total (default 1) |
//! | `RADIX_FAULT_CKPT_TORN_WRITE` | tear (half-write, then crash) the write of this checkpoint generation (1-based) |
//! | `RADIX_FAULT_CKPT_BIT_FLIP` | flip one bit in the encoded bytes of this checkpoint generation (1-based) |

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Message prefix of every injected training-path panic — recovery tests
/// match on it to distinguish injected faults from genuine bugs.
pub const INJECTED_TRAIN_PANIC_MSG: &str = "injected train fault";

/// What the checkpoint writer must do with the bytes it was about to
/// commit, as decided by [`TrainFaultInjector::checkpoint_fault`]. Bit
/// flips are applied to the byte buffer directly (the write then commits
/// normally); a torn write is a *protocol* fault, so it is returned for
/// the writer to act out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteFault {
    /// Commit normally.
    #[default]
    None,
    /// Write only the first `keep` bytes of the temp file, fsync, then
    /// panic — simulating a crash mid-write, before the atomic rename.
    TornCrash {
        /// Bytes that reach the temp file before the "crash".
        keep: usize,
    },
}

/// A declarative schedule of training/persistence faults. Plain data
/// (`Copy`, comparable) so tests can generate, shrink, and print plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrainFaultPlan {
    /// Panic the training loop when the cumulative batch count (1-based,
    /// shared across supervisor restarts) reaches this value; `None`
    /// injects no panics.
    pub panic_at_batch: Option<u64>,
    /// Total injected train panics allowed. Ignored when
    /// `panic_at_batch` is `None`.
    pub panic_budget: u32,
    /// Tear the write of this checkpoint generation (1-based): half the
    /// temp file is written, then the "process" crashes (panics) before
    /// the atomic rename. Fires at most once.
    pub torn_write_gen: Option<u64>,
    /// Flip one bit in the encoded bytes of this checkpoint generation
    /// (1-based) before a fully-committed write. Fires at most once.
    pub bit_flip_gen: Option<u64>,
}

impl TrainFaultPlan {
    /// Whether this plan injects anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.panic_at_batch.is_some()
            || self.torn_write_gen.is_some()
            || self.bit_flip_gen.is_some()
    }
}

/// A [`TrainFaultPlan`] plus the shared mutable state that sequences it.
/// Clones share the counters (`Arc`), which is what makes the plan
/// meaningful across supervisor restarts — a resumed training run
/// continues the old batch count and cannot re-fire an exhausted fault.
#[derive(Debug, Clone)]
pub struct TrainFaultInjector {
    plan: TrainFaultPlan,
    /// Batches executed so far, across every training generation.
    batches: Arc<AtomicU64>,
    /// Injected train panics still allowed.
    panics_left: Arc<AtomicU32>,
    /// Torn writes still allowed (0 or 1).
    torn_left: Arc<AtomicU32>,
    /// Bit flips still allowed (0 or 1).
    flips_left: Arc<AtomicU32>,
    /// Cached `plan.is_active()` — the only thing the happy path reads.
    active: bool,
}

impl Default for TrainFaultInjector {
    fn default() -> Self {
        Self::inactive()
    }
}

impl TrainFaultInjector {
    /// An injector that never fires; every hook is a single branch.
    #[must_use]
    pub fn inactive() -> Self {
        Self::new(TrainFaultPlan::default())
    }

    /// An injector executing `plan` from a zero batch count.
    #[must_use]
    pub fn new(plan: TrainFaultPlan) -> Self {
        TrainFaultInjector {
            active: plan.is_active(),
            batches: Arc::new(AtomicU64::new(0)),
            panics_left: Arc::new(AtomicU32::new(if plan.panic_at_batch.is_some() {
                plan.panic_budget.max(1)
            } else {
                0
            })),
            torn_left: Arc::new(AtomicU32::new(u32::from(plan.torn_write_gen.is_some()))),
            flips_left: Arc::new(AtomicU32::new(u32::from(plan.bit_flip_gen.is_some()))),
            plan,
        }
    }

    /// Builds the plan from the `RADIX_FAULT_TRAIN_*` / `RADIX_FAULT_CKPT_*`
    /// environment (all unset → inactive). See the module docs for the
    /// variable table.
    #[must_use]
    pub fn from_env() -> Self {
        let parse = |name: &str| -> Option<u64> {
            std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok())
        };
        Self::new(TrainFaultPlan {
            panic_at_batch: parse("RADIX_FAULT_TRAIN_PANIC_BATCH").filter(|&n| n > 0),
            panic_budget: parse("RADIX_FAULT_TRAIN_PANIC_BUDGET")
                .map_or(1, |n| n.min(u64::from(u32::MAX)) as u32),
            torn_write_gen: parse("RADIX_FAULT_CKPT_TORN_WRITE").filter(|&n| n > 0),
            bit_flip_gen: parse("RADIX_FAULT_CKPT_BIT_FLIP").filter(|&n| n > 0),
        })
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> TrainFaultPlan {
        self.plan
    }

    /// Batches executed so far across every training generation sharing
    /// this injector.
    #[must_use]
    pub fn batches_seen(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Training-loop hook, called at the top of every mini-batch step
    /// (before any parameter is touched, so a panic here loses at most
    /// the work since the last checkpoint). Counts the batch; panics
    /// when the schedule says so.
    ///
    /// # Panics
    /// Panics (message prefixed [`INJECTED_TRAIN_PANIC_MSG`]) when the
    /// cumulative batch count reaches [`TrainFaultPlan::panic_at_batch`]
    /// and the panic budget is not exhausted.
    pub fn before_batch(&self) {
        if !self.active {
            return;
        }
        let seq = self.batches.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(at) = self.plan.panic_at_batch {
            if seq >= at {
                let fired = self
                    .panics_left
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| p.checked_sub(1))
                    .is_ok();
                if fired {
                    panic!("{INJECTED_TRAIN_PANIC_MSG} at batch {seq}");
                }
            }
        }
    }

    /// Checkpoint-writer hook, called with a generation's encoded bytes
    /// just before they hit disk. A scheduled bit flip mutates `bytes`
    /// in place (the write then commits normally, carrying the
    /// corruption); a scheduled torn write is returned as
    /// [`WriteFault::TornCrash`] for the writer to act out. Each file
    /// fault fires at most once across every clone of this injector.
    pub fn checkpoint_fault(&self, generation: u64, bytes: &mut [u8]) -> WriteFault {
        if !self.active {
            return WriteFault::None;
        }
        if self.plan.bit_flip_gen == Some(generation)
            && self
                .flips_left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| p.checked_sub(1))
                .is_ok()
            && !bytes.is_empty()
        {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x10;
        }
        if self.plan.torn_write_gen == Some(generation)
            && self
                .torn_left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| p.checked_sub(1))
                .is_ok()
        {
            return WriteFault::TornCrash {
                keep: bytes.len() / 2,
            };
        }
        WriteFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_injector_never_fires() {
        let f = TrainFaultInjector::inactive();
        assert!(!f.plan().is_active());
        let mut bytes = vec![0xAAu8; 64];
        for _ in 0..100 {
            f.before_batch(); // must not panic
            assert_eq!(f.checkpoint_fault(1, &mut bytes), WriteFault::None);
        }
        assert_eq!(bytes, vec![0xAAu8; 64], "inactive hooks do not mutate");
        assert_eq!(f.batches_seen(), 0, "inactive hooks do not even count");
    }

    #[test]
    fn panic_fires_at_scheduled_batch_and_respects_budget() {
        let f = TrainFaultInjector::new(TrainFaultPlan {
            panic_at_batch: Some(3),
            panic_budget: 1,
            ..TrainFaultPlan::default()
        });
        f.before_batch();
        f.before_batch();
        let caught = std::panic::catch_unwind(|| f.before_batch());
        assert!(caught.is_err(), "third batch must panic");
        for _ in 0..10 {
            f.before_batch(); // budget spent: runs clean forever
        }
        assert_eq!(f.batches_seen(), 13);
    }

    #[test]
    fn clones_share_the_schedule_across_generations() {
        let f = TrainFaultInjector::new(TrainFaultPlan {
            panic_at_batch: Some(2),
            panic_budget: 2,
            ..TrainFaultPlan::default()
        });
        let gen2 = f.clone();
        f.before_batch();
        assert!(std::panic::catch_unwind(|| f.before_batch()).is_err());
        assert!(std::panic::catch_unwind(|| gen2.before_batch()).is_err());
        gen2.before_batch();
        assert_eq!(f.batches_seen(), gen2.batches_seen());
    }

    #[test]
    fn bit_flip_mutates_scheduled_generation_once() {
        let f = TrainFaultInjector::new(TrainFaultPlan {
            bit_flip_gen: Some(2),
            ..TrainFaultPlan::default()
        });
        let clean = vec![0u8; 32];
        let mut bytes = clean.clone();
        assert_eq!(f.checkpoint_fault(1, &mut bytes), WriteFault::None);
        assert_eq!(bytes, clean, "unscheduled generation untouched");
        assert_eq!(f.checkpoint_fault(2, &mut bytes), WriteFault::None);
        assert_ne!(bytes, clean, "scheduled generation flipped");
        let mut again = clean.clone();
        assert_eq!(f.checkpoint_fault(2, &mut again), WriteFault::None);
        assert_eq!(again, clean, "a file fault fires at most once");
    }

    #[test]
    fn torn_write_returns_half_length_once() {
        let f = TrainFaultInjector::new(TrainFaultPlan {
            torn_write_gen: Some(1),
            ..TrainFaultPlan::default()
        });
        let mut bytes = vec![0u8; 100];
        assert_eq!(
            f.checkpoint_fault(1, &mut bytes),
            WriteFault::TornCrash { keep: 50 }
        );
        assert_eq!(f.checkpoint_fault(1, &mut bytes), WriteFault::None);
    }

    #[test]
    fn env_parsing_defaults_to_inactive() {
        let f = TrainFaultInjector::from_env();
        assert!(!f.plan().is_active());
    }
}
