//! Weight initialization over sparse structure.
//!
//! For a sparse layer, the effective fan-in of an output unit is its
//! *in-degree*, not the full input width — initializing by full-width
//! Xavier/He systematically under-scales sparse nets and is one of the
//! classic pitfalls when comparing sparse to dense training (companion work
//! \[15\] normalizes the same way).

use rand::Rng;

use radix_sparse::{CscMatrix, CsrMatrix, Scalar};

/// Initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Uniform in `±sqrt(6 / (fan_in + fan_out))` (Glorot/Xavier) — paired
    /// with sigmoid/tanh.
    Xavier,
    /// Normal with std `sqrt(2 / fan_in)` (He) — paired with ReLU.
    He,
    /// All weights set to a constant (degenerate; for tests).
    Constant(i32),
}

impl Init {
    fn sample<R: Rng>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> f32 {
        match self {
            Init::Xavier => {
                let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
                rng.gen_range(-bound..=bound)
            }
            Init::He => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt() as f32;
                // Box–Muller from two uniforms; rand's StandardNormal lives
                // in rand_distr, which we avoid pulling in for one sampler.
                let u1: f32 = rng.gen_range(1e-7f32..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                z * std
            }
            Init::Constant(milli) => milli as f32 / 1000.0,
        }
    }
}

/// Initializes weights on a sparse pattern: the weight of edge `(i, j)` is
/// drawn with `fan_in = in-degree(j)` and `fan_out = out-degree(i)` — the
/// *structural* fan computed from the pattern itself.
///
/// Returns a matrix with the same pattern and fresh values. Weights of
/// exactly zero are nudged to a small epsilon so the sparsity pattern is
/// preserved (a stored zero would be dropped by the CSR invariant).
#[must_use]
pub fn init_sparse<R: Rng>(pattern: &CsrMatrix<u64>, scheme: Init, rng: &mut R) -> CsrMatrix<f32> {
    let col_deg = pattern.col_degrees();
    let mut indptr = Vec::with_capacity(pattern.nrows() + 1);
    let mut indices = Vec::with_capacity(pattern.nnz());
    let mut data = Vec::with_capacity(pattern.nnz());
    indptr.push(0);
    for i in 0..pattern.nrows() {
        let (cols, _) = pattern.row(i);
        let fan_out = cols.len();
        for &j in cols {
            let mut w = scheme.sample(col_deg[j], fan_out, rng);
            if w == 0.0 {
                w = 1e-6;
            }
            indices.push(j);
            data.push(w);
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts_unchecked(pattern.nrows(), pattern.ncols(), indptr, indices, data)
}

/// Initializes a dense weight matrix with the given scheme
/// (`fan_in = nrows`, `fan_out = ncols`).
#[must_use]
pub fn init_dense<R: Rng>(
    nrows: usize,
    ncols: usize,
    scheme: Init,
    rng: &mut R,
) -> radix_sparse::DenseMatrix<f32> {
    let mut m = radix_sparse::DenseMatrix::zeros(nrows, ncols);
    for i in 0..nrows {
        let row: &mut [f32] = m.row_mut(i);
        for v in row.iter_mut() {
            *v = scheme.sample(nrows, ncols, rng);
        }
    }
    m
}

/// Builds the CSC mirror of a CSR weight matrix (used by layers that
/// iterate columns on the backward pass).
#[must_use]
pub fn csc_mirror<T: Scalar>(w: &CsrMatrix<T>) -> CscMatrix<T> {
    w.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use radix_sparse::CyclicShift;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pattern_preserved() {
        let pattern: CsrMatrix<u64> = CyclicShift::radix_submatrix(16, 4, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let w = init_sparse(&pattern, Init::Xavier, &mut rng);
        assert!(w.same_pattern(&pattern));
    }

    #[test]
    fn xavier_within_bounds() {
        let pattern: CsrMatrix<u64> = CyclicShift::radix_submatrix(32, 4, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let w = init_sparse(&pattern, Init::Xavier, &mut rng);
        // fan_in = fan_out = 4 → bound = sqrt(6/8) ≈ 0.866.
        let bound = (6.0f32 / 8.0).sqrt() + 1e-6;
        assert!(w.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn he_std_scales_with_fan_in() {
        // Empirical std over many samples ≈ sqrt(2/fan_in).
        let pattern: CsrMatrix<u64> = CyclicShift::radix_submatrix(512, 8, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let w = init_sparse(&pattern, Init::He, &mut rng);
        let n = w.nnz() as f32;
        let mean: f32 = w.data().iter().sum::<f32>() / n;
        let var: f32 = w.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        let expect = 2.0 / 8.0;
        assert!(
            (var - expect).abs() < 0.05,
            "sample var {var} vs expected {expect}"
        );
    }

    #[test]
    fn seeded_init_deterministic() {
        let pattern: CsrMatrix<u64> = CyclicShift::radix_submatrix(8, 2, 1);
        let a = init_sparse(&pattern, Init::Xavier, &mut StdRng::seed_from_u64(7));
        let b = init_sparse(&pattern, Init::Xavier, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn constant_init() {
        let pattern: CsrMatrix<u64> = CyclicShift::radix_submatrix(4, 2, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let w = init_sparse(&pattern, Init::Constant(500), &mut rng);
        assert!(w.data().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn dense_init_shape_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = init_dense(10, 20, Init::Xavier, &mut rng);
        assert_eq!(m.shape(), (10, 20));
        assert!(m.count_nonzero() > 150, "almost all entries nonzero");
    }
}
