//! Sparse and dense linear layers with activations: forward and backward.
//!
//! A sparse layer's weights live on a fixed topology (a RadiX-Net or X-Net
//! adjacency pattern); training updates the values but never the pattern —
//! the "de novo sparse" regime of the paper (§I), as opposed to pruning.

use rayon::prelude::*;

use radix_sparse::kernel::use_parallel;
use radix_sparse::{
    AsDenseView, Bias, CsrMatrix, DenseMatrix, DenseView, Epilogue, PreparedWeights,
};

use crate::activation::Activation;

/// Gradients of one layer's parameters, laid out to match the layer's own
/// parameter storage (`w` parallel to the weight values, `b` to the bias).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrads {
    /// Weight gradients (CSR value order for sparse, row-major for dense).
    pub w: Vec<f32>,
    /// Bias gradients.
    pub b: Vec<f32>,
}

impl LayerGrads {
    /// Creates zero gradients with the given sizes.
    #[must_use]
    pub fn zeros(w_len: usize, b_len: usize) -> Self {
        LayerGrads {
            w: vec![0.0; w_len],
            b: vec![0.0; b_len],
        }
    }

    /// Accumulates `other · scale` into `self` (used to combine per-chunk
    /// gradients in data-parallel training).
    pub fn add_scaled(&mut self, other: &LayerGrads, scale: f32) {
        for (a, &o) in self.w.iter_mut().zip(&other.w) {
            *a += o * scale;
        }
        for (a, &o) in self.b.iter_mut().zip(&other.b) {
            *a += o * scale;
        }
    }

    /// Resizes to the given lengths and zero-fills, reusing allocations —
    /// the gradient analogue of `DenseMatrix::resize_zeroed`.
    pub fn resize_zeroed(&mut self, w_len: usize, b_len: usize) {
        self.w.clear();
        self.w.resize(w_len, 0.0);
        self.b.clear();
        self.b.resize(b_len, 0.0);
    }

    /// Resizes **without** clearing: retained elements keep stale values
    /// (newly grown ones are zero) — the gradient analogue of
    /// `DenseMatrix::resize_for_overwrite`, for buffers whose every
    /// element is about to be assigned (the data-parallel reduction
    /// target). Callers must write every element before reading any.
    pub fn resize_for_overwrite(&mut self, w_len: usize, b_len: usize) {
        self.w.resize(w_len, 0.0);
        self.b.resize(b_len, 0.0);
    }
}

/// A linear layer with a sparse weight matrix and per-output bias. The
/// weights are held as [`PreparedWeights`]: RadiX-Net/X-Net patterns have
/// constant row degree, so forward/backward run on the ELL fast path with
/// the bias + activation epilogue fused into the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseLinear {
    w: PreparedWeights<f32>,
    b: Vec<f32>,
    act: Activation,
}

/// A conventional dense linear layer (the baseline the paper's sparse nets
/// are compared against).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLinear {
    w: DenseMatrix<f32>,
    b: Vec<f32>,
    act: Activation,
}

/// Either kind of layer; networks hold a `Vec<Layer>` so sparse and dense
/// topologies train through identical code.
///
/// # Example: forward and backward through one sparse layer
///
/// ```
/// use radix_nn::{Activation, Layer, SparseLinear};
/// use radix_sparse::{CsrMatrix, DenseMatrix};
///
/// let w = CsrMatrix::from_dense(&DenseMatrix::from_rows(&[
///     &[0.5f32, 0.0],
///     &[0.0, 0.25],
/// ]));
/// let layer = Layer::Sparse(SparseLinear::new(w, Activation::Relu));
/// let x = DenseMatrix::from_rows(&[&[2.0f32, -4.0]]);
/// let mut y = DenseMatrix::default();
/// layer.forward_into(&x, &mut y); // act(X · W + b), fused epilogue
/// assert_eq!(y.row(0), &[1.0, 0.0]);
/// // Backward: parameter grads + input grads via the tiled transposed
/// // kernel (hot loops pass reused buffers to backward_into instead).
/// let (grads, grad_in) = layer.backward(&x, &y, &y);
/// assert_eq!(grads.b.len(), 2);
/// assert_eq!(grad_in.shape(), (1, 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Sparse-topology linear layer.
    Sparse(SparseLinear),
    /// Fully-connected linear layer.
    Dense(DenseLinear),
}

impl SparseLinear {
    /// Creates a sparse layer from weights and activation; bias starts at
    /// 0. The weight matrix is prepared once here (constant-row-degree
    /// detection for the ELL fast path).
    #[must_use]
    pub fn new(w: CsrMatrix<f32>, act: Activation) -> Self {
        let b = vec![0.0; w.ncols()];
        SparseLinear {
            w: PreparedWeights::from_csr(w),
            b,
            act,
        }
    }

    /// Creates a sparse layer with an explicit bias vector (checkpoint
    /// restore; [`SparseLinear::new`] zero-initializes instead).
    ///
    /// # Panics
    /// Panics if `b.len() != w.ncols()`.
    #[must_use]
    pub fn with_bias(w: CsrMatrix<f32>, b: Vec<f32>, act: Activation) -> Self {
        assert_eq!(b.len(), w.ncols(), "bias length must match output width");
        SparseLinear {
            w: PreparedWeights::from_csr(w),
            b,
            act,
        }
    }

    /// The weight matrix in CSR form.
    #[must_use]
    pub fn weights(&self) -> &CsrMatrix<f32> {
        self.w.as_csr()
    }

    /// The per-output bias vector.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// The layer's activation function.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// The prepared weight matrix the kernels actually run on.
    #[must_use]
    pub fn prepared(&self) -> &PreparedWeights<f32> {
        &self.w
    }

    /// Builds the column-tiled layout for cache-blocked forward products
    /// (`RADIX_TILE_COLS`-wide tiles; narrow layers stay untiled). Worth
    /// calling on a **frozen** network before inference-heavy use; a
    /// training update (`apply_update`) drops the tiles again, since they
    /// hold a reordered copy of the weight values.
    pub fn tile(&mut self) -> bool {
        self.w.tile()
    }

    /// Number of trainable parameters (weights + biases).
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.w.nnz() + self.b.len()
    }
}

impl DenseLinear {
    /// Creates a dense layer from weights and activation; bias starts at 0.
    #[must_use]
    pub fn new(w: DenseMatrix<f32>, act: Activation) -> Self {
        let b = vec![0.0; w.ncols()];
        DenseLinear { w, b, act }
    }

    /// Creates a dense layer with an explicit bias vector (checkpoint
    /// restore; [`DenseLinear::new`] zero-initializes instead).
    ///
    /// # Panics
    /// Panics if `b.len() != w.ncols()`.
    #[must_use]
    pub fn with_bias(w: DenseMatrix<f32>, b: Vec<f32>, act: Activation) -> Self {
        assert_eq!(b.len(), w.ncols(), "bias length must match output width");
        DenseLinear { w, b, act }
    }

    /// The weight matrix.
    #[must_use]
    pub fn weights(&self) -> &DenseMatrix<f32> {
        &self.w
    }

    /// The per-output bias vector.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// The layer's activation function.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Number of trainable parameters (weights + biases).
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.w.nrows() * self.w.ncols() + self.b.len()
    }
}

impl Layer {
    /// Input width.
    #[must_use]
    pub fn n_in(&self) -> usize {
        match self {
            Layer::Sparse(l) => l.w.nrows(),
            Layer::Dense(l) => l.w.nrows(),
        }
    }

    /// Output width.
    #[must_use]
    pub fn n_out(&self) -> usize {
        match self {
            Layer::Sparse(l) => l.w.ncols(),
            Layer::Dense(l) => l.w.ncols(),
        }
    }

    /// The layer's activation function.
    #[must_use]
    pub fn activation(&self) -> Activation {
        match self {
            Layer::Sparse(l) => l.act,
            Layer::Dense(l) => l.act,
        }
    }

    /// Number of trainable parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        match self {
            Layer::Sparse(l) => l.num_params(),
            Layer::Dense(l) => l.num_params(),
        }
    }

    /// Forward pass: `act(X · W + b)` for batch-major `X`.
    ///
    /// Allocates a fresh output; hot loops should use
    /// [`Layer::forward_into`] with a reused buffer instead.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    #[must_use]
    pub fn forward(&self, x: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let mut out = DenseMatrix::zeros(0, 0);
        self.forward_into(x, &mut out);
        out
    }

    /// Forward pass into a caller-provided buffer: `out ← act(X · W + b)`.
    ///
    /// `out` is resized in place (reusing its allocation when possible).
    /// Sparse layers run the prepared kernel with the bias + activation
    /// epilogue fused into the product; serial vs Rayon is chosen by the
    /// shared `radix_sparse::kernel` work heuristic. `x` may be an owned
    /// matrix or a zero-copy row-range view — the data-parallel training
    /// path feeds each worker its batch chunk as a `DenseView`.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    pub fn forward_into(&self, x: &impl AsDenseView<f32>, out: &mut DenseMatrix<f32>) {
        match self {
            Layer::Sparse(l) => {
                let act = l.act;
                let epi = Epilogue::new(Bias::PerOutput(&l.b), move |v: f32| act.apply(v));
                // Tiled-aware: layers tiled via SparseLinear::tile run the
                // cache-blocked schedule, untrained/untiled layers fall
                // back to the plain ELL walk (bitwise-identical results).
                l.w.spmm_tiled_auto_into(x, out, &epi)
                    .expect("layer width mismatch");
            }
            Layer::Dense(l) => {
                x.as_view()
                    .matmul_into(&l.w, out)
                    .expect("layer width mismatch");
                for i in 0..out.nrows() {
                    let row: &mut [f32] = out.row_mut(i);
                    for (v, &bias) in row.iter_mut().zip(&l.b) {
                        *v += bias;
                    }
                    l.act.apply_slice(row);
                }
            }
        }
    }

    /// Backward pass. Given the layer input `x`, its forward output `out`
    /// (post-activation), and the loss gradient `grad_out` w.r.t. `out`,
    /// returns the parameter gradients and the loss gradient w.r.t. `x`.
    ///
    /// # Panics
    /// Panics on shape mismatches between `x`, `out`, and `grad_out`.
    #[must_use]
    pub fn backward(
        &self,
        x: &DenseMatrix<f32>,
        out: &DenseMatrix<f32>,
        grad_out: &DenseMatrix<f32>,
    ) -> (LayerGrads, DenseMatrix<f32>) {
        let mut delta = grad_out.clone();
        let mut grads = LayerGrads::zeros(0, 0);
        let mut grad_in = DenseMatrix::zeros(0, 0);
        self.backward_into(x, out, &mut delta, &mut grads, &mut grad_in);
        (grads, grad_in)
    }

    /// Backward pass into caller-provided buffers. On entry `delta` must
    /// hold the loss gradient w.r.t. `out`; it is scaled by `act'(out)` in
    /// place (becoming scratch). `grads` and `grad_in` are resized
    /// (reusing allocations) and filled.
    ///
    /// Sparse layers run entirely on the prepared engine: the weight
    /// gradients accumulate through the pool's allocation-free chunk
    /// dispatch, and the input gradient `delta · Wᵀ` runs the **tiled
    /// transposed** kernel (`spmm_transposed_tiled_auto_into`), which is
    /// zero-copy over the ELL layout — so wide training layers get the
    /// cache-blocked schedule without ever calling
    /// [`SparseLinear::tile`], and a steady-state train step performs no
    /// heap allocation (`tests/zero_alloc.rs` pins this down).
    ///
    /// # Panics
    /// Panics on shape mismatches between `x`, `out`, and `delta`.
    pub fn backward_into(
        &self,
        x: &impl AsDenseView<f32>,
        out: &DenseMatrix<f32>,
        delta: &mut DenseMatrix<f32>,
        grads: &mut LayerGrads,
        grad_in: &mut DenseMatrix<f32>,
    ) {
        let x = x.as_view();
        assert_eq!(out.shape(), delta.shape(), "output/grad shape mismatch");
        assert_eq!(x.nrows(), out.nrows(), "batch size mismatch");
        let act = self.activation();
        // delta ← delta ⊙ act'(out), in place.
        for i in 0..delta.nrows() {
            let drow: &mut [f32] = delta.row_mut(i);
            let orow = out.row(i);
            for (d, &o) in drow.iter_mut().zip(orow) {
                *d *= act.derivative_from_output(o);
            }
        }

        let (w_len, b_len) = self.param_lens();
        grads.resize_zeroed(w_len, b_len);
        for i in 0..delta.nrows() {
            for (a, &d) in grads.b.iter_mut().zip(delta.row(i)) {
                *a += d;
            }
        }

        match self {
            Layer::Sparse(l) => {
                sparse_weight_grads_into(&l.w, x, delta.view(), &mut grads.w);
                // The backward orientation needs no prebuilt tiles: the
                // transpose's gather layout is the ELL storage itself.
                l.w.spmm_transposed_tiled_auto_into(delta, grad_in, &Epilogue::identity())
                    .expect("delta width matches weight columns");
            }
            Layer::Dense(l) => {
                // grad_w[i, j] = Σ_b x[b, i] · delta[b, j], accumulated
                // straight into the (zeroed) workspace buffer — no
                // transpose temp, no allocate-then-copy.
                let n_out = l.w.ncols();
                for b in 0..x.nrows() {
                    let xrow = x.row(b);
                    let drow = delta.row(b);
                    for (i, &xv) in xrow.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        let seg = &mut grads.w[i * n_out..(i + 1) * n_out];
                        for (g, &d) in seg.iter_mut().zip(drow) {
                            *g += xv * d;
                        }
                    }
                }
                delta
                    .matmul_transposed_into(&l.w, grad_in)
                    .expect("delta width matches weight columns");
            }
        }
    }

    /// Applies a scaled update `param -= delta` elementwise, where `delta`
    /// is laid out like [`LayerGrads`] (optimizers compute `delta` from raw
    /// gradients and call this).
    ///
    /// # Panics
    /// Panics if the update lengths do not match the parameter counts.
    pub fn apply_update(&mut self, w_delta: &[f32], b_delta: &[f32]) {
        match self {
            Layer::Sparse(l) => {
                assert_eq!(w_delta.len(), l.w.nnz(), "weight update length");
                for (w, &d) in l.w.values_mut().iter_mut().zip(w_delta) {
                    *w -= d;
                }
                assert_eq!(b_delta.len(), l.b.len(), "bias update length");
                for (b, &d) in l.b.iter_mut().zip(b_delta) {
                    *b -= d;
                }
            }
            Layer::Dense(l) => {
                assert_eq!(
                    w_delta.len(),
                    l.w.nrows() * l.w.ncols(),
                    "weight update length"
                );
                for (w, &d) in l.w.as_mut_slice().iter_mut().zip(w_delta) {
                    *w -= d;
                }
                assert_eq!(b_delta.len(), l.b.len(), "bias update length");
                for (b, &d) in l.b.iter_mut().zip(b_delta) {
                    *b -= d;
                }
            }
        }
    }

    /// Lengths of the parameter vectors as `(weights, biases)` — the shape
    /// optimizers size their state with.
    #[must_use]
    pub fn param_lens(&self) -> (usize, usize) {
        match self {
            Layer::Sparse(l) => (l.w.nnz(), l.b.len()),
            Layer::Dense(l) => (l.w.nrows() * l.w.ncols(), l.b.len()),
        }
    }
}

/// Gradients of the structural nonzeros only:
/// `grad_w[(i,j)] = Σ_b x[b,i] · delta[b,j]`, in CSR (= ELL) value order,
/// written into the caller's (already zeroed) buffer.
///
/// At constant degree (every RadiX/X-Net layer) the flat gradient vector
/// partitions into `degree`-sized per-row segments, so the parallel path
/// runs on the persistent pool's **allocation-free** chunk dispatch
/// (`rayon::for_each_chunk_mut`, chunk index = weight row) — this is what
/// keeps the steady-state train step heap-silent. Irregular CSR layers
/// still parallelize (a per-row segment list is materialized per call —
/// they sit outside the zero-alloc RadiX regime); small products walk
/// `indptr` slices serially. The serial-vs-pool switch is the shared
/// `radix_sparse::kernel` heuristic.
fn sparse_weight_grads_into(
    w: &PreparedWeights<f32>,
    x: DenseView<'_, f32>,
    delta: DenseView<'_, f32>,
    grads: &mut [f32],
) {
    let csr = w.as_csr();
    assert_eq!(grads.len(), csr.nnz(), "gradient buffer length");
    if grads.is_empty() {
        return;
    }
    let row_grads = |i: usize, seg: &mut [f32]| {
        let (cols, _) = csr.row(i);
        for b in 0..x.nrows() {
            let xv = x.get(b, i);
            if xv == 0.0 {
                continue;
            }
            let drow = delta.row(b);
            for (g, &j) in seg.iter_mut().zip(cols) {
                *g += xv * drow[j];
            }
        }
    };
    let parallel = use_parallel(w.work(x.nrows()));
    match w.degree() {
        Some(d) if d > 0 && parallel => {
            rayon::for_each_chunk_mut(grads, d, row_grads);
        }
        None if parallel => {
            // Irregular rows: split the flat vector into per-row segments
            // (CSR rows partition the value array) and fan out.
            let mut segments: Vec<(usize, &mut [f32])> = Vec::with_capacity(csr.nrows());
            let mut rest = grads;
            for i in 0..csr.nrows() {
                let (seg, tail) = rest.split_at_mut(csr.row_nnz(i));
                segments.push((i, seg));
                rest = tail;
            }
            segments
                .into_par_iter()
                .for_each(|(i, seg)| row_grads(i, seg));
        }
        _ => {
            let indptr = csr.indptr();
            for i in 0..csr.nrows() {
                row_grads(i, &mut grads[indptr[i]..indptr[i + 1]]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{init_sparse, Init};
    use radix_sparse::CyclicShift;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sparse_layer(act: Activation) -> Layer {
        let pattern: CsrMatrix<u64> = CyclicShift::radix_submatrix(6, 3, 1);
        let mut rng = StdRng::seed_from_u64(5);
        Layer::Sparse(SparseLinear::new(
            init_sparse(&pattern, Init::Xavier, &mut rng),
            act,
        ))
    }

    fn dense_layer(act: Activation) -> Layer {
        let mut rng = StdRng::seed_from_u64(5);
        Layer::Dense(DenseLinear::new(
            crate::init::init_dense(6, 6, Init::Xavier, &mut rng),
            act,
        ))
    }

    fn random_batch(rows: usize, cols: usize, seed: u64) -> DenseMatrix<f32> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            let row: &mut [f32] = x.row_mut(i);
            for v in row.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
        }
        x
    }

    #[test]
    fn forward_shapes() {
        let l = sparse_layer(Activation::Relu);
        let x = random_batch(4, 6, 0);
        let y = l.forward(&x);
        assert_eq!(y.shape(), (4, 6));
    }

    #[test]
    fn sparse_forward_matches_dense_equivalent() {
        // A sparse layer must compute exactly what a dense layer with the
        // same (mostly-zero) weight matrix computes.
        let l = sparse_layer(Activation::Sigmoid);
        let Layer::Sparse(ref sl) = l else {
            unreachable!()
        };
        let dense_w = sl.weights().to_dense();
        let ld = Layer::Dense(DenseLinear::new(dense_w, Activation::Sigmoid));
        let x = random_batch(5, 6, 1);
        let ys = l.forward(&x);
        let yd = ld.forward(&x);
        for i in 0..5 {
            for j in 0..6 {
                assert!((ys.get(i, j) - yd.get(i, j)).abs() < 1e-6);
            }
        }
    }

    /// Finite-difference check of all gradients of a layer.
    fn check_gradients(layer: &Layer, tol: f32) {
        let x = random_batch(3, layer.n_in(), 2);
        let out = layer.forward(&x);
        // Loss = sum of outputs (grad_out = 1 everywhere) — simple and
        // exercises every path.
        let grad_out = DenseMatrix::from_vec(
            out.nrows(),
            out.ncols(),
            vec![1.0; out.nrows() * out.ncols()],
        )
        .unwrap();
        let (grads, grad_in) = layer.backward(&x, &out, &grad_out);

        let loss =
            |l: &Layer, xx: &DenseMatrix<f32>| -> f32 { l.forward(xx).as_slice().iter().sum() };
        let h = 1e-2f32;

        // Weight gradients.
        let (w_len, _) = layer.param_lens();
        for k in (0..w_len).step_by((w_len / 8).max(1)) {
            let mut lp = layer.clone();
            let mut lm = layer.clone();
            let mut dw = vec![0.0; w_len];
            dw[k] = -h; // apply_update subtracts
            lp.apply_update(&dw, &vec![0.0; layer.param_lens().1]);
            dw[k] = h;
            lm.apply_update(&dw, &vec![0.0; layer.param_lens().1]);
            let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            assert!(
                (numeric - grads.w[k]).abs() < tol,
                "weight {k}: numeric {numeric} vs analytic {}",
                grads.w[k]
            );
        }

        // Bias gradients.
        for k in 0..layer.param_lens().1 {
            let mut lp = layer.clone();
            let mut lm = layer.clone();
            let mut db = vec![0.0; layer.param_lens().1];
            db[k] = -h;
            lp.apply_update(&vec![0.0; w_len], &db);
            db[k] = h;
            lm.apply_update(&vec![0.0; w_len], &db);
            let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            assert!(
                (numeric - grads.b[k]).abs() < tol,
                "bias {k}: numeric {numeric} vs analytic {}",
                grads.b[k]
            );
        }

        // Input gradients.
        for (i, j) in [(0, 0), (1, 3), (2, 5)] {
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + h);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - h);
            let numeric = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * h);
            assert!(
                (numeric - grad_in.get(i, j)).abs() < tol,
                "input ({i},{j}): numeric {numeric} vs analytic {}",
                grad_in.get(i, j)
            );
        }
    }

    #[test]
    fn sparse_gradients_match_finite_differences_sigmoid() {
        check_gradients(&sparse_layer(Activation::Sigmoid), 2e-2);
    }

    #[test]
    fn sparse_gradients_match_finite_differences_tanh() {
        check_gradients(&sparse_layer(Activation::Tanh), 2e-2);
    }

    #[test]
    fn sparse_gradients_match_finite_differences_identity() {
        check_gradients(&sparse_layer(Activation::Identity), 2e-2);
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        check_gradients(&dense_layer(Activation::Sigmoid), 2e-2);
        check_gradients(&dense_layer(Activation::Identity), 2e-2);
    }

    #[test]
    fn sparse_backward_matches_dense_backward() {
        // Same weights (sparse vs densified) → identical gradients on the
        // shared nonzero positions and identical input gradients.
        let l = sparse_layer(Activation::Tanh);
        let Layer::Sparse(ref sl) = l else {
            unreachable!()
        };
        let w_csr = sl.weights().clone();
        let ld = Layer::Dense(DenseLinear::new(w_csr.to_dense(), Activation::Tanh));

        let x = random_batch(4, 6, 3);
        let out_s = l.forward(&x);
        let out_d = ld.forward(&x);
        let grad_out = random_batch(4, 6, 4);
        let (gs, gin_s) = l.backward(&x, &out_s, &grad_out);
        let (gd, gin_d) = ld.backward(&x, &out_d, &grad_out);

        // Input grads equal.
        for i in 0..4 {
            for j in 0..6 {
                assert!((gin_s.get(i, j) - gin_d.get(i, j)).abs() < 1e-5);
            }
        }
        // Sparse weight grads equal the dense grads at stored positions.
        for (k, (i, j, _)) in w_csr.iter().enumerate() {
            let dense_grad = gd.w[i * 6 + j];
            assert!(
                (gs.w[k] - dense_grad).abs() < 1e-5,
                "entry ({i},{j}): {} vs {}",
                gs.w[k],
                dense_grad
            );
        }
        // Biases equal.
        for (a, b) in gs.b.iter().zip(&gd.b) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn apply_update_moves_parameters() {
        let mut l = sparse_layer(Activation::Identity);
        let (wl, bl) = l.param_lens();
        let before = match &l {
            Layer::Sparse(s) => s.weights().data().to_vec(),
            Layer::Dense(_) => unreachable!(),
        };
        l.apply_update(&vec![0.1; wl], &vec![0.2; bl]);
        match &l {
            Layer::Sparse(s) => {
                for (b, a) in before.iter().zip(s.weights().data()) {
                    assert!((b - a - 0.1).abs() < 1e-6);
                }
            }
            Layer::Dense(_) => unreachable!(),
        }
    }

    #[test]
    fn grads_add_scaled() {
        let mut a = LayerGrads::zeros(3, 2);
        let b = LayerGrads {
            w: vec![1.0, 2.0, 3.0],
            b: vec![4.0, 5.0],
        };
        a.add_scaled(&b, 0.5);
        assert_eq!(a.w, vec![0.5, 1.0, 1.5]);
        assert_eq!(a.b, vec![2.0, 2.5]);
    }

    #[test]
    fn num_params_counts() {
        let l = sparse_layer(Activation::Relu);
        // 6 nodes × degree 3 + 6 biases.
        assert_eq!(l.num_params(), 18 + 6);
        let d = dense_layer(Activation::Relu);
        assert_eq!(d.num_params(), 36 + 6);
    }
}
