//! # radix-nn
//!
//! Sparse/dense feedforward neural-network substrate for the RadiX-Net
//! reproduction. The paper's abstract rests on the empirical claim that
//! "certain sparse DNNs can train to the same precision as dense DNNs at
//! lower runtime and storage cost" (demonstrated for RadiX-Nets in the
//! companion work of Alford & Kepner); this crate provides the trainer that
//! lets the benchmark suite re-test that claim with RadiX-Net, X-Net, and
//! dense topologies flowing through *identical* code — the topology is the
//! only variable.
//!
//! * [`Layer`] — sparse (CSR-weighted) and dense linear layers with
//!   activations; backpropagation touches only structural nonzeros,
//! * [`Network`] — stacks layers, computes gradients serially or with
//!   Rayon data parallelism ([`Network::par_grad_batch`]),
//! * [`Optimizer`] — SGD / momentum / Adam,
//! * [`train_classifier`] / [`train_regressor`] — mini-batch loops,
//! * [`Init`] — structural-fan-in-aware initialization (a sparse layer's
//!   fan-in is its column degree, not the layer width),
//! * [`ForwardWorkspace`] / [`GradWorkspace`] — reusable activation and
//!   gradient buffers: forward passes ping-pong two buffers, training
//!   reuses its trace/delta/gradient storage across mini-batches, and the
//!   sparse layers run `radix_sparse::kernel`'s prepared ELL kernels with
//!   the bias + activation epilogue fused in.
//!
//! ## Quick example
//!
//! ```
//! use radix_net::{MixedRadixSystem, MixedRadixTopology};
//! use radix_nn::{Activation, Init, Loss, Network};
//! use radix_sparse::DenseMatrix;
//!
//! let fnnt = MixedRadixTopology::new(MixedRadixSystem::new([2, 2, 2])?).into_fnnt();
//! let net = Network::from_fnnt(&fnnt, Activation::Relu, Init::He,
//!                              Loss::SoftmaxCrossEntropy, 42);
//! assert_eq!(net.n_in(), 8);
//! let x = DenseMatrix::zeros(4, 8);
//! assert_eq!(net.forward(&x).shape(), (4, 8));
//! # Ok::<(), radix_net::RadixError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod activation;
pub mod checkpoint;
pub mod eval;
pub mod fault;
pub mod init;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optimizer;
pub mod supervise;
pub mod train;
pub mod workspace;

pub use activation::Activation;
pub use checkpoint::{Checkpoint, CheckpointError, Checkpointer, TrainProgress};
pub use eval::ConfusionMatrix;
pub use fault::{TrainFaultInjector, TrainFaultPlan, WriteFault, INJECTED_TRAIN_PANIC_MSG};
pub use init::{init_dense, init_sparse, Init};
pub use layer::{DenseLinear, Layer, LayerGrads, SparseLinear};
pub use loss::{accuracy, softmax_row, Loss};
pub use network::{matched_dense_twin, Network, Targets};
pub use optimizer::Optimizer;
pub use supervise::{TrainReport, TrainRestartPolicy, TrainSuperviseError, TrainSupervisor};
pub use train::{
    clip_gradients, scale_to_max_norm, train_classifier, train_classifier_checkpointed,
    train_regressor, train_regressor_checkpointed, History, TrainConfig,
};
pub use workspace::{ForwardWorkspace, GradWorkspace, GradWorkspacePool};
