//! Loss functions: mean squared error and softmax cross-entropy.
//!
//! Both return the mean loss over the batch and the gradient of that mean
//! with respect to the network's raw outputs (logits), which seeds the
//! backward pass. The `_into` variants write the gradient into a
//! caller-provided buffer (resized in place) — with them, the training
//! loop's per-batch heap traffic is zero: `Network::grad_batch_with` seeds
//! the `GradWorkspace` delta buffer directly instead of allocating a fresh
//! gradient matrix every batch.

use radix_sparse::{AsDenseView, DenseMatrix};

/// Loss function selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error: `(1/2B) Σ ‖y − t‖²` (the ½ makes the gradient
    /// exactly `(y − t)/B`).
    Mse,
    /// Softmax cross-entropy over logits with one-hot (class index)
    /// targets.
    SoftmaxCrossEntropy,
}

/// Numerically stable softmax of one logit row, in place.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

impl Loss {
    /// Mean loss and gradient for regression-style targets (`targets` has
    /// the same shape as `outputs`). Only valid for [`Loss::Mse`].
    ///
    /// # Panics
    /// Panics on shape mismatch or if called on a classification loss.
    #[must_use]
    pub fn eval_regression(
        self,
        outputs: &DenseMatrix<f32>,
        targets: &DenseMatrix<f32>,
    ) -> (f32, DenseMatrix<f32>) {
        let mut grad = DenseMatrix::default();
        let loss = self.eval_regression_into(outputs, targets, &mut grad);
        (loss, grad)
    }

    /// Like [`Loss::eval_regression`], but writes the gradient into a
    /// caller-provided buffer (resized in place, reusing its allocation) —
    /// the allocation-free variant the training loop's `GradWorkspace`
    /// feeds its delta buffer with. `targets` may be an owned matrix or a
    /// zero-copy row-range view (the data-parallel chunk shape).
    ///
    /// # Panics
    /// Panics on shape mismatch or if called on a classification loss.
    pub fn eval_regression_into(
        self,
        outputs: &DenseMatrix<f32>,
        targets: &impl AsDenseView<f32>,
        grad: &mut DenseMatrix<f32>,
    ) -> f32 {
        let targets = targets.as_view();
        assert_eq!(self, Loss::Mse, "regression targets need Loss::Mse");
        assert_eq!(outputs.shape(), targets.shape(), "shape mismatch");
        let b = outputs.nrows() as f32;
        // Every element is overwritten below, so skip the zero-fill.
        grad.resize_for_overwrite(outputs.nrows(), outputs.ncols());
        let mut loss = 0.0f32;
        for i in 0..outputs.nrows() {
            let orow = outputs.row(i);
            let trow = targets.row(i);
            let grow: &mut [f32] = grad.row_mut(i);
            for ((g, &o), &t) in grow.iter_mut().zip(orow).zip(trow) {
                let d = o - t;
                loss += 0.5 * d * d;
                *g = d / b;
            }
        }
        loss / b
    }

    /// Mean loss and gradient for classification targets given as class
    /// indices. Only valid for [`Loss::SoftmaxCrossEntropy`].
    ///
    /// # Panics
    /// Panics if a label is out of range or if called on a regression loss.
    #[must_use]
    pub fn eval_classification(
        self,
        logits: &DenseMatrix<f32>,
        labels: &[usize],
    ) -> (f32, DenseMatrix<f32>) {
        let mut grad = DenseMatrix::default();
        let loss = self.eval_classification_into(logits, labels, &mut grad);
        (loss, grad)
    }

    /// Like [`Loss::eval_classification`], but writes the gradient into a
    /// caller-provided buffer (resized in place, reusing its allocation).
    ///
    /// # Panics
    /// Panics if a label is out of range or if called on a regression loss.
    pub fn eval_classification_into(
        self,
        logits: &DenseMatrix<f32>,
        labels: &[usize],
        grad: &mut DenseMatrix<f32>,
    ) -> f32 {
        assert_eq!(
            self,
            Loss::SoftmaxCrossEntropy,
            "classification targets need Loss::SoftmaxCrossEntropy"
        );
        assert_eq!(logits.nrows(), labels.len(), "batch size mismatch");
        let b = logits.nrows() as f32;
        let classes = logits.ncols();
        // Start from a copy of the logits (softmax then runs in place);
        // every element is overwritten, so skip the zero-fill.
        grad.resize_for_overwrite(logits.nrows(), logits.ncols());
        grad.as_mut_slice().copy_from_slice(logits.as_slice());
        let mut loss = 0.0f32;
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < classes, "label {label} out of range");
            let row: &mut [f32] = grad.row_mut(i);
            softmax_row(row);
            loss -= row[label].max(1e-30).ln();
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v /= b;
            }
        }
        loss / b
    }
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
/// Panics if `logits.nrows() != labels.len()`.
#[must_use]
pub fn accuracy(logits: &DenseMatrix<f32>, labels: &[usize]) -> f64 {
    assert_eq!(logits.nrows(), labels.len(), "batch size mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = logits.row(i);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if argmax == label {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = [1.0f32, 2.0, 3.0];
        softmax_row(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn softmax_row_is_shift_invariant_and_stable() {
        let mut a = [1.0f32, 2.0, 3.0];
        let mut b = [1001.0f32, 1002.0, 1003.0];
        softmax_row(&mut a);
        softmax_row(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(b.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let y = DenseMatrix::from_rows(&[&[1.0f32, 2.0]]);
        let (loss, grad) = Loss::Mse.eval_regression(&y, &y);
        assert_eq!(loss, 0.0);
        assert!(grad.all_equal_to(0.0));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let y = DenseMatrix::from_rows(&[&[1.0f32, -0.5], &[0.3, 2.0]]);
        let t = DenseMatrix::from_rows(&[&[0.0f32, 0.0], &[1.0, 1.0]]);
        let (_, grad) = Loss::Mse.eval_regression(&y, &t);
        let h = 1e-3f32;
        for i in 0..2 {
            for j in 0..2 {
                let mut yp = y.clone();
                yp.set(i, j, y.get(i, j) + h);
                let mut ym = y.clone();
                ym.set(i, j, y.get(i, j) - h);
                let (lp, _) = Loss::Mse.eval_regression(&yp, &t);
                let (lm, _) = Loss::Mse.eval_regression(&ym, &t);
                let numeric = (lp - lm) / (2.0 * h);
                assert!(
                    (numeric - grad.get(i, j)).abs() < 1e-3,
                    "at ({i},{j}): {numeric} vs {}",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = DenseMatrix::from_rows(&[&[0.2f32, -0.1, 0.5], &[1.0, 0.0, -1.0]]);
        let labels = vec![2usize, 0];
        let (_, grad) = Loss::SoftmaxCrossEntropy.eval_classification(&logits, &labels);
        let h = 1e-2f32;
        for i in 0..2 {
            for j in 0..3 {
                let mut lp = logits.clone();
                lp.set(i, j, logits.get(i, j) + h);
                let mut lm = logits.clone();
                lm.set(i, j, logits.get(i, j) - h);
                let (llp, _) = Loss::SoftmaxCrossEntropy.eval_classification(&lp, &labels);
                let (llm, _) = Loss::SoftmaxCrossEntropy.eval_classification(&lm, &labels);
                let numeric = (llp - llm) / (2.0 * h);
                assert!(
                    (numeric - grad.get(i, j)).abs() < 1e-2,
                    "at ({i},{j}): {numeric} vs {}",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn cross_entropy_low_for_confident_correct() {
        let logits = DenseMatrix::from_rows(&[&[10.0f32, -10.0]]);
        let (loss, _) = Loss::SoftmaxCrossEntropy.eval_classification(&logits, &[0]);
        assert!(loss < 1e-3);
        let (bad, _) = Loss::SoftmaxCrossEntropy.eval_classification(&logits, &[1]);
        assert!(bad > 5.0);
    }

    #[test]
    fn eval_into_matches_allocating_variants_and_reuses_buffer() {
        let logits = DenseMatrix::from_rows(&[&[0.2f32, -0.1, 0.5], &[1.0, 0.0, -1.0]]);
        let labels = vec![2usize, 0];
        let (loss_a, grad_a) = Loss::SoftmaxCrossEntropy.eval_classification(&logits, &labels);
        let mut grad = DenseMatrix::zeros(2, 3);
        let ptr = grad.as_slice().as_ptr();
        let loss_b =
            Loss::SoftmaxCrossEntropy.eval_classification_into(&logits, &labels, &mut grad);
        assert_eq!(loss_a, loss_b);
        assert_eq!(grad_a, grad);
        assert_eq!(ptr, grad.as_slice().as_ptr(), "same-size call must reuse");

        let y = DenseMatrix::from_rows(&[&[1.0f32, -0.5], &[0.3, 2.0]]);
        let t = DenseMatrix::from_rows(&[&[0.0f32, 0.0], &[1.0, 1.0]]);
        let (loss_a, grad_a) = Loss::Mse.eval_regression(&y, &t);
        let mut grad = DenseMatrix::zeros(2, 2);
        let ptr = grad.as_slice().as_ptr();
        let loss_b = Loss::Mse.eval_regression_into(&y, &t, &mut grad);
        assert_eq!(loss_a, loss_b);
        assert_eq!(grad_a, grad);
        assert_eq!(ptr, grad.as_slice().as_ptr(), "same-size call must reuse");
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = DenseMatrix::from_rows(&[&[0.9f32, 0.1], &[0.2, 0.8], &[0.6, 0.4]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy(&DenseMatrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn bad_label_panics() {
        let logits = DenseMatrix::from_rows(&[&[0.0f32, 0.0]]);
        let _ = Loss::SoftmaxCrossEntropy.eval_classification(&logits, &[5]);
    }
}
