//! Feedforward networks over sparse or dense layers.
//!
//! A [`Network`] is the paper's FNN (Figure 8): an FNNT together with
//! weights and biases, inducing a function `φ : R^{|U_0|} → R^{|U_m|}`.
//! Networks are built from RadiX-Net/X-Net topologies
//! ([`Network::from_fnnt`]) or dense layer sizes ([`Network::dense`]), and
//! expose forward inference, backpropagation, and Rayon data-parallel
//! gradient computation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use radix_net::Fnnt;
use radix_sparse::DenseMatrix;

use crate::activation::Activation;
use crate::init::{init_dense, init_sparse, Init};
use crate::layer::{DenseLinear, Layer, LayerGrads, SparseLinear};
use crate::loss::Loss;
use crate::workspace::{ForwardWorkspace, GradWorkspace};

/// Training targets: class labels or regression values.
#[derive(Debug, Clone, Copy)]
pub enum Targets<'a> {
    /// Class indices (softmax cross-entropy).
    Labels(&'a [usize]),
    /// Regression targets, same shape as the network output (MSE).
    Values(&'a DenseMatrix<f32>),
}

/// A feedforward neural network.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    layers: Vec<Layer>,
    loss: Loss,
}

impl Network {
    /// Builds a network from explicit layers.
    ///
    /// # Panics
    /// Panics if consecutive layer widths do not chain or `layers` is empty.
    #[must_use]
    pub fn new(layers: Vec<Layer>, loss: Loss) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].n_out(), pair[1].n_in(), "layer widths must chain");
        }
        Network { layers, loss }
    }

    /// Builds a sparse network on an FNNT's topology: hidden layers get
    /// `hidden_act`, the final layer is linear (logits). Weights are
    /// initialized on the sparse pattern with structural fan-in.
    #[must_use]
    pub fn from_fnnt(
        fnnt: &Fnnt,
        hidden_act: Activation,
        init: Init,
        loss: Loss,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = fnnt.num_edge_layers();
        let layers = fnnt
            .submatrices()
            .iter()
            .enumerate()
            .map(|(i, pattern)| {
                let act = if i + 1 == n {
                    Activation::Identity
                } else {
                    hidden_act
                };
                let w = init_sparse(pattern, init, &mut rng);
                Layer::Sparse(SparseLinear::new(w, act))
            })
            .collect();
        Network { layers, loss }
    }

    /// Builds a dense baseline network on the given layer sizes.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    #[must_use]
    pub fn dense(
        sizes: &[usize],
        hidden_act: Activation,
        init: Init,
        loss: Loss,
        seed: u64,
    ) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = sizes.len() - 1;
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 1 == n {
                    Activation::Identity
                } else {
                    hidden_act
                };
                Layer::Dense(DenseLinear::new(
                    init_dense(w[0], w[1], init, &mut rng),
                    act,
                ))
            })
            .collect();
        Network { layers, loss }
    }

    /// The layers.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The loss function.
    #[must_use]
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Input width.
    #[must_use]
    pub fn n_in(&self) -> usize {
        self.layers[0].n_in()
    }

    /// Output width.
    #[must_use]
    pub fn n_out(&self) -> usize {
        self.layers.last().unwrap().n_out()
    }

    /// Total trainable parameters — the storage-cost metric the paper's
    /// sparsity argument is about.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Forward pass returning the final output (logits).
    ///
    /// Allocates a transient workspace; repeated callers should hold a
    /// [`ForwardWorkspace`] and use [`Network::forward_with`] instead.
    #[must_use]
    pub fn forward(&self, x: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let mut ws = ForwardWorkspace::new();
        self.forward_with(x, &mut ws);
        ws.take_output()
    }

    /// Forward pass through ping-pong workspace buffers: layer `l` reads
    /// one buffer and writes the other, so the whole pass performs no heap
    /// allocation once the workspace has reached its high-water mark.
    /// Returns the final output, which lives inside the workspace.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    pub fn forward_with<'w>(
        &self,
        x: &DenseMatrix<f32>,
        ws: &'w mut ForwardWorkspace,
    ) -> &'w DenseMatrix<f32> {
        ws.buffers.run(x, self.layers.len(), |l, src, dst| {
            self.layers[l].forward_into(src, dst);
        })
    }

    /// Forward pass retaining every intermediate activation (input
    /// excluded; `result[i]` is the output of layer `i`).
    #[must_use]
    pub fn forward_trace(&self, x: &DenseMatrix<f32>) -> Vec<DenseMatrix<f32>> {
        let mut outs = Vec::new();
        self.forward_trace_into(x, &mut outs);
        outs
    }

    /// Forward pass writing every intermediate activation into reusable
    /// buffers: `trace[i]` becomes the output of layer `i`. The vector is
    /// resized to the layer count; existing buffers are reused in place.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    pub fn forward_trace_into(&self, x: &DenseMatrix<f32>, trace: &mut Vec<DenseMatrix<f32>>) {
        let n = self.layers.len();
        trace.resize_with(n, || DenseMatrix::zeros(0, 0));
        for (i, layer) in self.layers.iter().enumerate() {
            let (head, tail) = trace.split_at_mut(i);
            let src: &DenseMatrix<f32> = if i == 0 { x } else { &head[i - 1] };
            layer.forward_into(src, &mut tail[0]);
        }
    }

    /// Computes the mean loss and parameter gradients on one batch
    /// (serial).
    ///
    /// Allocates a transient workspace; the training loops hold a
    /// [`GradWorkspace`] and call [`Network::grad_batch_with`] so buffers
    /// persist across mini-batches.
    ///
    /// # Panics
    /// Panics on target/batch shape mismatches.
    #[must_use]
    pub fn grad_batch(&self, x: &DenseMatrix<f32>, targets: Targets<'_>) -> (f32, Vec<LayerGrads>) {
        let mut ws = GradWorkspace::new();
        let loss = self.grad_batch_with(x, targets, &mut ws);
        (loss, std::mem::take(&mut ws.grads))
    }

    /// Computes the mean loss and parameter gradients on one batch using
    /// workspace buffers: the activation trace, the backpropagated
    /// gradient ping-pong pair, and the per-layer gradients all live in
    /// `ws` and are reused across calls (gradients are readable afterwards
    /// via [`GradWorkspace::grads`]).
    ///
    /// # Panics
    /// Panics on target/batch shape mismatches.
    pub fn grad_batch_with(
        &self,
        x: &DenseMatrix<f32>,
        targets: Targets<'_>,
        ws: &mut GradWorkspace,
    ) -> f32 {
        ws.ensure(self);
        let GradWorkspace {
            trace,
            delta,
            grad_in,
            grads,
        } = ws;
        self.forward_trace_into(x, trace);
        let logits = trace.last().expect("at least one layer");
        // The loss gradient is written straight into the workspace delta
        // buffer — the last per-batch allocation the training loop used to
        // make.
        let loss = match targets {
            Targets::Labels(labels) => self.loss.eval_classification_into(logits, labels, delta),
            Targets::Values(values) => self.loss.eval_regression_into(logits, values, delta),
        };
        for i in (0..self.layers.len()).rev() {
            let input = if i == 0 { x } else { &trace[i - 1] };
            self.layers[i].backward_into(input, &trace[i], delta, &mut grads[i], grad_in);
            // The gradient w.r.t. this layer's input is the next (earlier)
            // layer's upstream gradient; delta's buffer becomes scratch.
            std::mem::swap(delta, grad_in);
        }
        loss
    }

    /// Data-parallel gradient computation: splits the batch into
    /// `num_chunks` row ranges, evaluates each on a Rayon worker, and
    /// combines the per-chunk mean gradients weighted by chunk size.
    /// Bitwise order of summation differs from [`Network::grad_batch`], so
    /// results agree to floating-point tolerance, not exactly.
    ///
    /// # Panics
    /// Panics on target/batch shape mismatches.
    #[must_use]
    pub fn par_grad_batch(
        &self,
        x: &DenseMatrix<f32>,
        targets: Targets<'_>,
        num_chunks: usize,
    ) -> (f32, Vec<LayerGrads>) {
        let batch = x.nrows();
        let chunks = num_chunks.clamp(1, batch.max(1));
        if chunks <= 1 || batch <= 1 {
            return self.grad_batch(x, targets);
        }
        let chunk_size = batch.div_ceil(chunks);
        let ranges: Vec<std::ops::Range<usize>> = (0..batch)
            .step_by(chunk_size)
            .map(|start| start..(start + chunk_size).min(batch))
            .collect();

        let partials: Vec<(usize, f32, Vec<LayerGrads>)> = ranges
            .into_par_iter()
            .map(|range| {
                let rows = range.len();
                let mut xs = DenseMatrix::zeros(rows, x.ncols());
                for (local, global) in range.clone().enumerate() {
                    let dst: &mut [f32] = xs.row_mut(local);
                    dst.copy_from_slice(x.row(global));
                }
                let (loss, grads) = match targets {
                    Targets::Labels(labels) => {
                        self.grad_batch(&xs, Targets::Labels(&labels[range]))
                    }
                    Targets::Values(values) => {
                        let mut vs = DenseMatrix::zeros(rows, values.ncols());
                        for (local, global) in range.enumerate() {
                            let dst: &mut [f32] = vs.row_mut(local);
                            dst.copy_from_slice(values.row(global));
                        }
                        self.grad_batch(&xs, Targets::Values(&vs))
                    }
                };
                (rows, loss, grads)
            })
            .collect();

        let mut total_loss = 0.0f32;
        let mut combined: Vec<LayerGrads> = self
            .layers
            .iter()
            .map(|l| {
                let (w, b) = l.param_lens();
                LayerGrads::zeros(w, b)
            })
            .collect();
        for (rows, loss, grads) in partials {
            let weight = rows as f32 / batch as f32;
            total_loss += loss * weight;
            for (acc, g) in combined.iter_mut().zip(&grads) {
                acc.add_scaled(g, weight);
            }
        }
        (total_loss, combined)
    }

    /// Adds L2 weight-decay terms `wd·w` to the weight gradients (biases
    /// untouched), in place.
    ///
    /// # Panics
    /// Panics if `grads` does not match the network's layer structure.
    pub fn add_weight_decay(&self, grads: &mut [LayerGrads], wd: f32) {
        assert_eq!(grads.len(), self.layers.len(), "gradient layer count");
        for (layer, g) in self.layers.iter().zip(grads) {
            match layer {
                Layer::Sparse(s) => {
                    assert_eq!(g.w.len(), s.weights().nnz(), "weight grad length");
                    for (gw, &w) in g.w.iter_mut().zip(s.weights().data()) {
                        *gw += wd * w;
                    }
                }
                Layer::Dense(d) => {
                    for (gw, &w) in g.w.iter_mut().zip(d.weights().as_slice()) {
                        *gw += wd * w;
                    }
                }
            }
        }
    }

    /// Applies one optimizer step given computed gradients.
    pub fn apply_gradients(&mut self, grads: &[LayerGrads], opt: &mut crate::Optimizer) {
        opt.begin_step();
        for (i, (layer, g)) in self.layers.iter_mut().zip(grads).enumerate() {
            let w_delta = opt.compute_update(2 * i, &g.w);
            let b_delta = opt.compute_update(2 * i + 1, &g.b);
            layer.apply_update(&w_delta, &b_delta);
        }
    }

    /// Density of the network's weight structure relative to a dense net of
    /// the same layer sizes (1.0 for dense layers).
    #[must_use]
    pub fn density(&self) -> f64 {
        let mut nnz = 0usize;
        let mut full = 0usize;
        for layer in &self.layers {
            full += layer.n_in() * layer.n_out();
            nnz += match layer {
                Layer::Sparse(s) => s.weights().nnz(),
                Layer::Dense(_) => layer.n_in() * layer.n_out(),
            };
        }
        nnz as f64 / full as f64
    }
}

/// Convenience: a sparse network and its dense twin with identical layer
/// sizes, loss, and init scheme — the matched pair every training
/// comparison uses.
#[must_use]
pub fn matched_dense_twin(sparse: &Network, seed: u64) -> Network {
    let mut sizes = Vec::with_capacity(sparse.layers().len() + 1);
    sizes.push(sparse.n_in());
    for l in sparse.layers() {
        sizes.push(l.n_out());
    }
    let hidden_act = sparse.layers()[0].activation();
    Network::dense(&sizes, hidden_act, Init::Xavier, sparse.loss(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radix_net::{MixedRadixSystem, MixedRadixTopology};

    fn radix_fnnt() -> Fnnt {
        MixedRadixTopology::new(MixedRadixSystem::new([2, 2, 2]).unwrap()).into_fnnt()
    }

    fn batch(rows: usize, cols: usize, seed: u64) -> DenseMatrix<f32> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            let r: &mut [f32] = x.row_mut(i);
            for v in r.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
        }
        x
    }

    #[test]
    fn from_fnnt_shapes() {
        let net = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Relu,
            Init::He,
            Loss::SoftmaxCrossEntropy,
            0,
        );
        assert_eq!(net.n_in(), 8);
        assert_eq!(net.n_out(), 8);
        assert_eq!(net.layers().len(), 3);
        // 3 layers × 16 edges + 3 × 8 biases.
        assert_eq!(net.num_params(), 48 + 24);
        // Last layer must be linear.
        assert_eq!(net.layers()[2].activation(), Activation::Identity);
    }

    #[test]
    fn density_reflects_topology() {
        let sparse = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Relu,
            Init::He,
            Loss::SoftmaxCrossEntropy,
            0,
        );
        assert!((sparse.density() - 0.25).abs() < 1e-9); // degree 2 of 8
        let dense = matched_dense_twin(&sparse, 1);
        assert_eq!(dense.density(), 1.0);
        assert_eq!(dense.n_in(), sparse.n_in());
        assert!(dense.num_params() > sparse.num_params());
    }

    #[test]
    fn forward_trace_consistent_with_forward() {
        let net = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Sigmoid,
            Init::Xavier,
            Loss::Mse,
            3,
        );
        let x = batch(4, 8, 0);
        let trace = net.forward_trace(&x);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.last().unwrap(), &net.forward(&x));
    }

    #[test]
    fn par_grad_matches_serial() {
        let net = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Tanh,
            Init::Xavier,
            Loss::SoftmaxCrossEntropy,
            5,
        );
        let x = batch(16, 8, 1);
        let labels: Vec<usize> = (0..16).map(|i| i % 8).collect();
        let (l1, g1) = net.grad_batch(&x, Targets::Labels(&labels));
        let (l4, g4) = net.par_grad_batch(&x, Targets::Labels(&labels), 4);
        assert!((l1 - l4).abs() < 1e-5, "{l1} vs {l4}");
        for (a, b) in g1.iter().zip(&g4) {
            for (x, y) in a.w.iter().zip(&b.w) {
                assert!((x - y).abs() < 1e-5);
            }
            for (x, y) in a.b.iter().zip(&b.b) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn par_grad_regression_matches_serial() {
        let net = Network::dense(&[4, 6, 2], Activation::Tanh, Init::Xavier, Loss::Mse, 2);
        let x = batch(10, 4, 2);
        let y = batch(10, 2, 3);
        let (l1, g1) = net.grad_batch(&x, Targets::Values(&y));
        let (l3, g3) = net.par_grad_batch(&x, Targets::Values(&y), 3);
        assert!((l1 - l3).abs() < 1e-5);
        for (a, b) in g1.iter().zip(&g3) {
            for (x, y) in a.w.iter().zip(&b.w) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradient_step_reduces_loss() {
        let mut net = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Sigmoid,
            Init::Xavier,
            Loss::SoftmaxCrossEntropy,
            7,
        );
        let x = batch(32, 8, 4);
        let labels: Vec<usize> = (0..32).map(|i| (i * 3) % 8).collect();
        let (loss0, grads) = net.grad_batch(&x, Targets::Labels(&labels));
        let mut opt = crate::Optimizer::sgd(0.5);
        net.apply_gradients(&grads, &mut opt);
        let (loss1, _) = net.grad_batch(&x, Targets::Labels(&labels));
        assert!(
            loss1 < loss0,
            "one SGD step must descend: {loss0} → {loss1}"
        );
    }

    #[test]
    #[should_panic(expected = "layer widths must chain")]
    fn mismatched_layers_panic() {
        let a = Layer::Dense(DenseLinear::new(DenseMatrix::zeros(3, 4), Activation::Relu));
        let b = Layer::Dense(DenseLinear::new(DenseMatrix::zeros(5, 2), Activation::Relu));
        let _ = Network::new(vec![a, b], Loss::Mse);
    }

    #[test]
    fn sparse_and_dense_twin_agree_when_sparse_pattern_is_full() {
        // A "sparse" layer whose pattern is fully dense must behave like a
        // dense layer with the same weights.
        let full = Fnnt::dense(&[4, 4, 4]);
        let net = Network::from_fnnt(&full, Activation::Tanh, Init::Xavier, Loss::Mse, 11);
        assert_eq!(net.density(), 1.0);
        let x = batch(3, 4, 9);
        let out = net.forward(&x);
        assert_eq!(out.shape(), (3, 4));
    }
}
