//! Feedforward networks over sparse or dense layers.
//!
//! A [`Network`] is the paper's FNN (Figure 8): an FNNT together with
//! weights and biases, inducing a function `φ : R^{|U_0|} → R^{|U_m|}`.
//! Networks are built from RadiX-Net/X-Net topologies
//! ([`Network::from_fnnt`]) or dense layer sizes ([`Network::dense`]), and
//! expose forward inference, backpropagation, and Rayon data-parallel
//! gradient computation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use radix_net::Fnnt;
use radix_sparse::{AsDenseView, DenseMatrix, DenseView};

use crate::activation::Activation;
use crate::init::{init_dense, init_sparse, Init};
use crate::layer::{DenseLinear, Layer, LayerGrads, SparseLinear};
use crate::loss::Loss;
use crate::workspace::{ForwardWorkspace, GradWorkspace, GradWorkspacePool};

/// Training targets: class labels or regression values.
///
/// Regression values are held as a zero-copy [`DenseView`] so a row range
/// of the targets can be sliced for each data-parallel chunk without
/// copying ([`Targets::slice`]); build one from an owned matrix with
/// [`Targets::values`] (or `Targets::Values(y.view())`).
#[derive(Debug, Clone, Copy)]
pub enum Targets<'a> {
    /// Class indices (softmax cross-entropy).
    Labels(&'a [usize]),
    /// Regression targets, same shape as the network output (MSE).
    Values(DenseView<'a, f32>),
}

impl<'a> Targets<'a> {
    /// Regression targets from an owned matrix (a zero-copy view of it).
    #[must_use]
    pub fn values(y: &'a DenseMatrix<f32>) -> Self {
        Targets::Values(y.view())
    }

    /// Number of target rows (must equal the batch size).
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Targets::Labels(l) => l.len(),
            Targets::Values(v) => v.nrows(),
        }
    }

    /// Whether there are no targets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The targets of batch rows `range`, zero-copy — how the
    /// data-parallel gradient path hands each chunk its slice of the
    /// batch targets.
    ///
    /// # Panics
    /// Panics if the range exceeds the target rows or is decreasing.
    #[must_use]
    pub fn slice(self, range: std::ops::Range<usize>) -> Targets<'a> {
        match self {
            Targets::Labels(l) => Targets::Labels(&l[range]),
            Targets::Values(v) => Targets::Values(v.rows_view(range)),
        }
    }
}

/// A feedforward neural network.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    layers: Vec<Layer>,
    loss: Loss,
}

impl Network {
    /// Builds a network from explicit layers.
    ///
    /// # Panics
    /// Panics if consecutive layer widths do not chain or `layers` is empty.
    #[must_use]
    pub fn new(layers: Vec<Layer>, loss: Loss) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].n_out(), pair[1].n_in(), "layer widths must chain");
        }
        Network { layers, loss }
    }

    /// Builds a sparse network on an FNNT's topology: hidden layers get
    /// `hidden_act`, the final layer is linear (logits). Weights are
    /// initialized on the sparse pattern with structural fan-in.
    #[must_use]
    pub fn from_fnnt(
        fnnt: &Fnnt,
        hidden_act: Activation,
        init: Init,
        loss: Loss,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = fnnt.num_edge_layers();
        let layers = fnnt
            .submatrices()
            .iter()
            .enumerate()
            .map(|(i, pattern)| {
                let act = if i + 1 == n {
                    Activation::Identity
                } else {
                    hidden_act
                };
                let w = init_sparse(pattern, init, &mut rng);
                Layer::Sparse(SparseLinear::new(w, act))
            })
            .collect();
        Network { layers, loss }
    }

    /// Builds a dense baseline network on the given layer sizes.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    #[must_use]
    pub fn dense(
        sizes: &[usize],
        hidden_act: Activation,
        init: Init,
        loss: Loss,
        seed: u64,
    ) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = sizes.len() - 1;
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 1 == n {
                    Activation::Identity
                } else {
                    hidden_act
                };
                Layer::Dense(DenseLinear::new(
                    init_dense(w[0], w[1], init, &mut rng),
                    act,
                ))
            })
            .collect();
        Network { layers, loss }
    }

    /// The layers.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The loss function.
    #[must_use]
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Input width.
    #[must_use]
    pub fn n_in(&self) -> usize {
        self.layers[0].n_in()
    }

    /// Output width.
    #[must_use]
    pub fn n_out(&self) -> usize {
        self.layers.last().unwrap().n_out()
    }

    /// Total trainable parameters — the storage-cost metric the paper's
    /// sparsity argument is about.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Forward pass returning the final output (logits).
    ///
    /// Allocates a transient workspace; repeated callers should hold a
    /// [`ForwardWorkspace`] and use [`Network::forward_with`] instead.
    #[must_use]
    pub fn forward(&self, x: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let mut ws = ForwardWorkspace::new();
        self.forward_with(x, &mut ws);
        ws.take_output()
    }

    /// Forward pass through ping-pong workspace buffers: layer `l` reads
    /// one buffer and writes the other, so the whole pass performs no heap
    /// allocation once the workspace has reached its high-water mark.
    /// Returns the final output, which lives inside the workspace.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    pub fn forward_with<'w>(
        &self,
        x: &DenseMatrix<f32>,
        ws: &'w mut ForwardWorkspace,
    ) -> &'w DenseMatrix<f32> {
        ws.buffers.run(x, self.layers.len(), |l, src, dst| {
            self.layers[l].forward_into(src, dst);
        })
    }

    /// Forward pass retaining every intermediate activation (input
    /// excluded; `result[i]` is the output of layer `i`).
    #[must_use]
    pub fn forward_trace(&self, x: &DenseMatrix<f32>) -> Vec<DenseMatrix<f32>> {
        let mut outs = Vec::new();
        self.forward_trace_into(x, &mut outs);
        outs
    }

    /// Forward pass writing every intermediate activation into reusable
    /// buffers: `trace[i]` becomes the output of layer `i`. The vector is
    /// resized to the layer count; existing buffers are reused in place.
    /// `x` may be an owned matrix or a zero-copy row-range view.
    ///
    /// # Panics
    /// Panics if `x.ncols() != n_in()`.
    pub fn forward_trace_into(&self, x: &impl AsDenseView<f32>, trace: &mut Vec<DenseMatrix<f32>>) {
        let x = x.as_view();
        let n = self.layers.len();
        trace.resize_with(n, || DenseMatrix::zeros(0, 0));
        for (i, layer) in self.layers.iter().enumerate() {
            let (head, tail) = trace.split_at_mut(i);
            if i == 0 {
                layer.forward_into(&x, &mut tail[0]);
            } else {
                layer.forward_into(&head[i - 1], &mut tail[0]);
            }
        }
    }

    /// Computes the mean loss and parameter gradients on one batch
    /// (serial).
    ///
    /// Allocates a transient workspace; the training loops hold a
    /// [`GradWorkspace`] and call [`Network::grad_batch_with`] so buffers
    /// persist across mini-batches.
    ///
    /// # Panics
    /// Panics on target/batch shape mismatches.
    #[must_use]
    pub fn grad_batch(&self, x: &DenseMatrix<f32>, targets: Targets<'_>) -> (f32, Vec<LayerGrads>) {
        let mut ws = GradWorkspace::new();
        let loss = self.grad_batch_with(x, targets, &mut ws);
        (loss, std::mem::take(&mut ws.grads))
    }

    /// Computes the mean loss and parameter gradients on one batch using
    /// workspace buffers: the activation trace, the backpropagated
    /// gradient ping-pong pair, and the per-layer gradients all live in
    /// `ws` and are reused across calls (gradients are readable afterwards
    /// via [`GradWorkspace::grads`]).
    ///
    /// # Panics
    /// Panics on target/batch shape mismatches.
    pub fn grad_batch_with(
        &self,
        x: &impl AsDenseView<f32>,
        targets: Targets<'_>,
        ws: &mut GradWorkspace,
    ) -> f32 {
        ws.ensure(self);
        let GradWorkspace {
            trace,
            delta,
            grad_in,
            grads,
            ..
        } = ws;
        self.grad_batch_core(x.as_view(), targets, trace, delta, grad_in, grads)
    }

    /// One full forward + backward over `x` through caller-provided
    /// buffers — the shared core of the serial ([`Network::grad_batch_with`])
    /// and pool-native data-parallel ([`Network::par_grad_batch_with`])
    /// paths. The data-parallel dispatch hands each worker its slot's
    /// trace/delta scratch plus the **chunk's own** gradient buffers, so a
    /// chunk's result survives until the fixed-order reduction.
    fn grad_batch_core(
        &self,
        x: DenseView<'_, f32>,
        targets: Targets<'_>,
        trace: &mut Vec<DenseMatrix<f32>>,
        delta: &mut DenseMatrix<f32>,
        grad_in: &mut DenseMatrix<f32>,
        grads: &mut [LayerGrads],
    ) -> f32 {
        assert_eq!(grads.len(), self.layers.len(), "gradient layer count");
        self.forward_trace_into(&x, trace);
        let logits = trace.last().expect("at least one layer");
        // The loss gradient is written straight into the workspace delta
        // buffer — the last per-batch allocation the training loop used to
        // make.
        let loss = match targets {
            Targets::Labels(labels) => self.loss.eval_classification_into(logits, labels, delta),
            Targets::Values(values) => self.loss.eval_regression_into(logits, &values, delta),
        };
        for i in (0..self.layers.len()).rev() {
            if i == 0 {
                self.layers[0].backward_into(&x, &trace[0], delta, &mut grads[0], grad_in);
            } else {
                self.layers[i].backward_into(
                    &trace[i - 1],
                    &trace[i],
                    delta,
                    &mut grads[i],
                    grad_in,
                );
            }
            // The gradient w.r.t. this layer's input is the next (earlier)
            // layer's upstream gradient; delta's buffer becomes scratch.
            std::mem::swap(delta, grad_in);
        }
        loss
    }

    /// Data-parallel gradient computation: splits the batch into
    /// `num_chunks` row ranges, evaluates each on the persistent worker
    /// pool, and combines the per-chunk mean gradients weighted by chunk
    /// size (`rows / batch` — so when chunks divide the batch evenly the
    /// weighting matches [`Network::grad_batch`]'s uniform mean exactly,
    /// and ragged splits still weight every row equally).
    ///
    /// Allocates a transient workspace pool per call; the training loops
    /// hold a [`GradWorkspacePool`] and call
    /// [`Network::par_grad_batch_with`] so every buffer persists across
    /// mini-batches.
    ///
    /// # Panics
    /// Panics on target/batch shape mismatches.
    #[must_use]
    pub fn par_grad_batch(
        &self,
        x: &impl AsDenseView<f32>,
        targets: Targets<'_>,
        num_chunks: usize,
    ) -> (f32, Vec<LayerGrads>) {
        let mut pool = GradWorkspacePool::for_network(self, x.as_view().nrows(), num_chunks);
        let mut ws = GradWorkspace::new();
        let loss = self.par_grad_batch_with(x, targets, num_chunks, &mut pool, &mut ws);
        (loss, std::mem::take(&mut ws.grads))
    }

    /// Pool-native data-parallel gradient computation through persistent
    /// per-worker workspaces — the allocation-free replacement for the old
    /// copy-per-chunk `into_par_iter` path.
    ///
    /// The batch splits into `num_chunks` row ranges. Each chunk is a
    /// **zero-copy view** of `x` ([`DenseMatrix::rows_view`]) and of the
    /// targets ([`Targets::slice`]); chunks are claimed dynamically by the
    /// persistent worker pool (`rayon::for_each_item_with`), each worker
    /// evaluating into its own slot's scratch workspace and the chunk's
    /// own gradient buffers. A **fixed-order weighted tree reduction**
    /// over the chunk index then combines the per-chunk gradients into
    /// `ws.grads` (readable via [`GradWorkspace::grads`]) — so for a given
    /// chunk count the result is **bitwise identical regardless of thread
    /// count or schedule**, and agrees with [`Network::grad_batch`] to
    /// floating-point tolerance (summation order differs).
    ///
    /// With `pool` and `ws` pre-sized ([`GradWorkspacePool::for_network`],
    /// [`GradWorkspace::for_network`]), a multi-chunk gradient batch
    /// performs **zero** heap allocations — `crates/nn/tests/zero_alloc.rs`
    /// proves it over a multi-epoch training run on a forced 4-thread
    /// pool. With `num_chunks <= 1` (or a single-row batch) this is
    /// exactly [`Network::grad_batch_with`].
    ///
    /// # Panics
    /// Panics on target/batch shape mismatches.
    pub fn par_grad_batch_with(
        &self,
        x: &impl AsDenseView<f32>,
        targets: Targets<'_>,
        num_chunks: usize,
        pool: &mut GradWorkspacePool,
        ws: &mut GradWorkspace,
    ) -> f32 {
        let x = x.as_view();
        let batch = x.nrows();
        let chunks = num_chunks.clamp(1, batch.max(1));
        if chunks <= 1 || batch <= 1 {
            return self.grad_batch_with(&x, targets, ws);
        }
        self.par_grad_batch_core(&x, targets, chunks, None, pool, ws)
    }

    /// Shared dispatch + reduction behind [`Network::par_grad_batch_with`]
    /// (`fuse = None`) and [`Network::par_grad_batch_fused_with`]
    /// (`fuse = Some(wd)`: folds `wd·w` into each weight segment after its
    /// reduction tree and records per-segment Σv² into `ws.seg_sumsq`).
    fn par_grad_batch_core(
        &self,
        x: &DenseView<'_, f32>,
        targets: Targets<'_>,
        chunks: usize,
        fuse: Option<f32>,
        pool: &mut GradWorkspacePool,
        ws: &mut GradWorkspace,
    ) -> f32 {
        let batch = x.nrows();
        assert_eq!(targets.len(), batch, "target/batch row mismatch");
        let chunk_size = batch.div_ceil(chunks);
        // Rounding can make the final range(s) empty; dispatch only real
        // ones so every chunk weight is positive.
        let n_chunks = batch.div_ceil(chunk_size);

        pool.ensure_chunks(self, n_chunks);
        if pool.scratch.is_empty() {
            pool.scratch
                .resize_with(rayon::current_num_threads().max(1), GradWorkspace::new);
        }
        let GradWorkspacePool { scratch, chunks } = pool;
        rayon::for_each_item_with(&mut chunks[..n_chunks], scratch, |cws, k, slot| {
            let range = k * chunk_size..(k * chunk_size + chunk_size).min(batch);
            slot.rows = range.len();
            cws.ensure(self);
            let GradWorkspace {
                trace,
                delta,
                grad_in,
                ..
            } = cws;
            // Zero-copy chunk inputs: row-range views of the shared batch.
            slot.loss = self.grad_batch_core(
                x.rows_view(range.clone()),
                targets.slice(range),
                trace,
                delta,
                grad_in,
                &mut slot.grads,
            );
        });

        // Combine in fixed chunk order: a pairwise tree per output element,
        // parallel over parameter ranges (element trees are independent, so
        // the parameter chunking cannot change any element's sum order).
        ws.ensure(self);
        let done = &pool.chunks[..n_chunks];
        let inv_batch = 1.0 / batch as f32;
        match fuse {
            None => {
                for (l, layer) in self.layers.iter().enumerate() {
                    let (w_len, b_len) = layer.param_lens();
                    // Every element is assigned by the reduction's tree
                    // leaves, so skip the zero-fill sweep.
                    ws.grads[l].resize_for_overwrite(w_len, b_len);
                    reduce_weighted_into(&mut ws.grads[l].w, done, inv_batch, |c| &c.grads[l].w);
                    reduce_weighted_into(&mut ws.grads[l].b, done, inv_batch, |c| &c.grads[l].b);
                }
            }
            Some(wd) => {
                let total_segs: usize = self
                    .layers
                    .iter()
                    .map(|l| {
                        let (w_len, b_len) = l.param_lens();
                        w_len.div_ceil(REDUCE_PARAM_CHUNK) + b_len.div_ceil(REDUCE_PARAM_CHUNK)
                    })
                    .sum();
                let GradWorkspace {
                    grads, seg_sumsq, ..
                } = ws;
                seg_sumsq.clear();
                seg_sumsq.resize(total_segs, 0.0);
                let mut off = 0usize;
                for (l, layer) in self.layers.iter().enumerate() {
                    let (w_len, b_len) = layer.param_lens();
                    grads[l].resize_for_overwrite(w_len, b_len);
                    let w_segs = w_len.div_ceil(REDUCE_PARAM_CHUNK);
                    let b_segs = b_len.div_ceil(REDUCE_PARAM_CHUNK);
                    let decay = (wd > 0.0).then(|| {
                        let w: &[f32] = match layer {
                            Layer::Sparse(s) => s.weights().data(),
                            Layer::Dense(d) => d.weights().as_slice(),
                        };
                        (w, wd)
                    });
                    reduce_weighted_fused_into(
                        &mut grads[l].w,
                        done,
                        inv_batch,
                        |c| &c.grads[l].w,
                        decay,
                        &mut seg_sumsq[off..off + w_segs],
                    );
                    off += w_segs;
                    reduce_weighted_fused_into(
                        &mut grads[l].b,
                        done,
                        inv_batch,
                        |c| &c.grads[l].b,
                        None,
                        &mut seg_sumsq[off..off + b_segs],
                    );
                    off += b_segs;
                }
            }
        }
        tree_sum(0, n_chunks, &|k| {
            done[k].rows as f32 * inv_batch * done[k].loss
        })
    }

    /// [`Network::par_grad_batch_with`] with L2 weight decay and the
    /// global gradient norm **folded into the tree-reduction sweep**:
    /// each parameter segment gets `wd·w` added and its Σv² recorded while
    /// it is still hot in cache, eliminating the separate
    /// [`Network::add_weight_decay`] pass and the norm pass of
    /// [`crate::train::clip_gradients`] — two fewer full sweeps over the
    /// parameters per step. Returns `(loss, grad_norm)` where `grad_norm`
    /// is the global L2 norm of the decayed gradients (the pre-clip norm);
    /// the caller decides whether to scale.
    ///
    /// The decayed gradients are **bitwise identical** to running
    /// [`Network::par_grad_batch_with`] followed by
    /// [`Network::add_weight_decay`]: the fold adds `wd·w` to each
    /// element after its reduction tree completes, exactly where the
    /// separate pass would. The norm is combined from fixed parameter
    /// segments by a fixed-order pairwise tree, so it too is bitwise
    /// reproducible across thread counts and steal schedules for a given
    /// chunk count (its segment-wise association differs from the
    /// separate-pass serial sum, so the two norms agree only to
    /// floating-point tolerance).
    ///
    /// Steady-state zero-alloc like the unfused path: the per-segment
    /// Σv² cells live in `ws` ([`GradWorkspace::for_network`] pre-sizes
    /// them).
    ///
    /// # Panics
    /// Panics on target/batch shape mismatches.
    pub fn par_grad_batch_fused_with(
        &self,
        x: &impl AsDenseView<f32>,
        targets: Targets<'_>,
        num_chunks: usize,
        wd: f32,
        pool: &mut GradWorkspacePool,
        ws: &mut GradWorkspace,
    ) -> (f32, f32) {
        let x = x.as_view();
        let batch = x.nrows();
        let chunks = num_chunks.clamp(1, batch.max(1));
        if chunks <= 1 || batch <= 1 {
            let loss = self.grad_batch_with(&x, targets, ws);
            if wd > 0.0 {
                self.add_weight_decay(&mut ws.grads, wd);
            }
            let norm = fixed_order_grad_norm(ws);
            return (loss, norm);
        }
        let loss = self.par_grad_batch_core(&x, targets, chunks, Some(wd), pool, ws);
        let norm = norm_from_segs(&ws.seg_sumsq);
        (loss, norm)
    }

    /// Adds L2 weight-decay terms `wd·w` to the weight gradients (biases
    /// untouched), in place.
    ///
    /// # Panics
    /// Panics if `grads` does not match the network's layer structure.
    pub fn add_weight_decay(&self, grads: &mut [LayerGrads], wd: f32) {
        assert_eq!(grads.len(), self.layers.len(), "gradient layer count");
        for (layer, g) in self.layers.iter().zip(grads) {
            match layer {
                Layer::Sparse(s) => {
                    assert_eq!(g.w.len(), s.weights().nnz(), "weight grad length");
                    for (gw, &w) in g.w.iter_mut().zip(s.weights().data()) {
                        *gw += wd * w;
                    }
                }
                Layer::Dense(d) => {
                    for (gw, &w) in g.w.iter_mut().zip(d.weights().as_slice()) {
                        *gw += wd * w;
                    }
                }
            }
        }
    }

    /// Applies one optimizer step given computed gradients.
    ///
    /// Allocates transient update vectors; the training loops call
    /// [`Network::apply_gradients_with`], which routes the updates through
    /// the workspace's reused scratch buffers instead.
    pub fn apply_gradients(&mut self, grads: &[LayerGrads], opt: &mut crate::Optimizer) {
        opt.begin_step();
        for (i, (layer, g)) in self.layers.iter_mut().zip(grads).enumerate() {
            let w_delta = opt.compute_update(2 * i, &g.w);
            let b_delta = opt.compute_update(2 * i + 1, &g.b);
            layer.apply_update(&w_delta, &b_delta);
        }
    }

    /// Applies one optimizer step to the gradients held in `ws`
    /// (`ws.grads()`), computing each layer's update into the workspace's
    /// reused scratch buffers — so a steady-state optimizer step performs
    /// no heap allocation (first-touch optimizer state is a warm-up cost).
    ///
    /// # Panics
    /// Panics if `ws` does not hold gradients matching the layer structure.
    pub fn apply_gradients_with(&mut self, ws: &mut GradWorkspace, opt: &mut crate::Optimizer) {
        let GradWorkspace {
            grads,
            w_update,
            b_update,
            ..
        } = ws;
        assert_eq!(grads.len(), self.layers.len(), "gradient layer count");
        opt.begin_step();
        for (i, (layer, g)) in self.layers.iter_mut().zip(grads.iter()).enumerate() {
            opt.compute_update_into(2 * i, &g.w, w_update);
            opt.compute_update_into(2 * i + 1, &g.b, b_update);
            layer.apply_update(w_update, b_update);
        }
    }

    /// Density of the network's weight structure relative to a dense net of
    /// the same layer sizes (1.0 for dense layers).
    #[must_use]
    pub fn density(&self) -> f64 {
        let mut nnz = 0usize;
        let mut full = 0usize;
        for layer in &self.layers {
            full += layer.n_in() * layer.n_out();
            nnz += match layer {
                Layer::Sparse(s) => s.weights().nnz(),
                Layer::Dense(_) => layer.n_in() * layer.n_out(),
            };
        }
        nnz as f64 / full as f64
    }
}

/// Fixed-shape pairwise tree sum over leaves `[lo, hi)`: split at the
/// midpoint, add left and right. The shape depends only on the leaf count,
/// never on thread count or schedule — this is what makes the
/// data-parallel gradient reduction bitwise-reproducible for a given chunk
/// count.
fn tree_sum<F: Fn(usize) -> f32>(lo: usize, hi: usize, leaf: &F) -> f32 {
    debug_assert!(lo < hi, "tree_sum needs at least one leaf");
    if hi - lo == 1 {
        leaf(lo)
    } else {
        let mid = lo + (hi - lo) / 2;
        tree_sum(lo, mid, leaf) + tree_sum(mid, hi, leaf)
    }
}

/// Parameters per reduction dispatch task (and per stack scratch buffer):
/// coarse enough to amortize the chunk claim and keep the inner loops
/// vectorizable, fine enough to load-balance wide layers across the pool
/// and keep the recursion's stack scratch small (2 KiB per tree level).
pub(crate) const REDUCE_PARAM_CHUNK: usize = 512;

/// One parameter segment of the fixed-shape tree: evaluates
/// `seg[j] = Σ_{k ∈ [lo, hi)} (rows_k / batch) · get(chunk_k)[base + j]`
/// with the sum associated exactly like [`tree_sum`] — leaves scale into
/// `seg`, internal nodes evaluate their right subtree into a stack scratch
/// and add it element-wise, so every pass is a straight-line vectorizable
/// loop and no heap is touched.
fn tree_reduce_seg<'a>(
    chunks: &'a [crate::workspace::ChunkGrads],
    lo: usize,
    hi: usize,
    base: usize,
    seg: &mut [f32],
    inv_batch: f32,
    get: &(impl Fn(&'a crate::workspace::ChunkGrads) -> &'a [f32] + Sync),
) {
    if hi - lo == 1 {
        let c = &chunks[lo];
        let weight = c.rows as f32 * inv_batch;
        let src = &get(c)[base..base + seg.len()];
        for (o, &s) in seg.iter_mut().zip(src) {
            *o = weight * s;
        }
    } else if hi - lo == 2 {
        // A two-leaf node in one fused pass (same association:
        // `w·gₗ + w·gᵣ` per element), halving the sweep count for the
        // common power-of-two chunk configurations.
        let (cl, cr) = (&chunks[lo], &chunks[lo + 1]);
        let (wl, wr) = (cl.rows as f32 * inv_batch, cr.rows as f32 * inv_batch);
        let sl = &get(cl)[base..base + seg.len()];
        let sr = &get(cr)[base..base + seg.len()];
        for ((o, &l), &r) in seg.iter_mut().zip(sl).zip(sr) {
            *o = wl * l + wr * r;
        }
    } else {
        let mid = lo + (hi - lo) / 2;
        tree_reduce_seg(chunks, lo, mid, base, seg, inv_batch, get);
        let mut right = [0.0f32; REDUCE_PARAM_CHUNK];
        let right = &mut right[..seg.len()];
        tree_reduce_seg(chunks, mid, hi, base, right, inv_batch, get);
        for (o, &r) in seg.iter_mut().zip(right.iter()) {
            *o += r;
        }
    }
}

/// Writes `out[p] = Σ_k (rows_k / batch) · get(chunk_k)[p]` with the sum
/// evaluated as [`tree_sum`]'s fixed pairwise tree over the chunk index —
/// parallel over parameter ranges on the worker pool (allocation-free:
/// each element's tree is independent, so the range chunking cannot change
/// any element's summation order, and no task list is materialized).
fn reduce_weighted_into<'a>(
    out: &mut [f32],
    chunks: &'a [crate::workspace::ChunkGrads],
    inv_batch: f32,
    get: impl Fn(&'a crate::workspace::ChunkGrads) -> &'a [f32] + Sync,
) {
    if out.is_empty() {
        return;
    }
    let n = chunks.len();
    rayon::for_each_chunk_mut(out, REDUCE_PARAM_CHUNK, |ci, seg| {
        tree_reduce_seg(chunks, 0, n, ci * REDUCE_PARAM_CHUNK, seg, inv_batch, &get);
    });
}

/// [`reduce_weighted_into`] with the fused epilogue of
/// [`Network::par_grad_batch_fused_with`]: after a segment's reduction
/// tree completes (while it is hot in cache), optionally adds `wd·w` from
/// the matching weight segment, then records the segment's Σv² into its
/// own cell of `sumsq` — one cell per segment, so no accumulator is
/// shared across threads and the caller's fixed-order combine over the
/// cells is schedule-independent.
fn reduce_weighted_fused_into<'a>(
    out: &mut [f32],
    chunks: &'a [crate::workspace::ChunkGrads],
    inv_batch: f32,
    get: impl Fn(&'a crate::workspace::ChunkGrads) -> &'a [f32] + Sync,
    decay: Option<(&[f32], f32)>,
    sumsq: &mut [f32],
) {
    if out.is_empty() {
        return;
    }
    let n = chunks.len();
    rayon::for_each_chunk_mut_paired(out, REDUCE_PARAM_CHUNK, sumsq, |ci, seg, ss| {
        let base = ci * REDUCE_PARAM_CHUNK;
        tree_reduce_seg(chunks, 0, n, base, seg, inv_batch, &get);
        if let Some((w, wd)) = decay {
            let slen = seg.len();
            for (o, &wv) in seg.iter_mut().zip(&w[base..base + slen]) {
                *o += wd * wv;
            }
        }
        *ss = seg.iter().fold(0.0f32, |acc, &v| acc + v * v);
    });
}

/// Global L2 norm from per-segment Σv² cells, combined by the fixed
/// pairwise tree over the segment index — bitwise-reproducible across
/// thread counts and steal schedules for a given segment layout.
fn norm_from_segs(segs: &[f32]) -> f32 {
    if segs.is_empty() {
        return 0.0;
    }
    tree_sum(0, segs.len(), &|s| segs[s]).max(0.0).sqrt()
}

/// Serial-fallback norm with the **same segment layout and combine order**
/// as the fused parallel path: per-layer weight segments then bias
/// segments, each summed left-to-right, combined by the fixed tree. Keeps
/// `par_grad_batch_fused_with` deterministic regardless of which path ran.
fn fixed_order_grad_norm(ws: &mut GradWorkspace) -> f32 {
    let GradWorkspace {
        grads, seg_sumsq, ..
    } = ws;
    seg_sumsq.clear();
    for g in grads.iter() {
        for seg in g.w.chunks(REDUCE_PARAM_CHUNK) {
            seg_sumsq.push(seg.iter().fold(0.0f32, |acc, &v| acc + v * v));
        }
        for seg in g.b.chunks(REDUCE_PARAM_CHUNK) {
            seg_sumsq.push(seg.iter().fold(0.0f32, |acc, &v| acc + v * v));
        }
    }
    norm_from_segs(seg_sumsq)
}

/// Convenience: a sparse network and its dense twin with identical layer
/// sizes, loss, and init scheme — the matched pair every training
/// comparison uses.
#[must_use]
pub fn matched_dense_twin(sparse: &Network, seed: u64) -> Network {
    let mut sizes = Vec::with_capacity(sparse.layers().len() + 1);
    sizes.push(sparse.n_in());
    for l in sparse.layers() {
        sizes.push(l.n_out());
    }
    let hidden_act = sparse.layers()[0].activation();
    Network::dense(&sizes, hidden_act, Init::Xavier, sparse.loss(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radix_net::{MixedRadixSystem, MixedRadixTopology};

    fn radix_fnnt() -> Fnnt {
        MixedRadixTopology::new(MixedRadixSystem::new([2, 2, 2]).unwrap()).into_fnnt()
    }

    fn batch(rows: usize, cols: usize, seed: u64) -> DenseMatrix<f32> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            let r: &mut [f32] = x.row_mut(i);
            for v in r.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
        }
        x
    }

    #[test]
    fn from_fnnt_shapes() {
        let net = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Relu,
            Init::He,
            Loss::SoftmaxCrossEntropy,
            0,
        );
        assert_eq!(net.n_in(), 8);
        assert_eq!(net.n_out(), 8);
        assert_eq!(net.layers().len(), 3);
        // 3 layers × 16 edges + 3 × 8 biases.
        assert_eq!(net.num_params(), 48 + 24);
        // Last layer must be linear.
        assert_eq!(net.layers()[2].activation(), Activation::Identity);
    }

    #[test]
    fn density_reflects_topology() {
        let sparse = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Relu,
            Init::He,
            Loss::SoftmaxCrossEntropy,
            0,
        );
        assert!((sparse.density() - 0.25).abs() < 1e-9); // degree 2 of 8
        let dense = matched_dense_twin(&sparse, 1);
        assert_eq!(dense.density(), 1.0);
        assert_eq!(dense.n_in(), sparse.n_in());
        assert!(dense.num_params() > sparse.num_params());
    }

    #[test]
    fn forward_trace_consistent_with_forward() {
        let net = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Sigmoid,
            Init::Xavier,
            Loss::Mse,
            3,
        );
        let x = batch(4, 8, 0);
        let trace = net.forward_trace(&x);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.last().unwrap(), &net.forward(&x));
    }

    #[test]
    fn par_grad_matches_serial() {
        let net = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Tanh,
            Init::Xavier,
            Loss::SoftmaxCrossEntropy,
            5,
        );
        let x = batch(16, 8, 1);
        let labels: Vec<usize> = (0..16).map(|i| i % 8).collect();
        let (l1, g1) = net.grad_batch(&x, Targets::Labels(&labels));
        let (l4, g4) = net.par_grad_batch(&x, Targets::Labels(&labels), 4);
        assert!((l1 - l4).abs() < 1e-5, "{l1} vs {l4}");
        for (a, b) in g1.iter().zip(&g4) {
            for (x, y) in a.w.iter().zip(&b.w) {
                assert!((x - y).abs() < 1e-5);
            }
            for (x, y) in a.b.iter().zip(&b.b) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn par_grad_regression_matches_serial() {
        let net = Network::dense(&[4, 6, 2], Activation::Tanh, Init::Xavier, Loss::Mse, 2);
        let x = batch(10, 4, 2);
        let y = batch(10, 2, 3);
        let (l1, g1) = net.grad_batch(&x, Targets::values(&y));
        let (l3, g3) = net.par_grad_batch(&x, Targets::values(&y), 3);
        assert!((l1 - l3).abs() < 1e-5);
        for (a, b) in g1.iter().zip(&g3) {
            for (x, y) in a.w.iter().zip(&b.w) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn chunk_weighting_matches_serial_for_even_and_ragged_splits() {
        // Regression test for the documented combine semantics: chunk
        // gradients and losses are weighted by `rows / batch`, so an even
        // split (every chunk the same size) reproduces grad_batch's
        // uniform mean up to float tolerance, and a ragged split (last
        // chunk shorter) still weights every *row* equally — the clamp on
        // num_chunks must never skew the weighting.
        let net = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Sigmoid,
            Init::Xavier,
            Loss::SoftmaxCrossEntropy,
            9,
        );
        // batch 16: chunks ∈ {2, 4, 16} split evenly; chunks=3 is ragged
        // (ceil(16/3)=6 → 6,6,4), as are 5 and 7; 64 clamps to one row per
        // chunk. The weighting must hold across all of them.
        let x = batch(16, 8, 6);
        let labels: Vec<usize> = (0..16).map(|i| (i * 5) % 8).collect();
        let (serial_loss, serial_grads) = net.grad_batch(&x, Targets::Labels(&labels));
        for chunks in [2usize, 3, 4, 5, 7, 16, 64] {
            let (loss, grads) = net.par_grad_batch(&x, Targets::Labels(&labels), chunks);
            assert!(
                (loss - serial_loss).abs() < 1e-5,
                "chunks={chunks}: weighted loss {loss} vs serial {serial_loss}"
            );
            for (a, b) in serial_grads.iter().zip(&grads) {
                for (p, q) in a.w.iter().zip(&b.w) {
                    assert!((p - q).abs() < 1e-5, "chunks={chunks}");
                }
                for (p, q) in a.b.iter().zip(&b.b) {
                    assert!((p - q).abs() < 1e-5, "chunks={chunks}");
                }
            }
        }
    }

    #[test]
    fn targets_slice_is_zero_copy_and_consistent() {
        let y = batch(6, 3, 11);
        let t = Targets::values(&y);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        let s = t.slice(2..5);
        assert_eq!(s.len(), 3);
        let Targets::Values(v) = s else {
            unreachable!()
        };
        assert_eq!(v.row(0), y.row(2));
        assert_eq!(v.as_slice().as_ptr(), y.row(2).as_ptr(), "must not copy");
        let labels = [1usize, 2, 3, 4];
        let ls = Targets::Labels(&labels).slice(1..3);
        let Targets::Labels(l) = ls else {
            unreachable!()
        };
        assert_eq!(l, &[2, 3]);
    }

    #[test]
    fn gradient_step_reduces_loss() {
        let mut net = Network::from_fnnt(
            &radix_fnnt(),
            Activation::Sigmoid,
            Init::Xavier,
            Loss::SoftmaxCrossEntropy,
            7,
        );
        let x = batch(32, 8, 4);
        let labels: Vec<usize> = (0..32).map(|i| (i * 3) % 8).collect();
        let (loss0, grads) = net.grad_batch(&x, Targets::Labels(&labels));
        let mut opt = crate::Optimizer::sgd(0.5);
        net.apply_gradients(&grads, &mut opt);
        let (loss1, _) = net.grad_batch(&x, Targets::Labels(&labels));
        assert!(
            loss1 < loss0,
            "one SGD step must descend: {loss0} → {loss1}"
        );
    }

    #[test]
    #[should_panic(expected = "layer widths must chain")]
    fn mismatched_layers_panic() {
        let a = Layer::Dense(DenseLinear::new(DenseMatrix::zeros(3, 4), Activation::Relu));
        let b = Layer::Dense(DenseLinear::new(DenseMatrix::zeros(5, 2), Activation::Relu));
        let _ = Network::new(vec![a, b], Loss::Mse);
    }

    #[test]
    fn sparse_and_dense_twin_agree_when_sparse_pattern_is_full() {
        // A "sparse" layer whose pattern is fully dense must behave like a
        // dense layer with the same weights.
        let full = Fnnt::dense(&[4, 4, 4]);
        let net = Network::from_fnnt(&full, Activation::Tanh, Init::Xavier, Loss::Mse, 11);
        assert_eq!(net.density(), 1.0);
        let x = batch(3, 4, 9);
        let out = net.forward(&x);
        assert_eq!(out.shape(), (3, 4));
    }
}
