//! First-order optimizers: SGD, momentum, Adam.
//!
//! Optimizers are stateful per parameter tensor; the network addresses each
//! layer's weight and bias vectors by a stable parameter id so state
//! survives across steps.

use std::collections::HashMap;

/// Optimizer configuration and state.
#[derive(Debug, Clone)]
pub enum Optimizer {
    /// Plain stochastic gradient descent: `w ← w − lr·g`.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Classical momentum: `v ← µ·v + g; w ← w − lr·v`.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient `µ` (e.g. 0.9).
        mu: f32,
        /// Per-parameter velocity state.
        velocity: HashMap<usize, Vec<f32>>,
    },
    /// Adam (Kingma & Ba) with bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay (e.g. 0.9).
        beta1: f32,
        /// Second-moment decay (e.g. 0.999).
        beta2: f32,
        /// Stability epsilon.
        eps: f32,
        /// Global step counter (for bias correction).
        t: u32,
        /// Per-parameter first-moment state.
        m: HashMap<usize, Vec<f32>>,
        /// Per-parameter second-moment state.
        v: HashMap<usize, Vec<f32>>,
    },
}

impl Optimizer {
    /// SGD with the given learning rate.
    #[must_use]
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr }
    }

    /// Momentum with the given learning rate and coefficient.
    #[must_use]
    pub fn momentum(lr: f32, mu: f32) -> Self {
        Optimizer::Momentum {
            lr,
            mu,
            velocity: HashMap::new(),
        }
    }

    /// Adam with standard hyperparameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    #[must_use]
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Multiplies the learning rate by `factor` (learning-rate schedules).
    pub fn scale_lr(&mut self, factor: f32) {
        match self {
            Optimizer::Sgd { lr } | Optimizer::Momentum { lr, .. } | Optimizer::Adam { lr, .. } => {
                *lr *= factor
            }
        }
    }

    /// Marks the start of a new optimization step (advances Adam's bias
    /// correction clock). Call once per mini-batch, before `compute_update`.
    pub fn begin_step(&mut self) {
        if let Optimizer::Adam { t, .. } = self {
            *t += 1;
        }
    }

    /// Computes the update `delta` such that the new parameters are
    /// `w − delta`, updating internal state for `param_id`.
    ///
    /// Allocates a fresh vector; the training loops use
    /// [`Optimizer::compute_update_into`] with a reused scratch buffer
    /// instead, which is what keeps a steady-state optimizer step
    /// allocation-free.
    #[must_use]
    pub fn compute_update(&mut self, param_id: usize, grads: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.compute_update_into(param_id, grads, &mut out);
        out
    }

    /// Like [`Optimizer::compute_update`], but writes the update into a
    /// caller-provided buffer (cleared and refilled, reusing its
    /// allocation once it has reached the largest parameter length).
    /// First-moment/velocity state still allocates once per `param_id` on
    /// first touch — a warm-up cost, not a steady-state one.
    pub fn compute_update_into(&mut self, param_id: usize, grads: &[f32], out: &mut Vec<f32>) {
        out.clear();
        match self {
            Optimizer::Sgd { lr } => out.extend(grads.iter().map(|g| *lr * g)),
            Optimizer::Momentum { lr, mu, velocity } => {
                let v = velocity
                    .entry(param_id)
                    .or_insert_with(|| vec![0.0; grads.len()]);
                assert_eq!(v.len(), grads.len(), "gradient length changed");
                for (vi, &g) in v.iter_mut().zip(grads) {
                    *vi = *mu * *vi + g;
                }
                out.extend(v.iter().map(|vi| *lr * vi));
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            } => {
                assert!(*t > 0, "call begin_step before compute_update");
                let m = m.entry(param_id).or_insert_with(|| vec![0.0; grads.len()]);
                let v = v.entry(param_id).or_insert_with(|| vec![0.0; grads.len()]);
                assert_eq!(m.len(), grads.len(), "gradient length changed");
                let bc1 = 1.0 - beta1.powi(*t as i32);
                let bc2 = 1.0 - beta2.powi(*t as i32);
                for ((mi, vi), &g) in m.iter_mut().zip(v.iter_mut()).zip(grads) {
                    *mi = *beta1 * *mi + (1.0 - *beta1) * g;
                    *vi = *beta2 * *vi + (1.0 - *beta2) * g * g;
                    let mhat = *mi / bc1;
                    let vhat = *vi / bc2;
                    out.push(*lr * mhat / (vhat.sqrt() + *eps));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_is_lr_times_grad() {
        let mut opt = Optimizer::sgd(0.1);
        opt.begin_step();
        let d = opt.compute_update(0, &[1.0, -2.0]);
        assert_eq!(d, vec![0.1, -0.2]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Optimizer::momentum(1.0, 0.5);
        opt.begin_step();
        let d1 = opt.compute_update(0, &[1.0]);
        assert_eq!(d1, vec![1.0]);
        opt.begin_step();
        let d2 = opt.compute_update(0, &[1.0]);
        assert_eq!(d2, vec![1.5]); // v = 0.5·1 + 1
                                   // Separate parameter id has separate state.
        let d_other = opt.compute_update(1, &[1.0]);
        assert_eq!(d_other, vec![1.0]);
    }

    #[test]
    fn adam_first_step_is_lr_signed() {
        // With bias correction, the first Adam step is ≈ lr · sign(g).
        let mut opt = Optimizer::adam(0.01);
        opt.begin_step();
        let d = opt.compute_update(0, &[3.0, -0.5]);
        assert!((d[0] - 0.01).abs() < 1e-4);
        assert!((d[1] + 0.01).abs() < 1e-4);
    }

    #[test]
    fn adam_requires_begin_step() {
        let mut opt = Optimizer::adam(0.01);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = opt.compute_update(0, &[1.0]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn scale_lr_halves_sgd_steps() {
        let mut opt = Optimizer::sgd(0.2);
        opt.scale_lr(0.5);
        opt.begin_step();
        assert_eq!(opt.compute_update(0, &[1.0]), vec![0.1]);
        let mut adam = Optimizer::adam(0.01);
        adam.scale_lr(2.0);
        adam.begin_step();
        let d = adam.compute_update(0, &[1.0]);
        assert!((d[0] - 0.02).abs() < 1e-4);
    }

    #[test]
    fn optimizers_descend_a_quadratic() {
        // Minimize f(w) = ½‖w‖² from w = (4, −3); all optimizers must
        // reduce the norm substantially in 100 steps.
        for mut opt in [
            Optimizer::sgd(0.1),
            Optimizer::momentum(0.05, 0.9),
            Optimizer::adam(0.1),
        ] {
            let mut w = [4.0f32, -3.0];
            for _ in 0..100 {
                opt.begin_step();
                let g = w.to_vec(); // ∇f = w
                let d = opt.compute_update(0, &g);
                for (wi, di) in w.iter_mut().zip(&d) {
                    *wi -= di;
                }
            }
            let norm = (w[0] * w[0] + w[1] * w[1]).sqrt();
            assert!(norm < 0.5, "{opt:?} ended at norm {norm}");
        }
    }
}
