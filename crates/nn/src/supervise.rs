//! Supervised training: automatic restart from the last good checkpoint.
//!
//! [`TrainSupervisor`] mirrors the serving-side `ServeSupervisor` for the
//! training path: it runs a checkpointed training attempt under
//! `catch_unwind`, and when the attempt dies — an injected fault, an
//! engine panic, a simulated crash mid-checkpoint — it restores pristine
//! starting state, waits out a linear backoff, and retries. The retry
//! *resumes* rather than restarts: the next attempt's
//! `train_*_checkpointed` call finds the newest valid generation in the
//! [`Checkpointer`]'s directory and continues bitwise identically from
//! its cursor (see [`crate::train`]), and when the newest generation is
//! itself damaged — torn by a crash mid-write, bit-flipped on disk — the
//! loader falls back to the previous good generation automatically.
//!
//! Restarts are bounded by [`TrainRestartPolicy::max_restarts`]; once the
//! budget is spent the supervisor returns
//! [`TrainSuperviseError::RestartsExhausted`] carrying the last panic
//! message. Because the [`Checkpointer`]'s fault injector shares its
//! cumulative counters across the whole supervision run, a schedule like
//! "panic at batch 40, budget 1" fires exactly once no matter how many
//! attempts observe batch 40.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use crate::checkpoint::{CheckpointError, Checkpointer};
use crate::network::Network;
use crate::optimizer::Optimizer;
use crate::train::History;

/// How aggressively the supervisor retries a crashed training attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainRestartPolicy {
    /// Maximum restarts over the supervised run; once exhausted the run
    /// fails with [`TrainSuperviseError::RestartsExhausted`].
    pub max_restarts: u32,
    /// Base backoff slept before restart `n` is `backoff * n` (linear):
    /// a crash loop decelerates instead of spinning.
    pub backoff: Duration,
}

impl Default for TrainRestartPolicy {
    fn default() -> Self {
        TrainRestartPolicy {
            max_restarts: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

/// Why a supervised training run failed for good.
#[derive(Debug)]
pub enum TrainSuperviseError {
    /// An attempt returned a checkpoint error (I/O failure, incompatible
    /// resume state) — not a crash, so not retried.
    Checkpoint(CheckpointError),
    /// Every restart in the budget was consumed by panics.
    RestartsExhausted {
        /// Restarts performed before giving up.
        restarts: u32,
        /// Panic message of the final crash.
        last_panic: String,
    },
}

impl std::fmt::Display for TrainSuperviseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainSuperviseError::Checkpoint(e) => write!(f, "supervised training failed: {e}"),
            TrainSuperviseError::RestartsExhausted {
                restarts,
                last_panic,
            } => write!(
                f,
                "training restart budget exhausted after {restarts} restarts (last panic: {last_panic})"
            ),
        }
    }
}

impl std::error::Error for TrainSuperviseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainSuperviseError::Checkpoint(e) => Some(e),
            TrainSuperviseError::RestartsExhausted { .. } => None,
        }
    }
}

impl From<CheckpointError> for TrainSuperviseError {
    fn from(e: CheckpointError) -> Self {
        TrainSuperviseError::Checkpoint(e)
    }
}

/// Outcome of a supervised training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// The completed run's history (identical to an unsupervised run's).
    pub history: History,
    /// Crash-triggered restarts performed along the way.
    pub restarts: u32,
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The training supervisor: a restart loop around a checkpointed
/// training attempt.
pub struct TrainSupervisor {
    policy: TrainRestartPolicy,
}

impl TrainSupervisor {
    /// A supervisor with the given restart policy.
    #[must_use]
    pub fn new(policy: TrainRestartPolicy) -> Self {
        TrainSupervisor { policy }
    }

    /// Runs `attempt` (typically a closure calling
    /// [`crate::train_classifier_checkpointed`]) under the restart loop.
    ///
    /// Each attempt starts from a fresh clone of the *pristine* `net` and
    /// `opt` the caller passed in — the checkpoint resume path inside the
    /// attempt then fast-forwards them to the last good cursor, so a
    /// crashed attempt can never leak torn in-memory state into the next
    /// one. On success the trained state is written back into `net` /
    /// `opt`.
    ///
    /// # Errors
    /// [`TrainSuperviseError::Checkpoint`] when an attempt returns a
    /// checkpoint error (these are deterministic, so never retried);
    /// [`TrainSuperviseError::RestartsExhausted`] when panics consume the
    /// whole restart budget.
    pub fn run<F>(
        &self,
        net: &mut Network,
        opt: &mut Optimizer,
        ckpt: &mut Checkpointer,
        mut attempt: F,
    ) -> Result<TrainReport, TrainSuperviseError>
    where
        F: FnMut(
            &mut Network,
            &mut Optimizer,
            &mut Checkpointer,
        ) -> Result<History, CheckpointError>,
    {
        let pristine_net = net.clone();
        let pristine_opt = opt.clone();
        let mut restarts = 0u32;
        loop {
            let mut attempt_net = pristine_net.clone();
            let mut attempt_opt = pristine_opt.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                attempt(&mut attempt_net, &mut attempt_opt, ckpt)
            }));
            match outcome {
                Ok(Ok(history)) => {
                    *net = attempt_net;
                    *opt = attempt_opt;
                    return Ok(TrainReport { history, restarts });
                }
                Ok(Err(e)) => return Err(TrainSuperviseError::Checkpoint(e)),
                Err(payload) => {
                    let last_panic = panic_message(payload.as_ref());
                    if restarts >= self.policy.max_restarts {
                        return Err(TrainSuperviseError::RestartsExhausted {
                            restarts,
                            last_panic,
                        });
                    }
                    restarts += 1;
                    // Linear backoff: a crash loop decelerates.
                    let pause = self.policy.backoff.saturating_mul(restarts);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::fault::{TrainFaultInjector, TrainFaultPlan, INJECTED_TRAIN_PANIC_MSG};
    use crate::init::Init;
    use crate::loss::Loss;
    use crate::train::{train_regressor, train_regressor_checkpointed, TrainConfig};
    use radix_sparse::DenseMatrix;

    fn toy_regression(n: usize) -> (DenseMatrix<f32>, DenseMatrix<f32>) {
        let mut x = DenseMatrix::zeros(n, 4);
        let mut y = DenseMatrix::zeros(n, 2);
        for i in 0..n {
            for j in 0..4 {
                // Deterministic pseudo-data; no RNG needed.
                let v = ((i * 7 + j * 3) % 13) as f32 / 13.0 - 0.5;
                x.set(i, j, v);
            }
            y.set(i, 0, x.get(i, 0) - 0.5 * x.get(i, 1));
            y.set(i, 1, 0.25 * x.get(i, 2) + x.get(i, 3));
        }
        (x, y)
    }

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "radix-supervise-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn supervisor_recovers_from_injected_panic_bitwise_identically() {
        let (x, y) = toy_regression(64);
        let config = TrainConfig {
            epochs: 4,
            batch_size: 16,
            seed: 9,
            ..TrainConfig::default()
        };

        // Reference: uninterrupted, unsupervised run.
        let mut ref_net = Network::dense(&[4, 8, 2], Activation::Tanh, Init::Xavier, Loss::Mse, 3);
        let mut ref_opt = Optimizer::adam(0.01);
        let ref_history = train_regressor(&mut ref_net, &x, &y, &mut ref_opt, &config);

        // Supervised run with a panic injected mid-epoch 2.
        let dir = scratch_dir("recovers");
        let plan = TrainFaultPlan {
            panic_at_batch: Some(9),
            panic_budget: 1,
            ..TrainFaultPlan::default()
        };
        let mut ck = Checkpointer::new(&dir)
            .unwrap()
            .with_every(2)
            .with_faults(TrainFaultInjector::new(plan));
        let mut net = Network::dense(&[4, 8, 2], Activation::Tanh, Init::Xavier, Loss::Mse, 3);
        let mut opt = Optimizer::adam(0.01);
        let report = TrainSupervisor::new(TrainRestartPolicy {
            backoff: Duration::from_millis(1),
            ..TrainRestartPolicy::default()
        })
        .run(&mut net, &mut opt, &mut ck, |n, o, c| {
            train_regressor_checkpointed(n, &x, &y, o, &config, c)
        })
        .unwrap();

        assert_eq!(report.restarts, 1);
        assert_eq!(report.history, ref_history);
        assert_eq!(net, ref_net);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_budget_surfaces_last_panic() {
        let (x, y) = toy_regression(32);
        let config = TrainConfig {
            epochs: 2,
            batch_size: 16,
            seed: 1,
            ..TrainConfig::default()
        };
        let dir = scratch_dir("exhausted");
        // More panics scheduled than the restart budget tolerates.
        let plan = TrainFaultPlan {
            panic_at_batch: Some(1),
            panic_budget: 100,
            ..TrainFaultPlan::default()
        };
        let mut ck = Checkpointer::new(&dir)
            .unwrap()
            .with_faults(TrainFaultInjector::new(plan));
        let mut net = Network::dense(&[4, 8, 2], Activation::Tanh, Init::Xavier, Loss::Mse, 3);
        let mut opt = Optimizer::sgd(0.1);
        let err = TrainSupervisor::new(TrainRestartPolicy {
            max_restarts: 2,
            backoff: Duration::ZERO,
        })
        .run(&mut net, &mut opt, &mut ck, |n, o, c| {
            train_regressor_checkpointed(n, &x, &y, o, &config, c)
        })
        .unwrap_err();
        match err {
            TrainSuperviseError::RestartsExhausted {
                restarts,
                last_panic,
            } => {
                assert_eq!(restarts, 2);
                assert!(
                    last_panic.contains(INJECTED_TRAIN_PANIC_MSG),
                    "{last_panic}"
                );
            }
            other => panic!("expected RestartsExhausted, got {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incompatible_checkpoint_is_not_retried() {
        let (x, y) = toy_regression(32);
        let config = TrainConfig {
            epochs: 2,
            batch_size: 16,
            seed: 5,
            ..TrainConfig::default()
        };
        let dir = scratch_dir("not-retried");
        let mut ck = Checkpointer::new(&dir).unwrap();
        let mut net = Network::dense(&[4, 8, 2], Activation::Tanh, Init::Xavier, Loss::Mse, 3);
        let mut opt = Optimizer::sgd(0.1);
        train_regressor_checkpointed(&mut net, &x, &y, &mut opt, &config, &mut ck).unwrap();

        // Same directory, different seed → deterministic Incompatible, no
        // restarts burned.
        let other = TrainConfig {
            seed: 6,
            ..config.clone()
        };
        let mut ck2 = Checkpointer::new(&dir).unwrap();
        let err = TrainSupervisor::new(TrainRestartPolicy::default())
            .run(&mut net, &mut opt, &mut ck2, |n, o, c| {
                train_regressor_checkpointed(n, &x, &y, o, &other, c)
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                TrainSuperviseError::Checkpoint(CheckpointError::Incompatible { .. })
            ),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
