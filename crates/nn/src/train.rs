//! Mini-batch training loop with shuffling and history recording.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use radix_sparse::DenseMatrix;

use crate::loss::accuracy;
use crate::network::{Network, Targets};
use crate::optimizer::Optimizer;
use crate::workspace::{ForwardWorkspace, GradWorkspace, GradWorkspacePool};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed (shuffling is always on; determinism comes from the
    /// seed).
    pub seed: u64,
    /// Number of Rayon data-parallel chunks per mini-batch (1 = serial).
    pub parallel_chunks: usize,
    /// L2 weight decay coefficient (0.0 = off). Applied to weights only,
    /// never biases, by adding `wd·w` to the gradient before the optimizer
    /// step.
    pub weight_decay: f32,
    /// Global-norm gradient clipping threshold (`None` = off).
    pub grad_clip: Option<f32>,
    /// Multiplicative learning-rate decay applied after every epoch
    /// (1.0 = constant rate).
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            seed: 0,
            parallel_chunks: 1,
            weight_decay: 0.0,
            grad_clip: None,
            lr_decay: 1.0,
        }
    }
}

/// Scales every gradient so the global L2 norm is at most `max_norm`;
/// returns the pre-clip norm.
pub fn clip_gradients(grads: &mut [crate::layer::LayerGrads], max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    for g in grads.iter() {
        sq += g.w.iter().map(|v| v * v).sum::<f32>();
        sq += g.b.iter().map(|v| v * v).sum::<f32>();
    }
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for v in &mut g.w {
                *v *= scale;
            }
            for v in &mut g.b {
                *v *= scale;
            }
        }
    }
    norm
}

/// Per-epoch training history.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Mean training loss per epoch.
    pub losses: Vec<f32>,
    /// Training accuracy per epoch (classification only; empty otherwise).
    pub accuracies: Vec<f64>,
}

impl History {
    /// The final epoch's loss.
    #[must_use]
    pub fn final_loss(&self) -> f32 {
        self.losses.last().copied().unwrap_or(f32::NAN)
    }

    /// The final epoch's accuracy (NaN if not a classification run).
    #[must_use]
    pub fn final_accuracy(&self) -> f64 {
        self.accuracies.last().copied().unwrap_or(f64::NAN)
    }
}

fn gather_rows_into(x: &DenseMatrix<f32>, idx: &[usize], out: &mut DenseMatrix<f32>) {
    // Every row is copy_from_slice-overwritten below, so skip zeroing.
    out.resize_for_overwrite(idx.len(), x.ncols());
    for (local, &global) in idx.iter().enumerate() {
        let dst: &mut [f32] = out.row_mut(local);
        dst.copy_from_slice(x.row(global));
    }
}

/// One optimizer step on a gathered mini-batch: gradients via the
/// persistent workspace (serial) or the pool-native data-parallel path,
/// then weight decay, clipping, and the update through the workspace's
/// reused optimizer scratch — shared by both training loops. Every buffer
/// involved persists across batches, so steady-state steps perform no
/// heap allocation on either path.
fn train_step(
    net: &mut Network,
    xb: &DenseMatrix<f32>,
    targets: Targets<'_>,
    opt: &mut Optimizer,
    config: &TrainConfig,
    ws: &mut GradWorkspace,
    pool: Option<&mut GradWorkspacePool>,
) -> f32 {
    let loss = match pool {
        Some(pool) => net.par_grad_batch_with(xb, targets, config.parallel_chunks, pool, ws),
        None => net.grad_batch_with(xb, targets, ws),
    };
    if config.weight_decay > 0.0 {
        net.add_weight_decay(ws.grads_mut(), config.weight_decay);
    }
    if let Some(max_norm) = config.grad_clip {
        clip_gradients(ws.grads_mut(), max_norm);
    }
    net.apply_gradients_with(ws, opt);
    loss
}

/// Trains a classifier with softmax cross-entropy.
///
/// # Panics
/// Panics if `x.nrows() != labels.len()` or the batch size is zero.
pub fn train_classifier(
    net: &mut Network,
    x: &DenseMatrix<f32>,
    labels: &[usize],
    opt: &mut Optimizer,
    config: &TrainConfig,
) -> History {
    assert_eq!(x.nrows(), labels.len(), "sample/label count mismatch");
    assert!(config.batch_size > 0, "batch size must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..x.nrows()).collect();
    let mut history = History::default();
    history.losses.reserve_exact(config.epochs);
    history.accuracies.reserve_exact(config.epochs);
    // Persistent buffers: mini-batch gather, forward/backward workspace,
    // and the full-set evaluation workspace are pre-sized to their
    // high-water mark and reused across every batch and epoch — including
    // the loss gradient, which Loss::eval_*_into writes into the workspace
    // delta buffer, so training batches perform no heap allocation at all
    // (pinned down by `tests/zero_alloc.rs`).
    let mut xb = DenseMatrix::zeros(0, 0);
    let mut yb: Vec<usize> = Vec::new();
    let batch_rows = config.batch_size.min(x.nrows().max(1));
    let mut ws = GradWorkspace::for_network(net, batch_rows);
    // Data-parallel runs additionally hold per-worker chunk workspaces,
    // reused across every batch and epoch (the pool-native path).
    let mut pool = (config.parallel_chunks > 1)
        .then(|| GradWorkspacePool::for_network(net, batch_rows, config.parallel_chunks));
    let mut eval_ws = ForwardWorkspace::for_network(net, x.nrows());
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0u32;
        for chunk in order.chunks(config.batch_size) {
            gather_rows_into(x, chunk, &mut xb);
            yb.clear();
            yb.extend(chunk.iter().map(|&i| labels[i]));
            epoch_loss += train_step(
                net,
                &xb,
                Targets::Labels(&yb),
                opt,
                config,
                &mut ws,
                pool.as_mut(),
            );
            batches += 1;
        }
        history.losses.push(epoch_loss / batches.max(1) as f32);
        let logits = net.forward_with(x, &mut eval_ws);
        history.accuracies.push(accuracy(logits, labels));
        if config.lr_decay != 1.0 {
            opt.scale_lr(config.lr_decay);
        }
    }
    history
}

/// Trains a regressor with MSE.
///
/// # Panics
/// Panics if sample counts mismatch or the batch size is zero.
pub fn train_regressor(
    net: &mut Network,
    x: &DenseMatrix<f32>,
    y: &DenseMatrix<f32>,
    opt: &mut Optimizer,
    config: &TrainConfig,
) -> History {
    assert_eq!(x.nrows(), y.nrows(), "sample/target count mismatch");
    assert!(config.batch_size > 0, "batch size must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..x.nrows()).collect();
    let mut history = History::default();
    history.losses.reserve_exact(config.epochs);
    history.accuracies.reserve_exact(config.epochs);
    let mut xb = DenseMatrix::zeros(0, 0);
    let mut yb = DenseMatrix::zeros(0, 0);
    let batch_rows = config.batch_size.min(x.nrows().max(1));
    let mut ws = GradWorkspace::for_network(net, batch_rows);
    let mut pool = (config.parallel_chunks > 1)
        .then(|| GradWorkspacePool::for_network(net, batch_rows, config.parallel_chunks));
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0u32;
        for chunk in order.chunks(config.batch_size) {
            gather_rows_into(x, chunk, &mut xb);
            gather_rows_into(y, chunk, &mut yb);
            epoch_loss += train_step(
                net,
                &xb,
                Targets::values(&yb),
                opt,
                config,
                &mut ws,
                pool.as_mut(),
            );
            batches += 1;
        }
        history.losses.push(epoch_loss / batches.max(1) as f32);
        if config.lr_decay != 1.0 {
            opt.scale_lr(config.lr_decay);
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::Init;
    use crate::loss::Loss;
    use radix_net::{MixedRadixSystem, RadixNetSpec};

    /// A linearly-separable 2-class problem in 8 dimensions.
    fn toy_problem(n: usize) -> (DenseMatrix<f32>, Vec<usize>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(99);
        let mut x = DenseMatrix::zeros(n, 8);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center: f32 = if class == 0 { 1.0 } else { -1.0 };
            let row: &mut [f32] = x.row_mut(i);
            for v in row.iter_mut() {
                *v = center + rng.gen_range(-0.4..0.4);
            }
            labels.push(class);
        }
        (x, labels)
    }

    fn radix_classifier(seed: u64) -> Network {
        // RadiX-Net: (2,2,2) widths (1,2,2,1): 8→16→16→8 sparse net; we use
        // outputs 0..2 by training an 8-class head on 2 classes — instead,
        // build widths ending in a narrow head via a dense readout:
        // simplest is to use the 8-wide output and labels in {0,1}.
        let spec = RadixNetSpec::new(
            vec![MixedRadixSystem::new([2, 2, 2]).unwrap()],
            vec![1, 2, 2, 1],
        )
        .unwrap();
        Network::from_fnnt(
            &spec.build().into_fnnt(),
            Activation::Tanh,
            Init::Xavier,
            Loss::SoftmaxCrossEntropy,
            seed,
        )
    }

    #[test]
    fn classifier_learns_separable_data() {
        let (x, labels) = toy_problem(128);
        let mut net = radix_classifier(1);
        let mut opt = Optimizer::adam(0.01);
        let config = TrainConfig {
            epochs: 30,
            batch_size: 16,
            seed: 7,
            parallel_chunks: 1,
            ..TrainConfig::default()
        };
        let history = train_classifier(&mut net, &x, &labels, &mut opt, &config);
        assert!(
            history.final_accuracy() > 0.95,
            "accuracy {} too low; losses {:?}",
            history.final_accuracy(),
            history.losses
        );
        assert!(history.final_loss() < history.losses[0]);
    }

    #[test]
    fn parallel_training_also_learns() {
        let (x, labels) = toy_problem(128);
        let mut net = radix_classifier(2);
        let mut opt = Optimizer::adam(0.01);
        let config = TrainConfig {
            epochs: 30,
            batch_size: 32,
            seed: 8,
            parallel_chunks: 4,
            ..TrainConfig::default()
        };
        let history = train_classifier(&mut net, &x, &labels, &mut opt, &config);
        assert!(history.final_accuracy() > 0.95);
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let (x, labels) = toy_problem(64);
        let config = TrainConfig {
            epochs: 5,
            batch_size: 16,
            seed: 3,
            parallel_chunks: 1,
            ..TrainConfig::default()
        };
        let mut a = radix_classifier(4);
        let mut b = radix_classifier(4);
        let ha = train_classifier(&mut a, &x, &labels, &mut Optimizer::sgd(0.1), &config);
        let hb = train_classifier(&mut b, &x, &labels, &mut Optimizer::sgd(0.1), &config);
        assert_eq!(ha.losses, hb.losses);
        assert_eq!(a, b);
    }

    #[test]
    fn regressor_fits_linear_map() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(12);
        let n = 128;
        let mut x = DenseMatrix::zeros(n, 4);
        let mut y = DenseMatrix::zeros(n, 2);
        for i in 0..n {
            let xr: &mut [f32] = x.row_mut(i);
            for v in xr.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
            let (a, b, c, d) = (x.get(i, 0), x.get(i, 1), x.get(i, 2), x.get(i, 3));
            y.set(i, 0, 0.5 * a - b);
            y.set(i, 1, c + 0.25 * d);
        }
        let mut net = Network::dense(&[4, 8, 2], Activation::Tanh, Init::Xavier, Loss::Mse, 5);
        let mut opt = Optimizer::adam(0.02);
        let config = TrainConfig {
            epochs: 60,
            batch_size: 32,
            seed: 1,
            parallel_chunks: 1,
            ..TrainConfig::default()
        };
        let history = train_regressor(&mut net, &x, &y, &mut opt, &config);
        assert!(
            history.final_loss() < 0.01,
            "final loss {} too high",
            history.final_loss()
        );
    }

    #[test]
    fn history_accessors_on_empty() {
        let h = History::default();
        assert!(h.final_loss().is_nan());
        assert!(h.final_accuracy().is_nan());
    }
}
