//! Mini-batch training loop with shuffling, history recording, and
//! optional crash-safe checkpointing.
//!
//! ## Resume semantics (bitwise identity)
//!
//! Both loops consume randomness through exactly one in-place `shuffle`
//! of the index permutation per epoch, and the PR 5 fixed-order tree
//! reduction makes every gradient step reproducible for a given batch
//! sequence. A checkpoint therefore needs no serialized RNG state: the
//! resume path re-seeds from `TrainConfig::seed`, replays the shuffles
//! the original run had already drawn (`epoch` of them, plus one more if
//! the cursor is mid-epoch), skips the `batch` mini-batches already
//! applied, and restores the partial epoch-loss accumulator at exact
//! bits — from there every arithmetic operation happens in the same
//! order on the same values as an uninterrupted run, so the final
//! network, optimizer, and history are **bitwise identical**
//! (`tests/checkpoint.rs` pins this with a kill-at-batch-N proptest).
//! Checkpoint cadence never affects the numbers: saving only reads
//! state.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use radix_sparse::DenseMatrix;

use crate::checkpoint::{Checkpoint, CheckpointError, Checkpointer, TrainProgress};
use crate::loss::accuracy;
use crate::network::{Network, Targets};
use crate::optimizer::Optimizer;
use crate::workspace::{ForwardWorkspace, GradWorkspace, GradWorkspacePool};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed (shuffling is always on; determinism comes from the
    /// seed).
    pub seed: u64,
    /// Number of Rayon data-parallel chunks per mini-batch (1 = serial).
    pub parallel_chunks: usize,
    /// L2 weight decay coefficient (0.0 = off). Applied to weights only,
    /// never biases, by adding `wd·w` to the gradient before the optimizer
    /// step.
    pub weight_decay: f32,
    /// Global-norm gradient clipping threshold (`None` = off).
    pub grad_clip: Option<f32>,
    /// Multiplicative learning-rate decay applied after every epoch
    /// (1.0 = constant rate).
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            seed: 0,
            parallel_chunks: 1,
            weight_decay: 0.0,
            grad_clip: None,
            lr_decay: 1.0,
        }
    }
}

/// Scales every gradient so the global L2 norm is at most `max_norm`;
/// returns the pre-clip norm.
pub fn clip_gradients(grads: &mut [crate::layer::LayerGrads], max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    for g in grads.iter() {
        sq += g.w.iter().map(|v| v * v).sum::<f32>();
        sq += g.b.iter().map(|v| v * v).sum::<f32>();
    }
    let norm = sq.sqrt();
    scale_to_max_norm(grads, norm, max_norm);
    norm
}

/// The scaling half of [`clip_gradients`]: scales every gradient by
/// `max_norm / norm` when `norm` exceeds `max_norm`. Callers that already
/// know the norm (the fused decay-and-norm reduction,
/// [`crate::Network::par_grad_batch_fused_with`]) apply the clip without
/// re-walking the parameters to measure it.
pub fn scale_to_max_norm(grads: &mut [crate::layer::LayerGrads], norm: f32, max_norm: f32) {
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for v in &mut g.w {
                *v *= scale;
            }
            for v in &mut g.b {
                *v *= scale;
            }
        }
    }
}

/// Per-epoch training history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    /// Mean training loss per epoch.
    pub losses: Vec<f32>,
    /// Training accuracy per epoch (classification only; empty otherwise).
    pub accuracies: Vec<f64>,
}

impl History {
    /// The final epoch's loss.
    #[must_use]
    pub fn final_loss(&self) -> f32 {
        self.losses.last().copied().unwrap_or(f32::NAN)
    }

    /// The final epoch's accuracy (NaN if not a classification run).
    #[must_use]
    pub fn final_accuracy(&self) -> f64 {
        self.accuracies.last().copied().unwrap_or(f64::NAN)
    }
}

fn gather_rows_into(x: &DenseMatrix<f32>, idx: &[usize], out: &mut DenseMatrix<f32>) {
    // Every row is copy_from_slice-overwritten below, so skip zeroing.
    out.resize_for_overwrite(idx.len(), x.ncols());
    for (local, &global) in idx.iter().enumerate() {
        let dst: &mut [f32] = out.row_mut(local);
        dst.copy_from_slice(x.row(global));
    }
}

/// One optimizer step on a gathered mini-batch: gradients via the
/// persistent workspace (serial) or the pool-native data-parallel path,
/// then weight decay, clipping, and the update through the workspace's
/// reused optimizer scratch — shared by both training loops. Every buffer
/// involved persists across batches, so steady-state steps perform no
/// heap allocation on either path.
fn train_step(
    net: &mut Network,
    xb: &DenseMatrix<f32>,
    targets: Targets<'_>,
    opt: &mut Optimizer,
    config: &TrainConfig,
    ws: &mut GradWorkspace,
    pool: Option<&mut GradWorkspacePool>,
) -> f32 {
    let fused = config.weight_decay > 0.0 || config.grad_clip.is_some();
    let loss = match pool {
        // Decay and the clip norm fold into the gradient reduction sweep
        // (two fewer passes over the parameters); only the conditional
        // scale pass remains when clipping actually triggers.
        Some(pool) if fused => {
            let (loss, norm) = net.par_grad_batch_fused_with(
                xb,
                targets,
                config.parallel_chunks,
                config.weight_decay,
                pool,
                ws,
            );
            if let Some(max_norm) = config.grad_clip {
                scale_to_max_norm(ws.grads_mut(), norm, max_norm);
            }
            loss
        }
        Some(pool) => net.par_grad_batch_with(xb, targets, config.parallel_chunks, pool, ws),
        None => {
            let loss = net.grad_batch_with(xb, targets, ws);
            if config.weight_decay > 0.0 {
                net.add_weight_decay(ws.grads_mut(), config.weight_decay);
            }
            if let Some(max_norm) = config.grad_clip {
                clip_gradients(ws.grads_mut(), max_norm);
            }
            loss
        }
    };
    net.apply_gradients_with(ws, opt);
    loss
}

/// What a training run is fitting — the only place the two public loops
/// differ (target gathering and the per-epoch accuracy eval).
enum Problem<'a> {
    Classify(&'a [usize]),
    Regress(&'a DenseMatrix<f32>),
}

/// Refuses to resume from a checkpoint that belongs to a different run:
/// mismatched architecture or loss, a different shuffle seed (the batch
/// sequence would diverge), or a cursor outside this configuration.
fn check_resume_compat(
    net: &Network,
    config: &TrainConfig,
    c: &Checkpoint,
    n_batches: usize,
) -> Result<(), CheckpointError> {
    let incompatible = |detail: String| Err(CheckpointError::Incompatible { detail });
    if c.progress.seed != config.seed {
        return incompatible(format!(
            "checkpoint seed {} vs configured seed {}",
            c.progress.seed, config.seed
        ));
    }
    if c.net.loss() != net.loss() {
        return incompatible("loss function differs".into());
    }
    if c.net.layers().len() != net.layers().len() {
        return incompatible(format!(
            "checkpoint has {} layers, network has {}",
            c.net.layers().len(),
            net.layers().len()
        ));
    }
    for (i, (a, b)) in c.net.layers().iter().zip(net.layers()).enumerate() {
        if a.n_in() != b.n_in() || a.n_out() != b.n_out() || a.param_lens() != b.param_lens() {
            return incompatible(format!(
                "layer {i}: checkpoint {}×{} ({:?} params) vs network {}×{} ({:?} params)",
                a.n_in(),
                a.n_out(),
                a.param_lens(),
                b.n_in(),
                b.n_out(),
                b.param_lens()
            ));
        }
    }
    let (epoch, batch) = (c.progress.epoch as usize, c.progress.batch as usize);
    if epoch > config.epochs || (epoch == config.epochs && batch > 0) || batch > n_batches {
        return incompatible(format!(
            "cursor (epoch {epoch}, batch {batch}) outside {} epochs × {n_batches} batches",
            config.epochs
        ));
    }
    Ok(())
}

/// The shared training driver. With a [`Checkpointer`] it resumes from
/// the newest valid generation (bitwise identically — see the module
/// docs), runs the fault-injection hook before every batch, and saves
/// periodically (`every` batches, counted globally) plus at every epoch
/// boundary. Without one it is exactly the historical in-memory loop.
fn run_train_loop(
    net: &mut Network,
    x: &DenseMatrix<f32>,
    problem: &Problem<'_>,
    opt: &mut Optimizer,
    config: &TrainConfig,
    mut ckpt: Option<&mut Checkpointer>,
) -> Result<History, CheckpointError> {
    assert!(config.batch_size > 0, "batch size must be positive");
    let n = x.nrows();
    let n_batches = if n == 0 {
        0
    } else {
        n.div_ceil(config.batch_size)
    };

    let mut history = History::default();
    let mut start_epoch = 0usize;
    let mut start_batch = 0usize;
    let mut resumed_epoch_loss = 0.0f32;
    if let Some(ck) = ckpt.as_mut() {
        if let Some((_gen, c)) = ck.load_latest()? {
            check_resume_compat(net, config, &c, n_batches)?;
            start_epoch = c.progress.epoch as usize;
            start_batch = c.progress.batch as usize;
            resumed_epoch_loss = c.progress.epoch_loss;
            history = c.progress.history.clone();
            *net = c.net;
            *opt = c.opt;
        }
    }

    // Re-seed and replay: one shuffle per completed epoch, plus the
    // resumed epoch's own shuffle if the cursor is mid-epoch. The
    // permutation is mutated in place across epochs, so replaying from
    // the identity reproduces both the RNG state and the ordering.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..start_epoch + usize::from(start_batch > 0) {
        order.shuffle(&mut rng);
    }

    // Persistent buffers: mini-batch gather, forward/backward workspace,
    // and the full-set evaluation workspace are pre-sized to their
    // high-water mark and reused across every batch and epoch — including
    // the loss gradient, which Loss::eval_*_into writes into the workspace
    // delta buffer, so training batches perform no heap allocation at all
    // (pinned down by `tests/zero_alloc.rs`). Checkpoint saves allocate,
    // but only on the save path.
    let mut xb = DenseMatrix::zeros(0, 0);
    let mut yb_labels: Vec<usize> = Vec::new();
    let mut yb_values = DenseMatrix::zeros(0, 0);
    let batch_rows = config.batch_size.min(n.max(1));
    let mut ws = GradWorkspace::for_network(net, batch_rows);
    // Data-parallel runs additionally hold per-worker chunk workspaces,
    // reused across every batch and epoch (the pool-native path).
    let mut pool = (config.parallel_chunks > 1)
        .then(|| GradWorkspacePool::for_network(net, batch_rows, config.parallel_chunks));
    let mut eval_ws =
        matches!(problem, Problem::Classify(_)).then(|| ForwardWorkspace::for_network(net, n));

    let mut global_batch = (start_epoch * n_batches + start_batch) as u64;
    for epoch in start_epoch..config.epochs {
        let first = epoch == start_epoch;
        if !(first && start_batch > 0) {
            order.shuffle(&mut rng);
        }
        let mut epoch_loss = if first { resumed_epoch_loss } else { 0.0 };
        let mut batches = if first { start_batch as u32 } else { 0 };
        for (bi, chunk) in order.chunks(config.batch_size).enumerate() {
            if first && bi < start_batch {
                continue;
            }
            if let Some(ck) = ckpt.as_mut() {
                ck.faults().before_batch();
            }
            gather_rows_into(x, chunk, &mut xb);
            let targets = match problem {
                Problem::Classify(labels) => {
                    yb_labels.clear();
                    yb_labels.extend(chunk.iter().map(|&i| labels[i]));
                    Targets::Labels(&yb_labels)
                }
                Problem::Regress(y) => {
                    gather_rows_into(y, chunk, &mut yb_values);
                    Targets::values(&yb_values)
                }
            };
            epoch_loss += train_step(net, &xb, targets, opt, config, &mut ws, pool.as_mut());
            batches += 1;
            global_batch += 1;
            if let Some(ck) = ckpt.as_mut() {
                // Mid-epoch snapshot; the last batch is covered by the
                // epoch-boundary save just below.
                if ck.every() > 0
                    && global_batch.is_multiple_of(ck.every() as u64)
                    && bi + 1 < n_batches
                {
                    let progress = TrainProgress {
                        epoch: epoch as u64,
                        batch: (bi + 1) as u64,
                        seed: config.seed,
                        epoch_loss,
                        history: history.clone(),
                    };
                    ck.save(net, opt, &progress)?;
                }
            }
        }
        history.losses.push(epoch_loss / batches.max(1) as f32);
        if let (Problem::Classify(labels), Some(eval_ws)) = (problem, eval_ws.as_mut()) {
            let logits = net.forward_with(x, eval_ws);
            history.accuracies.push(accuracy(logits, labels));
        }
        if config.lr_decay != 1.0 {
            opt.scale_lr(config.lr_decay);
        }
        if let Some(ck) = ckpt.as_mut() {
            let progress = TrainProgress {
                epoch: (epoch + 1) as u64,
                batch: 0,
                seed: config.seed,
                epoch_loss: 0.0,
                history: history.clone(),
            };
            ck.save(net, opt, &progress)?;
        }
    }
    Ok(history)
}

/// Trains a classifier with softmax cross-entropy.
///
/// # Panics
/// Panics if `x.nrows() != labels.len()` or the batch size is zero.
pub fn train_classifier(
    net: &mut Network,
    x: &DenseMatrix<f32>,
    labels: &[usize],
    opt: &mut Optimizer,
    config: &TrainConfig,
) -> History {
    assert_eq!(x.nrows(), labels.len(), "sample/label count mismatch");
    run_train_loop(net, x, &Problem::Classify(labels), opt, config, None)
        .expect("training without checkpointing performs no I/O")
}

/// Trains a regressor with MSE.
///
/// # Panics
/// Panics if sample counts mismatch or the batch size is zero.
pub fn train_regressor(
    net: &mut Network,
    x: &DenseMatrix<f32>,
    y: &DenseMatrix<f32>,
    opt: &mut Optimizer,
    config: &TrainConfig,
) -> History {
    assert_eq!(x.nrows(), y.nrows(), "sample/target count mismatch");
    run_train_loop(net, x, &Problem::Regress(y), opt, config, None)
        .expect("training without checkpointing performs no I/O")
}

/// [`train_classifier`] with crash-safe checkpointing: resumes from the
/// newest valid generation in the checkpointer's directory (bitwise
/// identically to an uninterrupted run — see the module docs), then
/// saves every `every` batches and at each epoch boundary.
///
/// # Errors
/// [`CheckpointError::Incompatible`] when the newest checkpoint belongs
/// to a different run (architecture, loss, seed, or cursor mismatch);
/// [`CheckpointError::Io`] when a save fails.
///
/// # Panics
/// Panics if `x.nrows() != labels.len()`, if the batch size is zero, or
/// when the fault injector fires (simulated crash — the supervisor's
/// domain).
pub fn train_classifier_checkpointed(
    net: &mut Network,
    x: &DenseMatrix<f32>,
    labels: &[usize],
    opt: &mut Optimizer,
    config: &TrainConfig,
    ckpt: &mut Checkpointer,
) -> Result<History, CheckpointError> {
    assert_eq!(x.nrows(), labels.len(), "sample/label count mismatch");
    run_train_loop(net, x, &Problem::Classify(labels), opt, config, Some(ckpt))
}

/// [`train_regressor`] with crash-safe checkpointing; same resume and
/// save contract as [`train_classifier_checkpointed`].
///
/// # Errors
/// Same taxonomy as [`train_classifier_checkpointed`].
///
/// # Panics
/// Panics if sample counts mismatch, if the batch size is zero, or when
/// the fault injector fires.
pub fn train_regressor_checkpointed(
    net: &mut Network,
    x: &DenseMatrix<f32>,
    y: &DenseMatrix<f32>,
    opt: &mut Optimizer,
    config: &TrainConfig,
    ckpt: &mut Checkpointer,
) -> Result<History, CheckpointError> {
    assert_eq!(x.nrows(), y.nrows(), "sample/target count mismatch");
    run_train_loop(net, x, &Problem::Regress(y), opt, config, Some(ckpt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::Init;
    use crate::loss::Loss;
    use radix_net::{MixedRadixSystem, RadixNetSpec};

    /// A linearly-separable 2-class problem in 8 dimensions.
    fn toy_problem(n: usize) -> (DenseMatrix<f32>, Vec<usize>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(99);
        let mut x = DenseMatrix::zeros(n, 8);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center: f32 = if class == 0 { 1.0 } else { -1.0 };
            let row: &mut [f32] = x.row_mut(i);
            for v in row.iter_mut() {
                *v = center + rng.gen_range(-0.4..0.4);
            }
            labels.push(class);
        }
        (x, labels)
    }

    fn radix_classifier(seed: u64) -> Network {
        // RadiX-Net: (2,2,2) widths (1,2,2,1): 8→16→16→8 sparse net; we use
        // outputs 0..2 by training an 8-class head on 2 classes — instead,
        // build widths ending in a narrow head via a dense readout:
        // simplest is to use the 8-wide output and labels in {0,1}.
        let spec = RadixNetSpec::new(
            vec![MixedRadixSystem::new([2, 2, 2]).unwrap()],
            vec![1, 2, 2, 1],
        )
        .unwrap();
        Network::from_fnnt(
            &spec.build().into_fnnt(),
            Activation::Tanh,
            Init::Xavier,
            Loss::SoftmaxCrossEntropy,
            seed,
        )
    }

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("radix-train-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn classifier_learns_separable_data() {
        let (x, labels) = toy_problem(128);
        let mut net = radix_classifier(1);
        let mut opt = Optimizer::adam(0.01);
        let config = TrainConfig {
            epochs: 30,
            batch_size: 16,
            seed: 7,
            parallel_chunks: 1,
            ..TrainConfig::default()
        };
        let history = train_classifier(&mut net, &x, &labels, &mut opt, &config);
        assert!(
            history.final_accuracy() > 0.95,
            "accuracy {} too low; losses {:?}",
            history.final_accuracy(),
            history.losses
        );
        assert!(history.final_loss() < history.losses[0]);
    }

    #[test]
    fn parallel_training_also_learns() {
        let (x, labels) = toy_problem(128);
        let mut net = radix_classifier(2);
        let mut opt = Optimizer::adam(0.01);
        let config = TrainConfig {
            epochs: 30,
            batch_size: 32,
            seed: 8,
            parallel_chunks: 4,
            ..TrainConfig::default()
        };
        let history = train_classifier(&mut net, &x, &labels, &mut opt, &config);
        assert!(history.final_accuracy() > 0.95);
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let (x, labels) = toy_problem(64);
        let config = TrainConfig {
            epochs: 5,
            batch_size: 16,
            seed: 3,
            parallel_chunks: 1,
            ..TrainConfig::default()
        };
        let mut a = radix_classifier(4);
        let mut b = radix_classifier(4);
        let ha = train_classifier(&mut a, &x, &labels, &mut Optimizer::sgd(0.1), &config);
        let hb = train_classifier(&mut b, &x, &labels, &mut Optimizer::sgd(0.1), &config);
        assert_eq!(ha.losses, hb.losses);
        assert_eq!(a, b);
    }

    #[test]
    fn checkpointed_training_matches_plain_and_resumes_as_complete() {
        let (x, labels) = toy_problem(64);
        let config = TrainConfig {
            epochs: 4,
            batch_size: 16,
            seed: 11,
            ..TrainConfig::default()
        };

        let mut plain = radix_classifier(6);
        let h_plain =
            train_classifier(&mut plain, &x, &labels, &mut Optimizer::adam(0.01), &config);

        let dir = scratch_dir("matches-plain");
        let mut ck = Checkpointer::new(&dir).unwrap().with_every(3).with_keep(2);
        let mut ckpted = radix_classifier(6);
        let h_ck = train_classifier_checkpointed(
            &mut ckpted,
            &x,
            &labels,
            &mut Optimizer::adam(0.01),
            &config,
            &mut ck,
        )
        .unwrap();
        // Saving is a pure read of training state: the checkpointed run
        // is bitwise identical to the plain one.
        assert_eq!(h_plain, h_ck);
        assert_eq!(plain, ckpted);

        // A fresh loop over the finished directory resumes at the final
        // cursor and returns immediately with the full history and model.
        let mut ck2 = Checkpointer::new(&dir).unwrap().with_every(3);
        let mut resumed = radix_classifier(6);
        let mut opt = Optimizer::adam(0.01);
        let h_res =
            train_classifier_checkpointed(&mut resumed, &x, &labels, &mut opt, &config, &mut ck2)
                .unwrap();
        assert_eq!(h_res, h_plain);
        assert_eq!(resumed, plain);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_mismatched_seed() {
        let (x, labels) = toy_problem(32);
        let config = TrainConfig {
            epochs: 2,
            batch_size: 16,
            seed: 21,
            ..TrainConfig::default()
        };
        let dir = scratch_dir("seed-mismatch");
        let mut ck = Checkpointer::new(&dir).unwrap();
        let mut net = radix_classifier(6);
        train_classifier_checkpointed(
            &mut net,
            &x,
            &labels,
            &mut Optimizer::sgd(0.1),
            &config,
            &mut ck,
        )
        .unwrap();

        let other = TrainConfig {
            seed: 22,
            ..config.clone()
        };
        let mut ck2 = Checkpointer::new(&dir).unwrap();
        let mut net2 = radix_classifier(6);
        let err = train_classifier_checkpointed(
            &mut net2,
            &x,
            &labels,
            &mut Optimizer::sgd(0.1),
            &other,
            &mut ck2,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Incompatible { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn regressor_fits_linear_map() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(12);
        let n = 128;
        let mut x = DenseMatrix::zeros(n, 4);
        let mut y = DenseMatrix::zeros(n, 2);
        for i in 0..n {
            let xr: &mut [f32] = x.row_mut(i);
            for v in xr.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
            let (a, b, c, d) = (x.get(i, 0), x.get(i, 1), x.get(i, 2), x.get(i, 3));
            y.set(i, 0, 0.5 * a - b);
            y.set(i, 1, c + 0.25 * d);
        }
        let mut net = Network::dense(&[4, 8, 2], Activation::Tanh, Init::Xavier, Loss::Mse, 5);
        let mut opt = Optimizer::adam(0.02);
        let config = TrainConfig {
            epochs: 60,
            batch_size: 32,
            seed: 1,
            parallel_chunks: 1,
            ..TrainConfig::default()
        };
        let history = train_regressor(&mut net, &x, &y, &mut opt, &config);
        assert!(
            history.final_loss() < 0.01,
            "final loss {} too high",
            history.final_loss()
        );
    }

    #[test]
    fn history_accessors_on_empty() {
        let h = History::default();
        assert!(h.final_loss().is_nan());
        assert!(h.final_accuracy().is_nan());
    }
}
