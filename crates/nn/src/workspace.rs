//! Reusable forward/backward buffers: size once per network, reuse across
//! batches and epochs.
//!
//! Every buffer here is resized with
//! [`DenseMatrix::resize_zeroed`], which reuses the
//! existing allocation whenever capacity suffices — so after the first
//! batch (the high-water mark) a training epoch or inference loop performs
//! no per-layer heap allocation. This is the network-level half of the
//! prepared-kernel engine in `radix_sparse::kernel`; the layer-level half
//! (ELL layouts, fused epilogues) lives there.

use radix_sparse::kernel::PingPong;
use radix_sparse::DenseMatrix;

use crate::layer::LayerGrads;
use crate::network::Network;

/// Ping-pong activation buffers for allocation-free forward passes.
///
/// [`Network::forward_with`] alternates the two buffers layer by layer:
/// layer `l` reads from one and writes into the other, so a network of any
/// depth needs exactly two buffers, each as large as the widest layer ×
/// batch. The alternation itself is `radix_sparse::kernel`'s [`PingPong`]
/// driver, shared with the Challenge inference workspace.
#[derive(Debug, Clone, Default)]
pub struct ForwardWorkspace {
    pub(crate) buffers: PingPong<f32>,
}

impl ForwardWorkspace {
    /// An empty workspace; buffers grow to their high-water mark on first
    /// use.
    #[must_use]
    pub fn new() -> Self {
        ForwardWorkspace {
            buffers: PingPong::new(),
        }
    }

    /// A workspace pre-sized for `net` at the given batch size, so even the
    /// first forward pass allocates nothing.
    #[must_use]
    pub fn for_network(net: &Network, batch: usize) -> Self {
        let widest = net
            .layers()
            .iter()
            .map(crate::layer::Layer::n_out)
            .max()
            .unwrap_or(0);
        ForwardWorkspace {
            buffers: PingPong::with_capacity(batch, widest),
        }
    }

    /// The output of the most recent [`Network::forward_with`] call.
    #[must_use]
    pub fn output(&self) -> &DenseMatrix<f32> {
        self.buffers.output()
    }

    /// Takes the most recent output out of the workspace (leaving an empty
    /// buffer that will regrow on next use).
    #[must_use]
    pub fn take_output(&mut self) -> DenseMatrix<f32> {
        self.buffers.take_output()
    }
}

/// Buffers for a full forward + backward pass, reused across mini-batches:
/// the per-layer activation trace, the backpropagated gradient ping-pong
/// pair, and the per-layer parameter gradients. With the loss gradient
/// written directly into `delta` by `Loss::eval_*_into` and the input
/// gradients running the tiled transposed kernels, a steady-state
/// training batch performs **no** heap allocation
/// (`crates/nn/tests/zero_alloc.rs` proves it with a counting global
/// allocator).
///
/// # Example: an allocation-free train step
///
/// ```
/// use radix_net::{MixedRadixSystem, MixedRadixTopology};
/// use radix_nn::{Activation, GradWorkspace, Init, Loss, Network, Targets};
/// use radix_sparse::DenseMatrix;
///
/// let fnnt = MixedRadixTopology::new(MixedRadixSystem::new([2, 2])?).into_fnnt();
/// let net = Network::from_fnnt(&fnnt, Activation::Tanh, Init::Xavier,
///                              Loss::SoftmaxCrossEntropy, 0);
/// let x = DenseMatrix::ones(8, net.n_in());
/// let labels = vec![0usize; 8];
/// // Pre-sized: even the first batch allocates nothing.
/// let mut ws = GradWorkspace::for_network(&net, 8);
/// // Forward trace + loss gradient (written straight into the workspace
/// // delta buffer) + tiled transposed backward, all through reused buffers.
/// let loss = net.grad_batch_with(&x, Targets::Labels(&labels), &mut ws);
/// assert!(loss.is_finite());
/// assert_eq!(ws.grads().len(), net.layers().len());
/// # Ok::<(), radix_net::RadixError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GradWorkspace {
    /// `trace[i]` holds the (post-activation) output of layer `i`.
    pub(crate) trace: Vec<DenseMatrix<f32>>,
    /// Upstream gradient flowing into the current layer. Seeded in place
    /// by the loss epilogue (`Loss::eval_*_into`), then becomes the
    /// activation-scaled delta during each layer's backward.
    pub(crate) delta: DenseMatrix<f32>,
    /// Gradient w.r.t. the current layer's input, swapped with `delta`
    /// after each layer.
    pub(crate) grad_in: DenseMatrix<f32>,
    /// Per-layer parameter gradients, laid out like the layers' parameters.
    pub(crate) grads: Vec<LayerGrads>,
    /// Optimizer update scratch (weights), reused across
    /// `Network::apply_gradients_with` steps.
    pub(crate) w_update: Vec<f32>,
    /// Optimizer update scratch (biases).
    pub(crate) b_update: Vec<f32>,
    /// Per-parameter-segment squared-norm cells for the fused
    /// decay-and-norm reduction (`Network::par_grad_batch_fused_with`):
    /// each reduction task writes its segment's Σv² here, and a fixed-order
    /// tree over the cells yields a schedule-independent global norm.
    pub(crate) seg_sumsq: Vec<f32>,
}

impl GradWorkspace {
    /// An empty workspace; buffers grow to their high-water mark on first
    /// use.
    #[must_use]
    pub fn new() -> Self {
        GradWorkspace::default()
    }

    /// A workspace pre-sized for `net` at the given batch size, so even
    /// the **first** training batch allocates nothing: the activation
    /// trace, the delta/grad-in ping-pong pair (sized to the widest layer
    /// boundary, input included), and every per-layer gradient buffer are
    /// all at their high-water mark up front. The training loops use this
    /// with their configured batch size.
    #[must_use]
    pub fn for_network(net: &Network, batch: usize) -> Self {
        let mut ws = GradWorkspace::default();
        ws.ensure(net);
        let widest = net
            .layers()
            .iter()
            .map(crate::layer::Layer::n_out)
            .max()
            .unwrap_or(0)
            .max(net.n_in());
        for (t, layer) in ws.trace.iter_mut().zip(net.layers()) {
            t.resize_zeroed(batch, layer.n_out());
        }
        let mut w_max = 0usize;
        let mut b_max = 0usize;
        for (g, layer) in ws.grads.iter_mut().zip(net.layers()) {
            let (w_len, b_len) = layer.param_lens();
            g.resize_zeroed(w_len, b_len);
            w_max = w_max.max(w_len);
            b_max = b_max.max(b_len);
        }
        ws.delta.resize_zeroed(batch, widest);
        ws.grad_in.resize_zeroed(batch, widest);
        ws.w_update.reserve_exact(w_max);
        ws.b_update.reserve_exact(b_max);
        let segs: usize = net
            .layers()
            .iter()
            .map(|l| {
                let (w_len, b_len) = l.param_lens();
                w_len.div_ceil(crate::network::REDUCE_PARAM_CHUNK)
                    + b_len.div_ceil(crate::network::REDUCE_PARAM_CHUNK)
            })
            .sum();
        ws.seg_sumsq.reserve_exact(segs);
        ws
    }

    /// Ensures the per-layer vectors match `net`'s layer count.
    pub(crate) fn ensure(&mut self, net: &Network) {
        let n = net.layers().len();
        self.trace.resize_with(n, || DenseMatrix::zeros(0, 0));
        self.grads.resize_with(n, || LayerGrads::zeros(0, 0));
    }

    /// The parameter gradients of the most recent backward pass.
    #[must_use]
    pub fn grads(&self) -> &[LayerGrads] {
        &self.grads
    }

    /// Mutable access to the parameter gradients (for weight decay and
    /// gradient clipping between backward and the optimizer step).
    pub fn grads_mut(&mut self) -> &mut [LayerGrads] {
        &mut self.grads
    }

    /// Replaces the stored gradients (used when a data-parallel path
    /// computed them out-of-workspace).
    pub fn set_grads(&mut self, grads: Vec<LayerGrads>) {
        self.grads = grads;
    }
}

/// One data-parallel chunk's results: the per-layer gradients of that row
/// range, the chunk's mean loss, and its row count (the combine weight's
/// numerator). Stored **per chunk** — not per worker — so the reduction
/// can run in fixed chunk order no matter which worker computed what.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChunkGrads {
    /// Per-layer parameter gradients of this chunk.
    pub(crate) grads: Vec<LayerGrads>,
    /// Mean loss over the chunk's rows.
    pub(crate) loss: f32,
    /// Rows in the chunk (`weight = rows / batch`).
    pub(crate) rows: usize,
}

/// Per-worker workspaces for pool-native data-parallel training
/// ([`Network::par_grad_batch_with`]), reused across batches and epochs.
///
/// Two kinds of state live here, sized once and reused forever:
///
/// * **per pool slot** — one [`GradWorkspace`] per participating thread
///   (`rayon::current_num_threads()` of them), holding the activation
///   trace and delta ping-pong buffers a worker needs while it evaluates
///   whichever chunks it claims;
/// * **per chunk** — one gradient buffer set per data-parallel chunk, so
///   each chunk's result survives until the fixed-order weighted tree
///   reduction combines them (per-*worker* accumulators would make the
///   sum order depend on the dynamic schedule and thread count; per-chunk
///   storage is what makes the path bitwise-reproducible for a given
///   chunk count, regardless of threads).
///
/// With both pools at their high-water mark, a multi-chunk gradient batch
/// performs **zero** heap allocations (`crates/nn/tests/zero_alloc.rs`).
#[derive(Debug, Clone, Default)]
pub struct GradWorkspacePool {
    /// One scratch workspace per pool slot (their `grads` fields stay
    /// empty — chunk gradients go to `chunks` instead).
    pub(crate) scratch: Vec<GradWorkspace>,
    /// One gradient slot per data-parallel chunk.
    pub(crate) chunks: Vec<ChunkGrads>,
}

impl GradWorkspacePool {
    /// An empty pool; buffers grow to their high-water mark on first use.
    #[must_use]
    pub fn new() -> Self {
        GradWorkspacePool::default()
    }

    /// A pool pre-sized for `net` so even the **first** multi-chunk
    /// gradient batch allocates nothing: one scratch workspace per pool
    /// slot (each sized for the largest chunk a `batch`-row mini-batch
    /// splits into) and one gradient buffer set per chunk.
    #[must_use]
    pub fn for_network(net: &Network, batch: usize, num_chunks: usize) -> Self {
        Self::with_slots(net, batch, num_chunks, rayon::current_num_threads())
    }

    /// [`GradWorkspacePool::for_network`] with an explicit worker-slot
    /// count. At most `slots` threads participate in the chunk dispatch
    /// (one forces serial execution) — results are **bitwise identical**
    /// for any slot count, which the determinism property suite pins by
    /// comparing slot counts 1, 2, and 4.
    #[must_use]
    pub fn with_slots(net: &Network, batch: usize, num_chunks: usize, slots: usize) -> Self {
        let chunks = num_chunks.clamp(1, batch.max(1));
        let chunk_rows = batch.div_ceil(chunks).max(1);
        let mut pool = GradWorkspacePool::default();
        pool.scratch
            .resize_with(slots.max(1), || GradWorkspace::for_network(net, chunk_rows));
        pool.ensure_chunks(net, chunks);
        pool
    }

    /// Ensures at least `n` chunk gradient slots exist, each laid out for
    /// `net`'s parameters (reusing allocations; only a first call at a
    /// larger chunk count allocates). The pool never shrinks: a ragged
    /// final mini-batch can momentarily need fewer chunks, and freeing
    /// the spares would make the next full batch reallocate them — heap
    /// churn every epoch instead of the documented zero-alloc steady
    /// state. Already-sized gradient buffers are left untouched (the
    /// backward pass zeroes them itself before accumulating).
    pub(crate) fn ensure_chunks(&mut self, net: &Network, n: usize) {
        if self.chunks.len() < n {
            self.chunks.resize_with(n, ChunkGrads::default);
        }
        let layers = net.layers();
        for chunk in &mut self.chunks[..n] {
            chunk
                .grads
                .resize_with(layers.len(), || LayerGrads::zeros(0, 0));
            for (g, layer) in chunk.grads.iter_mut().zip(layers) {
                let (w_len, b_len) = layer.param_lens();
                if g.w.len() != w_len || g.b.len() != b_len {
                    g.resize_zeroed(w_len, b_len);
                }
            }
        }
    }

    /// Number of worker slots (the dispatch's maximum parallelism).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.scratch.len()
    }
}
