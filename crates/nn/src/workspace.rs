//! Reusable forward/backward buffers: size once per network, reuse across
//! batches and epochs.
//!
//! Every buffer here is resized with
//! [`DenseMatrix::resize_zeroed`], which reuses the
//! existing allocation whenever capacity suffices — so after the first
//! batch (the high-water mark) a training epoch or inference loop performs
//! no per-layer heap allocation. This is the network-level half of the
//! prepared-kernel engine in `radix_sparse::kernel`; the layer-level half
//! (ELL layouts, fused epilogues) lives there.

use radix_sparse::kernel::PingPong;
use radix_sparse::DenseMatrix;

use crate::layer::LayerGrads;
use crate::network::Network;

/// Ping-pong activation buffers for allocation-free forward passes.
///
/// [`Network::forward_with`] alternates the two buffers layer by layer:
/// layer `l` reads from one and writes into the other, so a network of any
/// depth needs exactly two buffers, each as large as the widest layer ×
/// batch. The alternation itself is `radix_sparse::kernel`'s [`PingPong`]
/// driver, shared with the Challenge inference workspace.
#[derive(Debug, Clone, Default)]
pub struct ForwardWorkspace {
    pub(crate) buffers: PingPong<f32>,
}

impl ForwardWorkspace {
    /// An empty workspace; buffers grow to their high-water mark on first
    /// use.
    #[must_use]
    pub fn new() -> Self {
        ForwardWorkspace {
            buffers: PingPong::new(),
        }
    }

    /// A workspace pre-sized for `net` at the given batch size, so even the
    /// first forward pass allocates nothing.
    #[must_use]
    pub fn for_network(net: &Network, batch: usize) -> Self {
        let widest = net
            .layers()
            .iter()
            .map(crate::layer::Layer::n_out)
            .max()
            .unwrap_or(0);
        ForwardWorkspace {
            buffers: PingPong::with_capacity(batch, widest),
        }
    }

    /// The output of the most recent [`Network::forward_with`] call.
    #[must_use]
    pub fn output(&self) -> &DenseMatrix<f32> {
        self.buffers.output()
    }

    /// Takes the most recent output out of the workspace (leaving an empty
    /// buffer that will regrow on next use).
    #[must_use]
    pub fn take_output(&mut self) -> DenseMatrix<f32> {
        self.buffers.take_output()
    }
}

/// Buffers for a full forward + backward pass, reused across mini-batches:
/// the per-layer activation trace, the backpropagated gradient ping-pong
/// pair, and the per-layer parameter gradients. With the loss gradient
/// written directly into `delta` by `Loss::eval_*_into`, a steady-state
/// training batch performs **no** heap allocation.
#[derive(Debug, Clone, Default)]
pub struct GradWorkspace {
    /// `trace[i]` holds the (post-activation) output of layer `i`.
    pub(crate) trace: Vec<DenseMatrix<f32>>,
    /// Upstream gradient flowing into the current layer. Seeded in place
    /// by the loss epilogue (`Loss::eval_*_into`), then becomes the
    /// activation-scaled delta during each layer's backward.
    pub(crate) delta: DenseMatrix<f32>,
    /// Gradient w.r.t. the current layer's input, swapped with `delta`
    /// after each layer.
    pub(crate) grad_in: DenseMatrix<f32>,
    /// Per-layer parameter gradients, laid out like the layers' parameters.
    pub(crate) grads: Vec<LayerGrads>,
}

impl GradWorkspace {
    /// An empty workspace; buffers grow to their high-water mark on first
    /// use.
    #[must_use]
    pub fn new() -> Self {
        GradWorkspace::default()
    }

    /// Ensures the per-layer vectors match `net`'s layer count.
    pub(crate) fn ensure(&mut self, net: &Network) {
        let n = net.layers().len();
        self.trace.resize_with(n, || DenseMatrix::zeros(0, 0));
        self.grads.resize_with(n, || LayerGrads::zeros(0, 0));
    }

    /// The parameter gradients of the most recent backward pass.
    #[must_use]
    pub fn grads(&self) -> &[LayerGrads] {
        &self.grads
    }

    /// Mutable access to the parameter gradients (for weight decay and
    /// gradient clipping between backward and the optimizer step).
    pub fn grads_mut(&mut self) -> &mut [LayerGrads] {
        &mut self.grads
    }

    /// Replaces the stored gradients (used when a data-parallel path
    /// computed them out-of-workspace).
    pub fn set_grads(&mut self, grads: Vec<LayerGrads>) {
        self.grads = grads;
    }
}
