//! Checkpoint subsystem integration suite.
//!
//! Pins the three acceptance-critical properties:
//!
//! 1. **Kill-at-batch-N-and-resume is bitwise identical** to an
//!    uninterrupted run (proptest over kill points, cadences, optimizers,
//!    and seeds) — the PR 5 fixed-order reduction plus shuffle-replay
//!    resume make this provable, not approximate.
//! 2. **Round-trip exactness**: encode→decode reproduces the network,
//!    optimizer, and progress bit-for-bit (proptest over architectures
//!    and training states).
//! 3. **Hostile bytes never panic**: every truncation and byte flip of a
//!    valid checkpoint resolves to a typed `CheckpointError` (fuzz), and
//!    recovery falls back to the last good generation — including past
//!    stale `.tmp` files from torn writes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use proptest::prelude::*;

use radix_net::{MixedRadixSystem, RadixNetSpec};
use radix_nn::checkpoint::{decode, encode, load, save};
use radix_nn::{
    train_classifier, train_classifier_checkpointed, Activation, CheckpointError, Checkpointer,
    Init, Loss, Network, Optimizer, TrainConfig, TrainFaultInjector, TrainFaultPlan, TrainProgress,
    INJECTED_TRAIN_PANIC_MSG,
};
use radix_sparse::DenseMatrix;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("radix-ckpt-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic 2-class toy data (no RNG: reproducible across runs).
fn toy_problem(n: usize) -> (DenseMatrix<f32>, Vec<usize>) {
    let mut x = DenseMatrix::zeros(n, 8);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let center: f32 = if class == 0 { 1.0 } else { -1.0 };
        for j in 0..8 {
            let jitter = (((i * 31 + j * 17) % 41) as f32 / 41.0 - 0.5) * 0.8;
            x.set(i, j, center + jitter);
        }
        labels.push(class);
    }
    (x, labels)
}

fn radix_classifier(seed: u64) -> Network {
    let spec = RadixNetSpec::new(
        vec![MixedRadixSystem::new([2, 2, 2]).unwrap()],
        vec![1, 2, 2, 1],
    )
    .unwrap();
    Network::from_fnnt(
        &spec.build().into_fnnt(),
        Activation::Tanh,
        Init::Xavier,
        Loss::SoftmaxCrossEntropy,
        seed,
    )
}

fn make_optimizer(kind: u8) -> Optimizer {
    match kind % 3 {
        0 => Optimizer::sgd(0.05),
        1 => Optimizer::momentum(0.05, 0.9),
        _ => Optimizer::adam(0.01),
    }
}

/// A mid-training state with populated optimizer tables and history —
/// the representative encode/decode subject.
fn trained_state(opt_kind: u8, seed: u64) -> (Network, Optimizer, TrainProgress) {
    let (x, labels) = toy_problem(48);
    let mut net = radix_classifier(seed);
    let mut opt = make_optimizer(opt_kind);
    let config = TrainConfig {
        epochs: 2,
        batch_size: 16,
        seed,
        ..TrainConfig::default()
    };
    let history = train_classifier(&mut net, &x, &labels, &mut opt, &config);
    let progress = TrainProgress {
        epoch: 2,
        batch: 0,
        seed,
        epoch_loss: 0.0,
        history,
    };
    (net, opt, progress)
}

#[test]
fn save_then_load_roundtrips_exactly() {
    let (net, opt, progress) = trained_state(2, 7);
    let dir = scratch_dir("roundtrip-file");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.radix");
    save(&path, &net, &opt, &progress).unwrap();
    let ck = load(&path).unwrap();
    assert_eq!(ck.net, net);
    assert_eq!(ck.progress, progress);
    // Optimizer equality via canonical re-encode (HashMap lacks Eq here).
    assert_eq!(
        encode(&ck.net, &ck.opt, &ck.progress),
        encode(&net, &opt, &progress)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_tmp_file_is_invisible_to_recovery() {
    let (net, opt, progress) = trained_state(0, 9);
    let dir = scratch_dir("stale-tmp");
    let mut ck = Checkpointer::new(&dir).unwrap();
    let mut opt2 = opt.clone();
    let g = ck.save(&net, &mut opt2, &progress).unwrap();
    // A torn write's leftover: a half-written temp for the *next*
    // generation that never got renamed.
    let bytes = encode(&net, &opt, &progress);
    std::fs::write(
        dir.join(format!("ckpt-{:08}.tmp", g + 1)),
        &bytes[..bytes.len() / 2],
    )
    .unwrap();
    let (loaded_gen, loaded) = ck.load_latest().unwrap().expect("good generation exists");
    assert_eq!(loaded_gen, g);
    assert_eq!(loaded.net, net);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_generation_falls_back_to_previous() {
    let (net, opt, progress) = trained_state(1, 10);
    let dir = scratch_dir("fallback");
    let mut ck = Checkpointer::new(&dir).unwrap().with_keep(2);
    let mut opt2 = opt.clone();
    let g1 = ck.save(&net, &mut opt2, &progress).unwrap();
    let mut progress2 = progress.clone();
    progress2.epoch += 1;
    let g2 = ck.save(&net, &mut opt2, &progress2).unwrap();
    assert_eq!(g2, g1 + 1);
    // Flip one bit in the newest generation on disk.
    let path = ck.generation_path(g2);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    // Direct load reports the checksum failure...
    assert!(matches!(
        load(&path),
        Err(CheckpointError::ChecksumMismatch { .. }) | Err(CheckpointError::Malformed { .. })
    ));
    // ...and recovery silently falls back to the previous generation.
    let (loaded_gen, loaded) = ck
        .load_latest()
        .unwrap()
        .expect("previous generation valid");
    assert_eq!(loaded_gen, g1);
    assert_eq!(loaded.progress, progress);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_fault_leaves_last_good_generation_standing() {
    let (net, opt, progress) = trained_state(2, 11);
    let dir = scratch_dir("torn");
    let plan = TrainFaultPlan {
        torn_write_gen: Some(2),
        ..TrainFaultPlan::default()
    };
    let mut ck = Checkpointer::new(&dir)
        .unwrap()
        .with_faults(TrainFaultInjector::new(plan));
    let mut opt2 = opt.clone();
    let g1 = ck.save(&net, &mut opt2, &progress).unwrap();
    // Generation 2's write is torn: the save panics mid-write (simulated
    // crash before the atomic rename).
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut p2 = progress.clone();
        p2.epoch += 1;
        ck.save(&net, &mut opt2, &p2)
    }));
    let payload = result.expect_err("torn write must panic (simulated crash)");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains(INJECTED_TRAIN_PANIC_MSG), "{msg}");
    // Recovery: the torn temp never became a generation; g1 still loads.
    let ck2 = Checkpointer::new(&dir).unwrap();
    let (loaded_gen, loaded) = ck2.load_latest().unwrap().expect("last good generation");
    assert_eq!(loaded_gen, g1);
    assert_eq!(loaded.progress, progress);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retention_prunes_old_generations() {
    let (net, opt, progress) = trained_state(0, 12);
    let dir = scratch_dir("prune");
    let mut ck = Checkpointer::new(&dir).unwrap().with_keep(2);
    let mut opt2 = opt.clone();
    for i in 0..5 {
        let mut p = progress.clone();
        p.epoch = i;
        ck.save(&net, &mut opt2, &p).unwrap();
    }
    assert_eq!(ck.generations().unwrap(), vec![4, 5]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn decoder_rejects_bad_magic_and_version() {
    let (net, opt, progress) = trained_state(0, 13);
    let mut bytes = encode(&net, &opt, &progress);
    assert!(matches!(
        decode(b"not a checkpoint"),
        Err(CheckpointError::BadMagic)
    ));
    assert!(matches!(decode(&[]), Err(CheckpointError::BadMagic)));
    // Bump the version field (bytes 8..12) and fix nothing else: version
    // gate fires before any checksum work.
    bytes[8] = 0xFF;
    assert!(matches!(
        decode(&bytes),
        Err(CheckpointError::UnsupportedVersion {
            got: _,
            supported: 1
        })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Encode→decode is the identity on (network, optimizer, progress),
    /// bit for bit, across optimizer kinds and init seeds — and the
    /// encoding itself is deterministic (state tables are sorted).
    #[test]
    fn encode_decode_roundtrip_is_bitwise_identity(opt_kind in 0u8..3, seed in 0u64..1000) {
        let (net, opt, progress) = trained_state(opt_kind, seed);
        let bytes = encode(&net, &opt, &progress);
        let ck = decode(&bytes).expect("valid bytes decode");
        prop_assert_eq!(&ck.net, &net);
        prop_assert_eq!(&ck.progress, &progress);
        let reencoded = encode(&ck.net, &ck.opt, &ck.progress);
        prop_assert_eq!(reencoded, bytes);
    }

    /// The acceptance-criterion proptest: kill training at a random batch
    /// (injected panic), resume from the last good checkpoint, and the
    /// final network + history are **bitwise identical** to an
    /// uninterrupted run — across kill points, checkpoint cadences, and
    /// optimizer kinds.
    #[test]
    fn kill_at_batch_n_then_resume_is_bitwise_identical(
        kill_batch in 1u64..24,
        every in 1usize..5,
        opt_kind in 0u8..3,
        seed in 0u64..100,
    ) {
        let (x, labels) = toy_problem(64);
        // 64 samples / bs 16 = 4 batches × 6 epochs = 24 global batches.
        let config = TrainConfig {
            epochs: 6,
            batch_size: 16,
            seed,
            ..TrainConfig::default()
        };

        // Reference: uninterrupted, unsupervised, no checkpointing.
        let mut ref_net = radix_classifier(seed.wrapping_add(1));
        let mut ref_opt = make_optimizer(opt_kind);
        let ref_history = train_classifier(&mut ref_net, &x, &labels, &mut ref_opt, &config);

        // Victim: same run, checkpointed, killed at `kill_batch`.
        let dir = scratch_dir(&format!("kill-{kill_batch}-{every}-{opt_kind}-{seed}"));
        let plan = TrainFaultPlan {
            panic_at_batch: Some(kill_batch),
            panic_budget: 1,
            ..TrainFaultPlan::default()
        };
        {
            let mut ck = Checkpointer::new(&dir)
                .unwrap()
                .with_every(every)
                .with_faults(TrainFaultInjector::new(plan));
            let mut net = radix_classifier(seed.wrapping_add(1));
            let mut opt = make_optimizer(opt_kind);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                train_classifier_checkpointed(&mut net, &x, &labels, &mut opt, &config, &mut ck)
            }));
            prop_assert!(outcome.is_err(), "kill at batch {} must panic", kill_batch);
        }

        // Resume: fresh state, same directory, no faults.
        let mut ck = Checkpointer::new(&dir).unwrap().with_every(every);
        let mut net = radix_classifier(seed.wrapping_add(1));
        let mut opt = make_optimizer(opt_kind);
        let history =
            train_classifier_checkpointed(&mut net, &x, &labels, &mut opt, &config, &mut ck)
                .expect("resume succeeds");

        prop_assert_eq!(&history, &ref_history);
        prop_assert_eq!(&net, &ref_net);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Hostile-bytes fuzz: every truncation of a valid checkpoint yields
    /// a typed `CheckpointError`, never a panic.
    #[test]
    fn truncations_never_panic(cut_permille in 0u32..1000) {
        let (net, opt, progress) = trained_state(2, 5);
        let bytes = encode(&net, &opt, &progress);
        let cut = (bytes.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let truncated = &bytes[..cut];
        let outcome = catch_unwind(AssertUnwindSafe(|| decode(truncated)));
        let decoded = outcome.expect("decode must not panic on truncated bytes");
        prop_assert!(decoded.is_err(), "a {cut}-byte prefix must not decode");
    }

    /// Hostile-bytes fuzz: every single-byte corruption yields a typed
    /// `CheckpointError` — never a panic, never silently wrong weights.
    #[test]
    fn byte_flips_never_panic_or_pass(pos_permille in 0u32..1000, flip in 1u8..=255) {
        let (net, opt, progress) = trained_state(1, 6);
        let mut bytes = encode(&net, &opt, &progress);
        let pos = ((bytes.len() as u64 - 1) * u64::from(pos_permille) / 1000) as usize;
        bytes[pos] ^= flip;
        let outcome = catch_unwind(AssertUnwindSafe(|| decode(&bytes)));
        let decoded = outcome.expect("decode must not panic on flipped bytes");
        // The per-section CRCs + footer make any single-byte flip
        // detectable: silently accepting corrupted weights is the one
        // outcome the format exists to rule out.
        prop_assert!(decoded.is_err(), "flip {flip:#04x} at byte {pos} must not decode");
    }
}
