//! Property tests for the NN substrate: gradient correctness on random
//! sparse topologies via finite differences, sparse/dense forward
//! equivalence, and data-parallel determinism.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use radix_net::{MixedRadixSystem, MixedRadixTopology};
use radix_nn::{
    Activation, GradWorkspace, GradWorkspacePool, Init, Layer, Loss, Network, SparseLinear, Targets,
};
use radix_sparse::{CsrMatrix, DenseMatrix};

fn random_batch(rows: usize, cols: usize, seed: u64) -> DenseMatrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        let r: &mut [f32] = x.row_mut(i);
        for v in r.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
    }
    x
}

fn random_sparse_net(radices: &[usize], act: Activation, seed: u64) -> Network {
    let fnnt =
        MixedRadixTopology::new(MixedRadixSystem::new(radices.to_vec()).unwrap()).into_fnnt();
    Network::from_fnnt(&fnnt, act, Init::Xavier, Loss::Mse, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sparse_forward_equals_densified_forward(
        radices in proptest::collection::vec(2usize..4, 2..4),
        seed in any::<u64>(),
    ) {
        prop_assume!(radices.iter().product::<usize>() <= 32);
        let net = random_sparse_net(&radices, Activation::Tanh, seed);
        // Densify every layer and rebuild as a dense network with the same
        // weights; outputs must agree.
        let dense_layers: Vec<Layer> = net
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Sparse(s) => Layer::Dense(radix_nn::DenseLinear::new(
                    s.weights().to_dense(),
                    l.activation(),
                )),
                Layer::Dense(_) => l.clone(),
            })
            .collect();
        let dense_net = Network::new(dense_layers, Loss::Mse);
        let x = random_batch(3, net.n_in(), seed ^ 1);
        let a = net.forward(&x);
        let b = dense_net.forward(&x);
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                prop_assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn regression_gradients_match_finite_differences(
        radices in proptest::collection::vec(2usize..4, 2..3),
        seed in any::<u64>(),
    ) {
        prop_assume!(radices.iter().product::<usize>() <= 16);
        let net = random_sparse_net(&radices, Activation::Sigmoid, seed);
        let x = random_batch(2, net.n_in(), seed ^ 2);
        let y = random_batch(2, net.n_out(), seed ^ 3);
        let (_, grads) = net.grad_batch(&x, Targets::values(&y));

        // Check a few weight coordinates of the first layer by nudging.
        let h = 2e-2f32;
        let (w_len, b_len) = net.layers()[0].param_lens();
        for k in [0, w_len / 2, w_len - 1] {
            let loss_at = |delta: f32| -> f32 {
                let mut n2 = net.clone();
                let mut dw = vec![0.0; w_len];
                dw[k] = -delta;
                // Poke only layer 0.
                let layers: Vec<Layer> = n2
                    .layers()
                    .iter()
                    .cloned()
                    .enumerate()
                    .map(|(i, mut l)| {
                        if i == 0 {
                            l.apply_update(&dw, &vec![0.0; b_len]);
                        }
                        l
                    })
                    .collect();
                n2 = Network::new(layers, Loss::Mse);
                let (loss, _) = n2.grad_batch(&x, Targets::values(&y));
                loss
            };
            let numeric = (loss_at(h) - loss_at(-h)) / (2.0 * h);
            let analytic = grads[0].w[k];
            prop_assert!(
                (numeric - analytic).abs() < 5e-2_f32.max(analytic.abs() * 0.2),
                "weight {k}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn par_grad_agrees_with_serial_on_random_nets(
        radices in proptest::collection::vec(2usize..4, 2..4),
        chunks in 2usize..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(radices.iter().product::<usize>() <= 32);
        let net = random_sparse_net(&radices, Activation::Relu, seed);
        let x = random_batch(12, net.n_in(), seed ^ 4);
        let y = random_batch(12, net.n_out(), seed ^ 5);
        let (l1, g1) = net.grad_batch(&x, Targets::values(&y));
        let (l2, g2) = net.par_grad_batch(&x, Targets::values(&y), chunks);
        prop_assert!((l1 - l2).abs() < 1e-4 * (1.0 + l1.abs()));
        for (a, b) in g1.iter().zip(&g2) {
            for (p, q) in a.w.iter().zip(&b.w) {
                prop_assert!((p - q).abs() < 1e-4 * (1.0 + p.abs()));
            }
        }
    }

    #[test]
    fn pool_native_grad_is_bitwise_stable_across_slot_counts(
        radices in proptest::collection::vec(2usize..4, 2..4),
        chunks in 2usize..6,
        seed in any::<u64>(),
        steal in any::<u64>(),
    ) {
        // The tentpole determinism guarantee: for a fixed chunk count, the
        // pool-native data-parallel gradient path is **bitwise identical**
        // no matter how many worker slots participate (1 = forced serial
        // chunk evaluation, 2/4 = dynamic claiming across the pool) and no
        // matter which steal schedule the scheduler picks (the steal seed
        // reshapes every victim rotation) — per-chunk gradient storage plus
        // the fixed-order tree reduction make the result
        // schedule-independent. Against the serial single-sum path it
        // agrees to float tolerance only.
        prop_assume!(radices.iter().product::<usize>() <= 32);
        let net = random_sparse_net(&radices, Activation::Tanh, seed);
        let batch = 13; // ragged split for most chunk counts
        let x = random_batch(batch, net.n_in(), seed ^ 8);
        let y = random_batch(batch, net.n_out(), seed ^ 9);

        let mut reference: Option<(f32, Vec<radix_nn::LayerGrads>)> = None;
        for slots in [1usize, 2, 4] {
            for steal_seed in [0, steal, steal.wrapping_mul(0x9E37_79B9_7F4A_7C15)] {
                rayon::set_steal_seed(steal_seed);
                let mut pool = GradWorkspacePool::with_slots(&net, batch, chunks, slots);
                let mut ws = GradWorkspace::for_network(&net, batch);
                let loss =
                    net.par_grad_batch_with(&x, Targets::values(&y), chunks, &mut pool, &mut ws);
                match &reference {
                    None => reference = Some((loss, ws.grads().to_vec())),
                    Some((ref_loss, ref_grads)) => {
                        prop_assert_eq!(
                            loss.to_bits(), ref_loss.to_bits(),
                            "slots {} steal {}", slots, steal_seed
                        );
                        for (a, b) in ref_grads.iter().zip(ws.grads()) {
                            prop_assert_eq!(&a.w, &b.w, "slots {} steal {}", slots, steal_seed);
                            prop_assert_eq!(&a.b, &b.b, "slots {} steal {}", slots, steal_seed);
                        }
                    }
                }
            }
        }
        rayon::set_steal_seed(0);

        let (ref_loss, ref_grads) = reference.unwrap();
        let (serial_loss, serial_grads) = net.grad_batch(&x, Targets::values(&y));
        prop_assert!((serial_loss - ref_loss).abs() < 1e-4 * (1.0 + serial_loss.abs()));
        for (a, b) in serial_grads.iter().zip(&ref_grads) {
            for (p, q) in a.w.iter().zip(&b.w) {
                prop_assert!((p - q).abs() < 1e-4 * (1.0 + p.abs()));
            }
        }
    }

    #[test]
    fn fused_decay_norm_matches_separate_passes(
        radices in proptest::collection::vec(2usize..4, 2..4),
        chunks in 2usize..6,
        seed in any::<u64>(),
        wd_on in any::<bool>(),
        wd_raw in 1e-4f32..0.1,
    ) {
        let wd = if wd_on { wd_raw } else { 0.0 };
        // The fused reduction (decay + clip norm folded into the sweep)
        // must be a pure optimization: decayed gradients and loss bitwise
        // equal to the separate-pass path, the norm equal to float
        // tolerance (its fixed segment-tree association differs from the
        // serial running sum of `clip_gradients`).
        prop_assume!(radices.iter().product::<usize>() <= 32);
        let net = random_sparse_net(&radices, Activation::Tanh, seed);
        let batch = 13;
        let x = random_batch(batch, net.n_in(), seed ^ 8);
        let y = random_batch(batch, net.n_out(), seed ^ 9);

        let mut pool = GradWorkspacePool::with_slots(&net, batch, chunks, 4);
        let mut ws = GradWorkspace::for_network(&net, batch);
        let sep_loss =
            net.par_grad_batch_with(&x, Targets::values(&y), chunks, &mut pool, &mut ws);
        if wd > 0.0 {
            net.add_weight_decay(ws.grads_mut(), wd);
        }
        let sep_grads = ws.grads().to_vec();
        // An infinite max norm measures without scaling.
        let sep_norm = radix_nn::clip_gradients(ws.grads_mut(), f32::INFINITY);

        let mut pool = GradWorkspacePool::with_slots(&net, batch, chunks, 4);
        let mut ws = GradWorkspace::for_network(&net, batch);
        let (fused_loss, fused_norm) =
            net.par_grad_batch_fused_with(&x, Targets::values(&y), chunks, wd, &mut pool, &mut ws);

        prop_assert_eq!(fused_loss.to_bits(), sep_loss.to_bits());
        for (a, b) in sep_grads.iter().zip(ws.grads()) {
            prop_assert_eq!(&a.w, &b.w);
            prop_assert_eq!(&a.b, &b.b);
        }
        prop_assert!(
            (fused_norm - sep_norm).abs() <= 1e-5 * (1.0 + sep_norm.abs()),
            "fused norm {} vs separate-pass norm {}", fused_norm, sep_norm
        );
    }

    #[test]
    fn training_history_is_bitwise_stable_across_steal_seeds(
        radices in proptest::collection::vec(2usize..4, 2..4),
        seed in any::<u64>(),
        steal in any::<u64>(),
    ) {
        // End-to-end: a pool-native training run (decay + clipping, so the
        // fused reduction path is exercised) produces a bitwise-identical
        // `History` and final weights under every steal schedule.
        prop_assume!(radices.iter().product::<usize>() <= 32);
        let x = random_batch(24, radices.iter().product(), seed ^ 3);
        let y = random_batch(24, radices.iter().product(), seed ^ 4);
        let config = radix_nn::TrainConfig {
            epochs: 2,
            batch_size: 8,
            seed,
            parallel_chunks: 4,
            weight_decay: 1e-3,
            grad_clip: Some(0.5),
            lr_decay: 1.0,
        };
        let mut reference: Option<(radix_nn::History, Vec<Layer>)> = None;
        for steal_seed in [0, steal, !steal] {
            rayon::set_steal_seed(steal_seed);
            let mut net = random_sparse_net(&radices, Activation::Tanh, seed);
            let mut opt = radix_nn::Optimizer::sgd(0.05);
            let history = radix_nn::train_regressor(&mut net, &x, &y, &mut opt, &config);
            match &reference {
                None => reference = Some((history, net.layers().to_vec())),
                Some((ref_hist, ref_layers)) => {
                    prop_assert_eq!(ref_hist, &history, "steal {}", steal_seed);
                    for (a, b) in ref_layers.iter().zip(net.layers()) {
                        match (a, b) {
                            (Layer::Sparse(p), Layer::Sparse(q)) => {
                                prop_assert_eq!(p.weights().data(), q.weights().data());
                                prop_assert_eq!(p.bias(), q.bias());
                            }
                            _ => prop_assert!(false, "layer kind changed"),
                        }
                    }
                }
            }
        }
        rayon::set_steal_seed(0);
    }

    #[test]
    fn training_step_never_corrupts_pattern(
        radices in proptest::collection::vec(2usize..4, 2..4),
        seed in any::<u64>(),
    ) {
        prop_assume!(radices.iter().product::<usize>() <= 32);
        let mut net = random_sparse_net(&radices, Activation::Tanh, seed);
        let patterns: Vec<CsrMatrix<f32>> = net
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Sparse(s) => s.weights().clone(),
                Layer::Dense(_) => unreachable!(),
            })
            .collect();
        let x = random_batch(8, net.n_in(), seed ^ 6);
        let y = random_batch(8, net.n_out(), seed ^ 7);
        let mut opt = radix_nn::Optimizer::adam(0.05);
        for _ in 0..3 {
            let (_, grads) = net.grad_batch(&x, Targets::values(&y));
            net.apply_gradients(&grads, &mut opt);
        }
        for (layer, before) in net.layers().iter().zip(&patterns) {
            let Layer::Sparse(s) = layer else { unreachable!() };
            prop_assert!(
                s.weights().same_pattern(before),
                "training must never change the sparsity pattern"
            );
        }
    }
}

#[test]
fn sparse_linear_is_constructible_from_pattern() {
    // Non-proptest sanity: the public construction path end to end.
    let fnnt = MixedRadixTopology::new(MixedRadixSystem::new([2, 2]).unwrap()).into_fnnt();
    let w: CsrMatrix<f32> = fnnt.layer(0).pattern();
    let layer = Layer::Sparse(SparseLinear::new(w, Activation::Relu));
    assert_eq!(layer.n_in(), 4);
    assert_eq!(layer.n_out(), 4);
}
