//! Verifies the training-side acceptance criterion of the tiled execution
//! engine: after workspace warm-up, a **full train step's gradient
//! computation** — forward trace, loss gradient via `Loss::eval_*_into`
//! straight into the workspace delta buffer, activation-scaled delta,
//! allocation-free weight-gradient accumulation, and the **tiled
//! transposed** input-gradient products — performs **no heap allocation**,
//! on the serial and the pool-parallel path alike.
//!
//! The counting-allocator methodology is shared with
//! `crates/challenge/tests/zero_alloc.rs` (the inference-side twin); each
//! lives in its own test binary because the counter is process-global.
//! The pool is forced to 4 threads and the parallelism threshold to 1 so
//! every kernel takes the pool path even on a 1-core CI box, and the tile
//! width is forced low enough that this test's 16-wide layers actually
//! run the tiled transposed schedule.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use radix_net::{MixedRadixSystem, RadixNetSpec};
use radix_nn::{Activation, GradWorkspace, Init, Loss, Network, Targets};
use radix_sparse::DenseMatrix;

/// Counts every allocation (alloc + realloc) made through the global
/// allocator, delegating the actual memory management to [`System`].
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to the system allocator; the
// only added behavior is a relaxed atomic counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A deterministic mixed-sparsity batch (some exact zeros, exercising the
/// activation-sparsity dispatch's counting path).
fn batch(rows: usize, cols: usize) -> DenseMatrix<f32> {
    let mut x = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        let row: &mut [f32] = x.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            if (i * 7 + j * 3) % 4 != 0 {
                *v = ((i * cols + j) % 11) as f32 * 0.2 - 1.0;
            }
        }
    }
    x
}

// One test function on purpose: the counter is process-global, so two
// tests measuring "no allocations happened in my window" concurrently
// would see each other's setup allocations and fail spuriously under the
// default parallel test harness.
#[test]
fn train_step_timed_region_is_allocation_free() {
    // Force a real multi-thread pool (even on 1-core CI), a parallelism
    // threshold of 1 so every product and gradient accumulation takes the
    // pool path, and a tile width small enough that the 16-wide hidden
    // layers run the tiled transposed schedule. Must happen before the
    // first pool / tunable use; all are cached process-wide after that.
    // RADIX_POOL_THREADS has highest precedence, so set it too — the CI
    // multi-thread matrix exports it process-wide and must not override
    // this test's forced width.
    std::env::set_var("RADIX_POOL_THREADS", "4");
    std::env::set_var("RAYON_NUM_THREADS", "4");
    std::env::set_var("RADIX_TILE_COLS", "8");
    std::env::set_var("RADIX_PAR_THRESHOLD", "1");

    // RadiX-Net (2,2,2) × widths (1,2,2,1): 8 → 16 → 16 → 8, all sparse.
    let spec = RadixNetSpec::new(
        vec![MixedRadixSystem::new([2, 2, 2]).unwrap()],
        vec![1, 2, 2, 1],
    )
    .unwrap();
    let mut net = Network::from_fnnt(
        &spec.build().into_fnnt(),
        Activation::Tanh,
        Init::Xavier,
        Loss::SoftmaxCrossEntropy,
        7,
    );
    let batch_rows = 48usize; // spans a partial second 32-row tile block
    let x = batch(batch_rows, net.n_in());
    let labels: Vec<usize> = (0..batch_rows).map(|i| (i * 3) % net.n_out()).collect();

    // Part 1: a workspace pre-sized with for_network makes even the first
    // gradient batch allocation-free (pool spawn is paid by the warm-up
    // forward below, before the measured window).
    let mut ws = GradWorkspace::for_network(&net, batch_rows);
    let warmup = net.forward(&x); // spawns the pool, sizes nothing persistent
    assert_eq!(warmup.shape(), (batch_rows, net.n_out()));
    // Prime the process-wide tunables: each is read from the environment
    // exactly once (an allocation), cached in a OnceLock thereafter — a
    // one-time process setup cost, not part of any train step.
    let _ = radix_sparse::kernel::tile_cols();
    let _ = radix_sparse::kernel::par_threshold();
    let _ = radix_sparse::kernel::act_sparse_percent();

    // The counter is process-global, and libtest's harness thread lazily
    // allocates its channel-parking context the first time it gets
    // scheduled — which, on a single-core machine, can land in the middle
    // of a measured window. Yield long enough for the harness thread to
    // finish that one-time setup before any measurement starts.
    std::thread::sleep(std::time::Duration::from_millis(100));

    let before = allocations();
    let first_loss = net.grad_batch_with(&x, Targets::Labels(&labels), &mut ws);
    let after = allocations();
    assert!(first_loss.is_finite());
    assert_eq!(
        after - before,
        0,
        "first gradient batch through a pre-sized workspace must be allocation-free"
    );

    // Part 2: steady state — repeated full gradient batches (forward +
    // loss epilogue + tiled transposed backward) allocate nothing, and
    // keep producing the same loss on the same inputs.
    let before = allocations();
    for _ in 0..3 {
        let loss = net.grad_batch_with(&x, Targets::Labels(&labels), &mut ws);
        assert_eq!(loss, first_loss, "same inputs, same loss");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state train-step gradients must be allocation-free"
    );

    // Part 3: regression targets drive the other loss epilogue
    // (eval_regression_into) through the same buffers; after one warm-up
    // for the new target shape the step must again be allocation-free.
    let reg_net = Network::from_fnnt(
        &spec.build().into_fnnt(),
        Activation::Sigmoid,
        Init::Xavier,
        Loss::Mse,
        11,
    );
    let targets = batch(batch_rows, reg_net.n_out());
    let mut reg_ws = GradWorkspace::for_network(&reg_net, batch_rows);
    let warm = reg_net.grad_batch_with(&x, Targets::values(&targets), &mut reg_ws);
    std::thread::sleep(std::time::Duration::from_millis(50));
    let before = allocations();
    let again = reg_net.grad_batch_with(&x, Targets::values(&targets), &mut reg_ws);
    let after = allocations();
    assert_eq!(warm, again);
    assert_eq!(
        after - before,
        0,
        "regression train-step gradients must be allocation-free"
    );

    // And the gradients actually descend: one SGD step lowers the loss.
    let mut opt = radix_nn::Optimizer::sgd(0.5);
    net.apply_gradients(ws.grads(), &mut opt);
    let descended = net.grad_batch_with(&x, Targets::Labels(&labels), &mut ws);
    assert!(
        descended < first_loss,
        "one SGD step must descend: {first_loss} → {descended}"
    );

    // Part 4: the pool-native data-parallel training path. A full
    // multi-chunk (4 chunks), multi-epoch training run — zero-copy chunk
    // views, per-worker workspaces, the fixed-order gradient reduction,
    // weight decay, gradient clipping, and Adam steps through the reused
    // optimizer scratch — allocates nothing after one warm-up step, on
    // the forced 4-thread pool.
    let mut par_net = Network::from_fnnt(
        &spec.build().into_fnnt(),
        Activation::Tanh,
        Init::Xavier,
        Loss::SoftmaxCrossEntropy,
        13,
    );
    let num_chunks = 4usize;
    let mut pool = radix_nn::GradWorkspacePool::for_network(&par_net, batch_rows, num_chunks);
    let mut par_ws = GradWorkspace::for_network(&par_net, batch_rows);
    let mut adam = radix_nn::Optimizer::adam(0.01);
    // Warm-up: first-touch Adam state per parameter id, scratch
    // high-water marks. One full step covers every code path.
    let warm_loss = par_net.par_grad_batch_with(
        &x,
        Targets::Labels(&labels),
        num_chunks,
        &mut pool,
        &mut par_ws,
    );
    assert!(warm_loss.is_finite());
    par_net.add_weight_decay(par_ws.grads_mut(), 1e-4);
    radix_nn::clip_gradients(par_ws.grads_mut(), 5.0);
    par_net.apply_gradients_with(&mut par_ws, &mut adam);
    std::thread::sleep(std::time::Duration::from_millis(50));

    let before = allocations();
    let mut last_loss = f32::INFINITY;
    for _epoch in 0..3 {
        for _batch in 0..2 {
            let loss = par_net.par_grad_batch_with(
                &x,
                Targets::Labels(&labels),
                num_chunks,
                &mut pool,
                &mut par_ws,
            );
            assert!(loss.is_finite());
            last_loss = loss;
            par_net.add_weight_decay(par_ws.grads_mut(), 1e-4);
            radix_nn::clip_gradients(par_ws.grads_mut(), 5.0);
            par_net.apply_gradients_with(&mut par_ws, &mut adam);
        }
        // An epoch's ragged final mini-batch: 9 rows across 4 requested
        // chunks dispatches only 3 (ceil(9/3) after rounding). The chunk
        // pool must not shrink-and-regrow across this — that churn was a
        // real bug — and the step stays allocation-free on batch views.
        let tail = par_net.par_grad_batch_with(
            &x.rows_view(0..9),
            Targets::Labels(&labels[..9]),
            num_chunks,
            &mut pool,
            &mut par_ws,
        );
        assert!(tail.is_finite());
        par_net.apply_gradients_with(&mut par_ws, &mut adam);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "multi-chunk multi-epoch pool-native training must be allocation-free"
    );
    assert!(
        last_loss < warm_loss,
        "training must descend: {warm_loss} → {last_loss}"
    );
}
