//! Structural analysis of FNNTs: degree statistics, forward reach, and
//! mixing depth.
//!
//! X-Nets are constructed *because* expander graphs mix quickly (paper §I);
//! RadiX-Nets claim the same virtue deterministically. This module measures
//! it: how fast does a single input's influence spread layer by layer, how
//! many layers until every output depends on every input, and how uniform
//! are the degrees. These are the quantities behind the informal
//! "path-connectedness in few layers" statements, made measurable for both
//! families (the `mixing` example compares them).

use std::collections::BTreeSet;

use radix_sparse::CsrMatrix;

use crate::fnnt::Fnnt;

/// Degree statistics of one adjacency submatrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum out-degree over source nodes.
    pub out_min: usize,
    /// Maximum out-degree over source nodes.
    pub out_max: usize,
    /// Mean out-degree.
    pub out_mean: f64,
    /// Minimum in-degree over target nodes.
    pub in_min: usize,
    /// Maximum in-degree over target nodes.
    pub in_max: usize,
    /// Mean in-degree.
    pub in_mean: f64,
}

/// Computes degree statistics for one layer.
#[must_use]
pub fn degree_stats(w: &CsrMatrix<u64>) -> DegreeStats {
    let out = w.row_degrees();
    let inn = w.col_degrees();
    let mean = |v: &[usize]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<usize>() as f64 / v.len() as f64
        }
    };
    DegreeStats {
        out_min: out.iter().copied().min().unwrap_or(0),
        out_max: out.iter().copied().max().unwrap_or(0),
        out_mean: mean(&out),
        in_min: inn.iter().copied().min().unwrap_or(0),
        in_max: inn.iter().copied().max().unwrap_or(0),
        in_mean: mean(&inn),
    }
}

/// Whether every layer of the FNNT is degree-regular (all out-degrees
/// equal and all in-degrees equal) — true for mixed-radix and RadiX-Net
/// topologies, generally false for random X-Nets. Regularity is the
/// structural shadow of the paper's symmetry property.
#[must_use]
pub fn is_degree_regular(fnnt: &Fnnt) -> bool {
    fnnt.submatrices().iter().all(|w| {
        let s = degree_stats(w);
        s.out_min == s.out_max && s.in_min == s.in_max
    })
}

/// The forward reach profile of a single source node: element `k` is the
/// number of layer-`k+1` nodes reachable from `source` within the first
/// `k+1` layers.
///
/// # Panics
/// Panics if `source` is out of range for the input layer.
#[must_use]
pub fn reach_profile(fnnt: &Fnnt, source: usize) -> Vec<usize> {
    assert!(source < fnnt.layer_sizes()[0], "source node out of range");
    let mut frontier: BTreeSet<usize> = std::iter::once(source).collect();
    let mut profile = Vec::with_capacity(fnnt.num_edge_layers());
    for w in fnnt.submatrices() {
        let mut next = BTreeSet::new();
        for &u in &frontier {
            let (cols, _) = w.row(u);
            next.extend(cols.iter().copied());
        }
        profile.push(next.len());
        frontier = next;
    }
    profile
}

/// Mixing depth of a *repeatable* layer: the number of applications of the
/// square layer `w` after which a single source reaches every node, or
/// `None` if it never does within `max_depth` layers.
///
/// # Panics
/// Panics if `w` is not square.
#[must_use]
pub fn mixing_depth(w: &CsrMatrix<u64>, source: usize, max_depth: usize) -> Option<usize> {
    assert_eq!(w.nrows(), w.ncols(), "mixing depth needs a square layer");
    let n = w.nrows();
    let mut frontier: BTreeSet<usize> = std::iter::once(source).collect();
    for depth in 1..=max_depth {
        let mut next = BTreeSet::new();
        for &u in &frontier {
            let (cols, _) = w.row(u);
            next.extend(cols.iter().copied());
        }
        if next.len() == n {
            return Some(depth);
        }
        if next == frontier {
            return None; // stalled
        }
        frontier = next;
    }
    None
}

/// Minimum observed vertex expansion of a layer over all singleton-to-set
/// growth steps from each source: `min_u |N({u})| / 1 = min out-degree`,
/// generalized to seed sets of the given size by sampling every contiguous
/// window of `set_size` sources (deterministic, no RNG).
///
/// Expansion `≥ c` for small sets is the defining property of the expander
/// layers X-Nets are built from.
///
/// # Panics
/// Panics if `set_size` is zero or exceeds the source count.
#[must_use]
pub fn min_vertex_expansion(w: &CsrMatrix<u64>, set_size: usize) -> f64 {
    assert!(set_size > 0, "set size must be positive");
    assert!(set_size <= w.nrows(), "set size exceeds sources");
    let mut min_ratio = f64::INFINITY;
    for start in 0..w.nrows() {
        let mut neighborhood = BTreeSet::new();
        for offset in 0..set_size {
            let u = (start + offset) % w.nrows();
            let (cols, _) = w.row(u);
            neighborhood.extend(cols.iter().copied());
        }
        let ratio = neighborhood.len() as f64 / set_size as f64;
        min_ratio = min_ratio.min(ratio);
    }
    min_ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeral::MixedRadixSystem;
    use crate::topology::MixedRadixTopology;
    use radix_sparse::CyclicShift;

    fn mr_fnnt(radices: &[usize]) -> Fnnt {
        MixedRadixTopology::new(MixedRadixSystem::new(radices.to_vec()).unwrap()).into_fnnt()
    }

    #[test]
    fn mixed_radix_layers_are_regular() {
        let g = mr_fnnt(&[2, 3, 2]);
        assert!(is_degree_regular(&g));
        let s = degree_stats(g.layer(1));
        assert_eq!(s.out_min, 3);
        assert_eq!(s.out_max, 3);
        assert_eq!(s.in_min, 3);
        assert!((s.out_mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_xnet_layers_usually_irregular() {
        // Row degrees of a random expander vary; regularity check must say
        // so. Build directly to avoid a cross-crate dev-dependency.
        use radix_sparse::CooMatrix;
        let mut coo = CooMatrix::new(6, 6);
        // Hand-built irregular layer: node 0 has out-degree 3, others 1.
        for &c in &[0usize, 1, 2] {
            coo.push(0, c, 1u64);
        }
        for i in 1..6 {
            coo.push(i, (i + 2) % 6, 1u64);
        }
        let g = Fnnt::new_unchecked(vec![coo.to_csr()]);
        assert!(!is_degree_regular(&g));
    }

    #[test]
    fn reach_profile_doubles_in_binary_topology() {
        // (2,2,2): reach 2 → 4 → 8 (the decision tree of Figure 1).
        let g = mr_fnnt(&[2, 2, 2]);
        assert_eq!(reach_profile(&g, 0), vec![2, 4, 8]);
        // Every source mixes equally (symmetry's shadow).
        for s in 0..8 {
            assert_eq!(reach_profile(&g, s), vec![2, 4, 8]);
        }
    }

    #[test]
    fn reach_profile_saturates_at_nprime() {
        let g = mr_fnnt(&[4, 4]);
        assert_eq!(reach_profile(&g, 3), vec![4, 16]);
    }

    #[test]
    fn mixing_depth_of_radix_layer() {
        // A radix-2, place-value-1 layer on 8 nodes: one application
        // reaches 2 nodes, k applications reach k+1 → full at depth 7.
        let w: CsrMatrix<u64> = CyclicShift::radix_submatrix(8, 2, 1);
        assert_eq!(mixing_depth(&w, 0, 16), Some(7));
    }

    #[test]
    fn mixing_depth_detects_stall() {
        // Identity never mixes.
        let w = CsrMatrix::<u64>::identity(4);
        assert_eq!(mixing_depth(&w, 0, 10), None);
    }

    #[test]
    fn full_layer_mixes_in_one() {
        let w: CsrMatrix<u64> = CyclicShift::radix_submatrix(5, 5, 1);
        assert_eq!(mixing_depth(&w, 2, 3), Some(1));
    }

    #[test]
    fn expansion_of_radix_layer() {
        // Degree-2 offset-1 layer: a window of k sources covers k+1
        // targets → expansion (k+1)/k.
        let w: CsrMatrix<u64> = CyclicShift::radix_submatrix(8, 2, 1);
        assert!((min_vertex_expansion(&w, 1) - 2.0).abs() < 1e-12);
        assert!((min_vertex_expansion(&w, 4) - 5.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "set size must be positive")]
    fn zero_set_size_panics() {
        let w: CsrMatrix<u64> = CyclicShift::radix_submatrix(4, 2, 1);
        let _ = min_vertex_expansion(&w, 0);
    }
}
