//! The RadiX-Net generation algorithm — paper §III.A and Figure 6.
//!
//! A RadiX-Net is specified by an ordered set `N* = (N_1, …, N_M)` of
//! mixed-radix systems and an ordered set `D = (D_0, …, D_M̄)` of layer
//! widths (`M̄ = Σ L_i`, the total radix count). Constraints (paper §III.A):
//!
//! 1. every system except the last has the same product `N'`,
//! 2. the last system's product divides `N'`,
//! 3. `D` has `M̄ + 1` positive entries with `D_i ≪ N'` (soft; see
//!    [`RadixNetSpec::strict`]).
//!
//! Construction: concatenate the mixed-radix topologies label-wise (output
//! layer of one identified with the input layer of the next), then replace
//! each submatrix `W_i` by `1_{D_{i−1} × D_i} ⊗ W_i` (eq. (3)).

use radix_sparse::{kron_ones_left, CsrMatrix};

use crate::error::RadixError;
use crate::fnnt::Fnnt;
use crate::numeral::MixedRadixSystem;
use crate::topology::MixedRadixTopology;

/// A validated RadiX-Net specification `(N*, D)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RadixNetSpec {
    systems: Vec<MixedRadixSystem>,
    widths: Vec<usize>,
    n_prime: usize,
}

/// A constructed RadiX-Net: the spec plus the generated FNNT.
#[derive(Debug, Clone, PartialEq)]
pub struct RadixNet {
    spec: RadixNetSpec,
    fnnt: Fnnt,
}

impl RadixNetSpec {
    /// Validates a `(N*, D)` pair against the RadiX-Net constraints.
    ///
    /// For `M = 1` the constraint set on products is vacuous; `N'` is then
    /// the single system's product (matching Figure 6, which always takes
    /// `N' ← ∏_{N ∈ N_1} N`).
    ///
    /// # Errors
    /// Any of [`RadixError::NoSystems`], [`RadixError::UnequalProducts`],
    /// [`RadixError::LastProductDoesNotDivide`],
    /// [`RadixError::WrongWidthCount`], [`RadixError::ZeroWidth`].
    pub fn new(systems: Vec<MixedRadixSystem>, widths: Vec<usize>) -> Result<Self, RadixError> {
        if systems.is_empty() {
            return Err(RadixError::NoSystems);
        }
        let n_prime = systems[0].product();
        let m = systems.len();
        for (i, sys) in systems.iter().enumerate().take(m.saturating_sub(1)) {
            if sys.product() != n_prime {
                return Err(RadixError::UnequalProducts {
                    system: i,
                    found: sys.product(),
                    expected: n_prime,
                });
            }
        }
        let last = systems[m - 1].product();
        if !n_prime.is_multiple_of(last) {
            return Err(RadixError::LastProductDoesNotDivide { last, n_prime });
        }
        let total_radices: usize = systems.iter().map(MixedRadixSystem::len).sum();
        if widths.len() != total_radices + 1 {
            return Err(RadixError::WrongWidthCount {
                found: widths.len(),
                expected: total_radices + 1,
            });
        }
        if let Some(position) = widths.iter().position(|&d| d == 0) {
            return Err(RadixError::ZeroWidth { position });
        }
        Ok(RadixNetSpec {
            systems,
            widths,
            n_prime,
        })
    }

    /// Extended mixed-radix spec: all widths 1 (the paper's Appendix
    /// definition used by Lemma 2).
    ///
    /// # Errors
    /// Same constraint errors as [`RadixNetSpec::new`].
    pub fn extended_mixed_radix(systems: Vec<MixedRadixSystem>) -> Result<Self, RadixError> {
        let total: usize = systems.iter().map(MixedRadixSystem::len).sum();
        RadixNetSpec::new(systems, vec![1; total + 1])
    }

    /// Validates the soft constraint `D_i ≪ N'`, interpreted as
    /// `D_i <= n_prime / threshold_divisor` for every `i`. The paper leaves
    /// "≪" unquantified; the Graph-Challenge generators use widths far below
    /// `N'`, so a divisor of 2 (i.e. `D_i ≤ N'/2`) is a lenient default.
    #[must_use]
    pub fn strict(&self, threshold_divisor: usize) -> bool {
        let bound = self.n_prime / threshold_divisor.max(1);
        self.widths.iter().all(|&d| d <= bound)
    }

    /// The mixed-radix systems `N*`.
    #[must_use]
    pub fn systems(&self) -> &[MixedRadixSystem] {
        &self.systems
    }

    /// The width vector `D`.
    #[must_use]
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// The common product `N'`.
    #[must_use]
    pub fn n_prime(&self) -> usize {
        self.n_prime
    }

    /// Total number of radices `M̄ = Σ L_i` (the number of edge layers).
    #[must_use]
    pub fn total_radices(&self) -> usize {
        self.systems.iter().map(MixedRadixSystem::len).sum()
    }

    /// The flattened radix sequence `(N̄_1, …, N̄_M̄)` used by the density
    /// formula (4).
    #[must_use]
    pub fn flattened_radices(&self) -> Vec<usize> {
        self.systems
            .iter()
            .flat_map(|s| s.radices().iter().copied())
            .collect()
    }

    /// Node-layer sizes of the generated net: `D_i · N'`.
    #[must_use]
    pub fn layer_sizes(&self) -> Vec<usize> {
        self.widths.iter().map(|&d| d * self.n_prime).collect()
    }

    /// Runs the Figure-6 algorithm and returns the constructed RadiX-Net.
    #[must_use]
    pub fn build(&self) -> RadixNet {
        // Step 1–2 (Figure 6): per-system mixed-radix submatrices on the
        // common N'-node grid, concatenated in order.
        let mut mixed: Vec<CsrMatrix<u64>> = Vec::with_capacity(self.total_radices());
        for sys in &self.systems {
            mixed.extend(MixedRadixTopology::submatrices_on(sys, self.n_prime));
        }
        // Step 3: Kronecker with the dense-DNN all-ones submatrices.
        let layers: Vec<CsrMatrix<u64>> = mixed
            .into_iter()
            .zip(self.widths.windows(2))
            .map(|(w, d)| kron_ones_left(d[0], d[1], &w))
            .collect();
        RadixNet {
            spec: self.clone(),
            fnnt: Fnnt::new_unchecked(layers),
        }
    }
}

impl RadixNet {
    /// The specification this net was generated from.
    #[must_use]
    pub fn spec(&self) -> &RadixNetSpec {
        &self.spec
    }

    /// The generated topology.
    #[must_use]
    pub fn fnnt(&self) -> &Fnnt {
        &self.fnnt
    }

    /// Consumes the net, returning the FNNT.
    #[must_use]
    pub fn into_fnnt(self) -> Fnnt {
        self.fnnt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(radices: &[usize]) -> MixedRadixSystem {
        MixedRadixSystem::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn fig5_shapes() {
        // Figure 5: three systems' worth of submatrices with D = (3,5,4,2).
        // Use one system of three radices so M̄ = 3 and D has 4 entries.
        let spec = RadixNetSpec::new(vec![sys(&[2, 2, 2])], vec![3, 5, 4, 2]).unwrap();
        let net = spec.build();
        assert_eq!(net.fnnt().layer_sizes(), vec![24, 40, 32, 16]);
        assert_eq!(net.fnnt().layer(0).shape(), (24, 40));
    }

    #[test]
    fn constraint_equal_products_enforced() {
        let e = RadixNetSpec::new(vec![sys(&[2, 2]), sys(&[3, 2]), sys(&[2, 2])], vec![1; 7]);
        assert_eq!(
            e,
            Err(RadixError::UnequalProducts {
                system: 1,
                found: 6,
                expected: 4
            })
        );
    }

    #[test]
    fn constraint_last_divides_enforced() {
        let e = RadixNetSpec::new(vec![sys(&[2, 3]), sys(&[4])], vec![1; 4]);
        assert_eq!(
            e,
            Err(RadixError::LastProductDoesNotDivide {
                last: 4,
                n_prime: 6
            })
        );
    }

    #[test]
    fn last_smaller_product_allowed() {
        // Last product 4 divides N' = 8.
        let spec = RadixNetSpec::new(vec![sys(&[2, 2, 2]), sys(&[2, 2])], vec![1; 6]);
        assert!(spec.is_ok());
    }

    #[test]
    fn width_count_enforced() {
        let e = RadixNetSpec::new(vec![sys(&[2, 2])], vec![1, 1]);
        assert_eq!(
            e,
            Err(RadixError::WrongWidthCount {
                found: 2,
                expected: 3
            })
        );
    }

    #[test]
    fn zero_width_rejected() {
        let e = RadixNetSpec::new(vec![sys(&[2, 2])], vec![1, 0, 1]);
        assert_eq!(e, Err(RadixError::ZeroWidth { position: 1 }));
    }

    #[test]
    fn no_systems_rejected() {
        assert_eq!(
            RadixNetSpec::new(vec![], vec![1]),
            Err(RadixError::NoSystems)
        );
    }

    #[test]
    fn emr_is_plain_concatenation() {
        // With all widths 1, the generated net is just the concatenated
        // mixed-radix topologies.
        let spec = RadixNetSpec::extended_mixed_radix(vec![sys(&[2, 2]), sys(&[4])]).unwrap();
        let net = spec.build();
        assert_eq!(net.fnnt().layer_sizes(), vec![4; 4]);
        // First system layers: offsets 1, 2 with radix 2; last: radix 4 pv 1.
        assert_eq!(net.fnnt().layer(2).row_nnz(0), 4);
    }

    #[test]
    fn build_is_binary_when_no_collisions() {
        let spec = RadixNetSpec::new(vec![sys(&[3, 3]), sys(&[9])], vec![2, 3, 3, 2]).unwrap();
        assert!(spec.build().fnnt().is_binary());
    }

    #[test]
    fn layer_sizes_match_widths_times_nprime() {
        let spec = RadixNetSpec::new(vec![sys(&[2, 3])], vec![4, 2, 3]).unwrap();
        assert_eq!(spec.layer_sizes(), vec![24, 12, 18]);
        assert_eq!(spec.build().fnnt().layer_sizes(), spec.layer_sizes());
    }

    #[test]
    fn flattened_radices_order() {
        let spec = RadixNetSpec::new(vec![sys(&[2, 3]), sys(&[6]), sys(&[3])], vec![1; 5]).unwrap();
        assert_eq!(spec.flattened_radices(), vec![2, 3, 6, 3]);
        assert_eq!(spec.total_radices(), 4);
    }

    #[test]
    fn strict_width_check() {
        let spec = RadixNetSpec::new(vec![sys(&[4, 4])], vec![2, 2, 2]).unwrap();
        assert!(spec.strict(2)); // 2 <= 16/2
        assert!(!spec.strict(16)); // 2 > 16/16 = 1
    }

    #[test]
    fn single_system_nprime_is_its_product() {
        let spec = RadixNetSpec::new(vec![sys(&[5, 2])], vec![1, 1, 1]).unwrap();
        assert_eq!(spec.n_prime(), 10);
    }

    #[test]
    fn out_degree_multiplied_by_width() {
        // Eq. (3): Kronecker with 1_{D_{i−1}×D_i} multiplies each node's
        // out-degree by D_i.
        let spec = RadixNetSpec::new(vec![sys(&[2, 2])], vec![1, 3, 1]).unwrap();
        let net = spec.build();
        // Layer 0: radix 2 × D_1 = 3 → out-degree 6.
        assert_eq!(net.fnnt().layer(0).row_nnz(0), 6);
        // Layer 1: radix 2 × D_2 = 1 → out-degree 2.
        assert_eq!(net.fnnt().layer(1).row_nnz(0), 2);
    }
}
