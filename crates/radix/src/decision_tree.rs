//! The overlapping-decision-tree construction of Figure 1.
//!
//! Figure 1 presents the mixed-radix topology for `N = (2,2,2)` as eight
//! binary decision trees, one rooted at each node of the input layer,
//! overlaid on the same node grid. This module implements that alternative
//! construction directly — walking each tree and collecting its edges — and
//! the test suite proves it generates exactly the same FNNT as the
//! matrix-form eq. (1) construction, which is the equivalence Figure 1
//! illustrates.

use std::collections::BTreeSet;

use radix_sparse::{CooMatrix, CsrMatrix};

use crate::fnnt::Fnnt;
use crate::numeral::MixedRadixSystem;

/// One decision tree of the mixed-radix topology: the tree rooted at input
/// node `root`, where the branch taken at depth `i` chooses digit
/// `n ∈ {0, …, N_i − 1}` and moves to node `(current + n·ν_i) mod N'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionTree {
    root: usize,
    /// Edges per layer: `(from, to)` pairs, deduplicated and sorted.
    layers: Vec<BTreeSet<(usize, usize)>>,
}

impl DecisionTree {
    /// Builds the decision tree of `system` rooted at `root`.
    ///
    /// # Panics
    /// Panics if `root >= system.product()`.
    #[must_use]
    pub fn new(system: &MixedRadixSystem, root: usize) -> Self {
        let np = system.product();
        assert!(root < np, "root {root} out of range for N' = {np}");
        let mut layers = Vec::with_capacity(system.len());
        let mut frontier: BTreeSet<usize> = std::iter::once(root).collect();
        for (&radix, &pv) in system.radices().iter().zip(system.place_values()) {
            let mut edges = BTreeSet::new();
            let mut next_frontier = BTreeSet::new();
            for &node in &frontier {
                for digit in 0..radix {
                    let to = (node + digit * pv) % np;
                    edges.insert((node, to));
                    next_frontier.insert(to);
                }
            }
            layers.push(edges);
            frontier = next_frontier;
        }
        DecisionTree { root, layers }
    }

    /// The root node of this tree.
    #[must_use]
    pub fn root(&self) -> usize {
        self.root
    }

    /// The edge sets per layer.
    #[must_use]
    pub fn layers(&self) -> &[BTreeSet<(usize, usize)>] {
        &self.layers
    }

    /// Leaves of the tree (nodes reachable in the last layer).
    #[must_use]
    pub fn leaves(&self) -> BTreeSet<usize> {
        self.layers
            .last()
            .map(|edges| edges.iter().map(|&(_, to)| to).collect())
            .unwrap_or_default()
    }

    /// Total number of distinct edges in the tree.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.layers.iter().map(BTreeSet::len).sum()
    }
}

/// Builds the mixed-radix topology of `system` as the union of the `N'`
/// overlapping decision trees (the Figure-1 construction). Identical output
/// to [`crate::MixedRadixTopology::new`], which uses eq. (1); the
/// equivalence is asserted by tests and by a cross-crate property test.
#[must_use]
pub fn overlay_topology(system: &MixedRadixSystem) -> Fnnt {
    let np = system.product();
    let mut per_layer: Vec<BTreeSet<(usize, usize)>> = vec![BTreeSet::new(); system.len()];
    for root in 0..np {
        let tree = DecisionTree::new(system, root);
        for (acc, edges) in per_layer.iter_mut().zip(tree.layers()) {
            acc.extend(edges.iter().copied());
        }
    }
    let submatrices: Vec<CsrMatrix<u64>> = per_layer
        .into_iter()
        .map(|edges| {
            let mut coo = CooMatrix::with_capacity(np, np, edges.len());
            for (from, to) in edges {
                coo.push(from, to, 1u64);
            }
            coo.to_csr()
        })
        .collect();
    Fnnt::new_unchecked(submatrices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MixedRadixTopology;

    #[test]
    fn binary_tree_shape_matches_fig1_left() {
        // Figure 1 (left): a binary decision tree on (2,2,2) rooted at 0
        // has 2 + 4 + 8 = 14 edges and reaches all 8 leaves.
        let sys = MixedRadixSystem::new([2, 2, 2]).unwrap();
        let tree = DecisionTree::new(&sys, 0);
        assert_eq!(tree.num_edges(), 2 + 4 + 8);
        assert_eq!(tree.leaves().len(), 8);
    }

    #[test]
    fn tree_layers_fan_out_by_radix() {
        let sys = MixedRadixSystem::new([3, 2]).unwrap();
        let tree = DecisionTree::new(&sys, 2);
        // Layer 0: root fans to 3 nodes (3 edges).
        assert_eq!(tree.layers()[0].len(), 3);
        // Layer 1: 3 frontier nodes × 2 digits = 6 edges.
        assert_eq!(tree.layers()[1].len(), 6);
        assert_eq!(tree.leaves().len(), 6);
    }

    #[test]
    fn every_leaf_reachable_once_tree_is_complete() {
        // A single tree on a full system reaches exactly N' leaves.
        let sys = MixedRadixSystem::new([2, 3, 2]).unwrap();
        for root in 0..sys.product() {
            let tree = DecisionTree::new(&sys, root);
            assert_eq!(tree.leaves().len(), sys.product(), "root {root}");
        }
    }

    #[test]
    fn overlay_equals_matrix_construction_fig1() {
        // The heart of Figure 1: eight offset trees overlay into the
        // mixed-radix topology.
        let sys = MixedRadixSystem::new([2, 2, 2]).unwrap();
        let via_trees = overlay_topology(&sys);
        let via_matrices = MixedRadixTopology::new(sys).into_fnnt();
        assert_eq!(via_trees, via_matrices);
    }

    #[test]
    fn overlay_equals_matrix_construction_various() {
        for radices in [vec![3, 4], vec![2, 2, 3], vec![5, 3], vec![2, 6]] {
            let sys = MixedRadixSystem::new(radices.clone()).unwrap();
            let via_trees = overlay_topology(&sys);
            let via_matrices = MixedRadixTopology::new(sys).into_fnnt();
            assert_eq!(via_trees, via_matrices, "mismatch for {radices:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn root_out_of_range_panics() {
        let sys = MixedRadixSystem::new([2, 2]).unwrap();
        let _ = DecisionTree::new(&sys, 4);
    }
}
