//! Topology diversity — quantifying the paper's claim that RadiX-Nets are
//! "much more diverse than X-Net topologies".
//!
//! Explicit (deterministic) X-Linear layers are built from Cayley graphs
//! and therefore require adjacent layers of *equal size* (paper §I). A
//! deterministic RadiX-Net over `N'` nodes, by contrast, can use any
//! ordered factorization of `N'` into radices ≥ 2 for each constituent
//! system, any divisor-product system last, and any width vector `D` — a
//! combinatorial explosion this module counts exactly.

use crate::numeral::MixedRadixSystem;

/// All ordered factorizations of `n` into factors ≥ 2 (compositions of the
/// multiset of prime factors). `n = 1` yields the single empty
/// factorization; `n ≥ 2` yields every ordered tuple with product `n`.
///
/// The count of these is the "ordered factorization" function H(n)
/// (OEIS A074206 counts them including the empty one for n=1).
#[must_use]
pub fn ordered_factorizations(n: usize) -> Vec<Vec<usize>> {
    fn rec(n: usize, acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if n == 1 {
            out.push(acc.clone());
            return;
        }
        // Collect all divisors of n that are >= 2 (including n itself).
        let mut divisors = Vec::new();
        let mut d = 2;
        while d * d <= n {
            if n.is_multiple_of(d) {
                divisors.push(d);
                if n / d != d {
                    divisors.push(n / d);
                }
            }
            d += 1;
        }
        divisors.push(n);
        divisors.sort_unstable();
        for f in divisors {
            acc.push(f);
            rec(n / f, acc, out);
            acc.pop();
        }
    }
    if n == 1 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    let mut acc = Vec::new();
    rec(n, &mut acc, &mut out);
    out
}

/// Number of ordered factorizations of `n` into factors ≥ 2 (no
/// enumeration). Matches `ordered_factorizations(n).len()`.
#[must_use]
pub fn count_ordered_factorizations(n: usize) -> u128 {
    // H(n) = Σ_{d | n, d > 1} H(n/d), H(1) = 1. Memoized over divisors.
    fn h(n: usize, memo: &mut std::collections::HashMap<usize, u128>) -> u128 {
        if n == 1 {
            return 1;
        }
        if let Some(&v) = memo.get(&n) {
            return v;
        }
        let mut total: u128 = 0;
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                if d > 1 {
                    total += h(n / d, memo);
                }
                let other = n / d;
                if other != d && other > 1 {
                    total += h(n / other, memo);
                }
            }
            d += 1;
        }
        memo.insert(n, total);
        total
    }
    let mut memo = std::collections::HashMap::new();
    h(n, &mut memo)
}

/// All valid mixed-radix systems with product exactly `n'` — the candidate
/// non-final systems of a RadiX-Net over `N' = n'`.
#[must_use]
pub fn systems_with_product(n_prime: usize) -> Vec<MixedRadixSystem> {
    ordered_factorizations(n_prime)
        .into_iter()
        .filter(|f| !f.is_empty())
        .map(|f| MixedRadixSystem::new(f).expect("factors ≥ 2 are valid radices"))
        .collect()
}

/// All valid *final* systems for `N' = n_prime`: systems whose product is a
/// nontrivial divisor (> 1) of `N'`.
#[must_use]
pub fn final_systems(n_prime: usize) -> Vec<MixedRadixSystem> {
    let mut out = Vec::new();
    for d in 2..=n_prime {
        if n_prime.is_multiple_of(d) {
            out.extend(systems_with_product(d));
        }
    }
    out
}

/// Number of distinct RadiX-Net specifications over `N' = n_prime` with
/// exactly `num_systems` constituent systems, counting system choices only
/// (widths `D` add a further infinite family; this is the conservative
/// count).
#[must_use]
pub fn count_radixnet_specs(n_prime: usize, num_systems: usize) -> u128 {
    if num_systems == 0 {
        return 0;
    }
    let full = count_ordered_factorizations(n_prime);
    let last: u128 = (2..=n_prime)
        .filter(|d| n_prime.is_multiple_of(*d))
        .map(count_ordered_factorizations)
        .sum();
    if num_systems == 1 {
        // A single system must still be buildable; Figure 6 takes N' from
        // it, so any factorization of n_prime counts.
        return full;
    }
    full.pow((num_systems - 1) as u32) * last
}

/// Number of deterministic explicit X-Net layer topologies available at the
/// same node budget: Cayley-graph X-Linear layers require equal adjacent
/// layer sizes, leaving the choice of a degree parameter `d` per layer,
/// `2 ≤ d ≤ n'` — i.e. `n' − 1` choices. (Prabhu et al. §4; the comparison
/// baseline for the diversity claim.)
#[must_use]
pub fn count_explicit_xnet_layers(n_prime: usize) -> u128 {
    (n_prime.saturating_sub(1)) as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_of_small_numbers() {
        assert_eq!(ordered_factorizations(1), vec![Vec::<usize>::new()]);
        assert_eq!(ordered_factorizations(2), vec![vec![2]]);
        assert_eq!(ordered_factorizations(4).len(), 2); // (4), (2,2)
        let of8 = ordered_factorizations(8);
        // (8), (2,4), (4,2), (2,2,2)
        assert_eq!(of8.len(), 4);
        assert!(of8.contains(&vec![2, 4]));
        assert!(of8.contains(&vec![4, 2]));
        assert!(of8.contains(&vec![2, 2, 2]));
        assert!(of8.contains(&vec![8]));
    }

    #[test]
    fn factorizations_products_are_correct() {
        for n in 2..=60 {
            for f in ordered_factorizations(n) {
                assert_eq!(f.iter().product::<usize>(), n);
                assert!(f.iter().all(|&x| x >= 2));
            }
        }
    }

    #[test]
    fn count_matches_enumeration() {
        for n in 1..=96 {
            assert_eq!(
                count_ordered_factorizations(n),
                ordered_factorizations(n).len() as u128,
                "mismatch at n = {n}"
            );
        }
    }

    #[test]
    fn known_ordered_factorization_counts() {
        // A074206: H(12) = 8, H(16) = 8, H(24) = 20, H(36) = 26.
        assert_eq!(count_ordered_factorizations(12), 8);
        assert_eq!(count_ordered_factorizations(16), 8);
        assert_eq!(count_ordered_factorizations(24), 20);
        assert_eq!(count_ordered_factorizations(36), 26);
    }

    #[test]
    fn systems_with_product_are_valid() {
        for sys in systems_with_product(24) {
            assert_eq!(sys.product(), 24);
        }
        assert_eq!(systems_with_product(24).len(), 20);
    }

    #[test]
    fn final_systems_cover_divisors() {
        let finals = final_systems(12);
        // Products must be divisors of 12 in {2,3,4,6,12}.
        for sys in &finals {
            assert_eq!(12 % sys.product(), 0);
            assert!(sys.product() >= 2);
        }
        // Count: H(2)+H(3)+H(4)+H(6)+H(12) = 1+1+2+3+8 = 15.
        assert_eq!(finals.len(), 15);
    }

    #[test]
    fn radixnet_diversity_dwarfs_xnet() {
        // The diversity claim, concretely: over N' = 24 with 3 systems,
        // RadiX-Net offers 20² · (sum over divisor factorizations) specs,
        // X-Net's explicit construction offers 23 layer degrees.
        let radix = count_radixnet_specs(24, 3);
        let xnet = count_explicit_xnet_layers(24);
        // 20²·39 = 15600 specs vs 23 degree choices: ~680× more diverse,
        // before even counting the infinite width family D.
        assert_eq!(radix, 15_600);
        assert!(radix > 500 * xnet, "radix {radix} vs xnet {xnet}");
    }

    #[test]
    fn spec_counts_compose() {
        // num_systems = 1 → just the factorizations of N'.
        assert_eq!(count_radixnet_specs(8, 1), 4);
        // num_systems = 2 → full × last where last sums over divisors
        // {2,4,8}: H(2)+H(4)+H(8) = 1+2+4 = 7 → 4·7 = 28.
        assert_eq!(count_radixnet_specs(8, 2), 28);
        assert_eq!(count_radixnet_specs(8, 0), 0);
    }

    #[test]
    fn all_counted_specs_actually_validate() {
        // Materialize every 2-system spec over N' = 8 and check the builder
        // accepts each one.
        use crate::builder::RadixNetSpec;
        let mut accepted = 0u32;
        for first in systems_with_product(8) {
            for last in final_systems(8) {
                let total = first.len() + last.len();
                let spec = RadixNetSpec::new(vec![first.clone(), last], vec![1; total + 1]);
                assert!(spec.is_ok());
                accepted += 1;
            }
        }
        assert_eq!(u128::from(accepted), count_radixnet_specs(8, 2));
    }
}
