//! Error type for RadiX-Net construction and verification.

use std::fmt;

/// Errors produced when validating or constructing mixed-radix systems,
/// FNNTs, and RadiX-Net topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RadixError {
    /// A mixed-radix system contained a radix smaller than 2.
    RadixTooSmall {
        /// Position of the offending radix within the system.
        position: usize,
        /// The offending radix value.
        radix: usize,
    },
    /// A mixed-radix system was empty.
    EmptySystem,
    /// The product of the radices overflowed `usize`.
    ProductOverflow,
    /// RadiX-Net constraint 1 violated: all systems except the last must
    /// share the same product `N'`.
    UnequalProducts {
        /// Index of the system whose product differs.
        system: usize,
        /// That system's product.
        found: usize,
        /// The product `N'` established by the first system.
        expected: usize,
    },
    /// RadiX-Net constraint 2 violated: the last system's product must
    /// divide `N'`.
    LastProductDoesNotDivide {
        /// The last system's product.
        last: usize,
        /// The common product `N'`.
        n_prime: usize,
    },
    /// The width vector `D` has the wrong length (must be total radices + 1).
    WrongWidthCount {
        /// Length the caller supplied.
        found: usize,
        /// Required length `M̄ + 1`.
        expected: usize,
    },
    /// A layer width `D_i` of zero was supplied.
    ZeroWidth {
        /// Index of the zero width.
        position: usize,
    },
    /// No mixed-radix systems were supplied.
    NoSystems,
    /// An FNNT structural invariant is violated.
    InvalidFnnt(String),
    /// A spec string failed to parse (see [`SpecParseError`]).
    SpecParse(SpecParseError),
    /// An underlying sparse-matrix operation failed.
    Sparse(radix_sparse::SparseError),
}

/// Syntax errors from [`crate::parse_spec`] — the structured taxonomy for
/// the `D:… N:… N:…` line format (semantic constraint violations keep
/// their dedicated [`RadixError`] variants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecParseError {
    /// More than one `D:` field in one spec string.
    DuplicateWidths,
    /// No `D:` field at all.
    MissingWidths,
    /// A field with an unrecognized prefix.
    UnknownField {
        /// The offending field, verbatim.
        field: String,
    },
    /// A comma-separated token that is not a `usize`.
    BadInteger {
        /// The offending token, verbatim.
        token: String,
    },
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecParseError::DuplicateWidths => write!(f, "duplicate D: field in spec string"),
            SpecParseError::MissingWidths => write!(f, "spec string missing D: field"),
            SpecParseError::UnknownField { field } => {
                write!(f, "unrecognized field {field:?} (expected D:… or N:…)")
            }
            SpecParseError::BadInteger { token } => {
                write!(f, "bad integer {token:?} (expected a usize)")
            }
        }
    }
}

impl std::error::Error for SpecParseError {}

impl From<SpecParseError> for RadixError {
    fn from(e: SpecParseError) -> Self {
        RadixError::SpecParse(e)
    }
}

impl fmt::Display for RadixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadixError::RadixTooSmall { position, radix } => {
                write!(f, "radix {radix} at position {position} is < 2")
            }
            RadixError::EmptySystem => write!(f, "mixed-radix system must be non-empty"),
            RadixError::ProductOverflow => write!(f, "radix product overflows usize"),
            RadixError::UnequalProducts {
                system,
                found,
                expected,
            } => write!(
                f,
                "system {system} has product {found}, expected N' = {expected} \
                 (all systems before the last must share one product)"
            ),
            RadixError::LastProductDoesNotDivide { last, n_prime } => write!(
                f,
                "last system's product {last} does not divide N' = {n_prime}"
            ),
            RadixError::WrongWidthCount { found, expected } => write!(
                f,
                "width vector D has {found} entries, need total-radices + 1 = {expected}"
            ),
            RadixError::ZeroWidth { position } => {
                write!(f, "layer width D[{position}] must be positive")
            }
            RadixError::NoSystems => write!(f, "at least one mixed-radix system is required"),
            RadixError::InvalidFnnt(msg) => write!(f, "invalid FNNT: {msg}"),
            RadixError::SpecParse(e) => write!(f, "spec parse error: {e}"),
            RadixError::Sparse(e) => write!(f, "sparse kernel error: {e}"),
        }
    }
}

impl std::error::Error for RadixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RadixError::Sparse(e) => Some(e),
            RadixError::SpecParse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<radix_sparse::SparseError> for RadixError {
    fn from(e: radix_sparse::SparseError) -> Self {
        RadixError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RadixError::UnequalProducts {
            system: 2,
            found: 12,
            expected: 24,
        };
        let s = e.to_string();
        assert!(s.contains("system 2"));
        assert!(s.contains("12"));
        assert!(s.contains("24"));
    }

    #[test]
    fn sparse_errors_convert_and_chain() {
        let inner = radix_sparse::SparseError::InvalidStructure("x".into());
        let e: RadixError = inner.clone().into();
        assert_eq!(e, RadixError::Sparse(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
