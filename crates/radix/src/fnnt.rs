//! Feedforward neural net topologies (FNNTs) — paper §II.
//!
//! An FNNT with `n+1` layers is an `(n+1)`-partite DAG where edges only run
//! between consecutive layers and every non-output node has outgoing edges.
//! It is uniquely determined by its ordered list of adjacency submatrices
//! `W = (W_1, …, W_n)` (each 0/1 with no zero column). [`Fnnt`] stores the
//! submatrices as `u64` CSR, provides the paper's density definition, and
//! implements the symmetry / path-connectedness verifiers used to check
//! Lemma 1, Lemma 2, and Theorem 1 computationally.

use radix_sparse::ops::chain_product;
use radix_sparse::{CooMatrix, CsrMatrix, PathCount, Scalar};

use crate::error::RadixError;

/// A feedforward neural net topology, stored as its ordered adjacency
/// submatrices.
///
/// Entry values are `u64` edge multiplicities; for a topology in the paper's
/// strict sense every value is 1 ([`Fnnt::is_binary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Fnnt {
    submatrices: Vec<CsrMatrix<u64>>,
}

/// Outcome of a symmetry check (paper §II, "Symmetry").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Symmetry {
    /// Every input–output pair is joined by exactly this many paths.
    Symmetric(PathCount),
    /// Some input–output pair has no path (not even path-connected).
    Disconnected {
        /// An example input node (index within the input layer).
        input: usize,
        /// An example unreachable output node (index within the output layer).
        output: usize,
    },
    /// Path-connected, but path counts differ across pairs.
    Asymmetric {
        /// The minimum path count observed.
        min: PathCount,
        /// The maximum path count observed.
        max: PathCount,
    },
}

impl Symmetry {
    /// Whether the topology satisfied the symmetry property.
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        matches!(self, Symmetry::Symmetric(_))
    }
}

impl Fnnt {
    /// Builds an FNNT from adjacency submatrices, validating the FNNT
    /// conditions:
    ///
    /// * at least one submatrix,
    /// * consecutive shapes chain (`W_i.ncols == W_{i+1}.nrows`),
    /// * no submatrix has a zero row (the out-degree condition) or a zero
    ///   column (the paper's adjacency-submatrix condition).
    ///
    /// # Errors
    /// Returns [`RadixError::InvalidFnnt`] describing the violation.
    pub fn try_new(submatrices: Vec<CsrMatrix<u64>>) -> Result<Self, RadixError> {
        if submatrices.is_empty() {
            return Err(RadixError::InvalidFnnt(
                "an FNNT needs at least one edge layer".into(),
            ));
        }
        for (i, w) in submatrices.iter().enumerate() {
            if w.nrows() == 0 || w.ncols() == 0 {
                return Err(RadixError::InvalidFnnt(format!(
                    "layer {i} has an empty dimension: {:?}",
                    w.shape()
                )));
            }
            if w.has_zero_row() {
                return Err(RadixError::InvalidFnnt(format!(
                    "layer {i} has a node with out-degree 0"
                )));
            }
            if w.has_zero_column() {
                return Err(RadixError::InvalidFnnt(format!(
                    "layer {i} has a zero column"
                )));
            }
        }
        for (i, pair) in submatrices.windows(2).enumerate() {
            if pair[0].ncols() != pair[1].nrows() {
                return Err(RadixError::InvalidFnnt(format!(
                    "layer {i} has {} output nodes but layer {} has {} input nodes",
                    pair[0].ncols(),
                    i + 1,
                    pair[1].nrows()
                )));
            }
        }
        Ok(Fnnt { submatrices })
    }

    /// Builds without validation (for internal constructors whose output is
    /// valid by construction).
    #[must_use]
    pub fn new_unchecked(submatrices: Vec<CsrMatrix<u64>>) -> Self {
        Fnnt { submatrices }
    }

    /// The fully-connected FNNT on the given layer sizes (the paper's
    /// "unique fully-connected FNNT" of Figure 3 / the density definition).
    ///
    /// # Panics
    /// Panics if fewer than two layer sizes, or any size is zero.
    #[must_use]
    pub fn dense(layer_sizes: &[usize]) -> Self {
        assert!(layer_sizes.len() >= 2, "need at least input and output");
        assert!(
            layer_sizes.iter().all(|&s| s > 0),
            "layer sizes must be positive"
        );
        let submatrices = layer_sizes
            .windows(2)
            .map(|w| radix_sparse::kron_ones_left(w[0], w[1], &CsrMatrix::<u64>::identity(1)))
            .collect();
        Fnnt { submatrices }
    }

    /// The ordered adjacency submatrices `(W_1, …, W_n)`.
    #[must_use]
    pub fn submatrices(&self) -> &[CsrMatrix<u64>] {
        &self.submatrices
    }

    /// Adjacency submatrix of edge-layer `i`.
    ///
    /// # Panics
    /// Panics if `i >= num_edge_layers`.
    #[must_use]
    pub fn layer(&self, i: usize) -> &CsrMatrix<u64> {
        &self.submatrices[i]
    }

    /// Number of *edge* layers `n` (one fewer than node layers).
    #[must_use]
    pub fn num_edge_layers(&self) -> usize {
        self.submatrices.len()
    }

    /// Node-layer sizes `(|U_0|, …, |U_n|)`.
    #[must_use]
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.submatrices.len() + 1);
        sizes.push(self.submatrices[0].nrows());
        for w in &self.submatrices {
            sizes.push(w.ncols());
        }
        sizes
    }

    /// Total number of nodes `Σ |U_i|`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.layer_sizes().iter().sum()
    }

    /// Total number of edges (counting multiplicities).
    #[must_use]
    pub fn num_edges(&self) -> u64 {
        self.submatrices
            .iter()
            .map(|w| w.data().iter().sum::<u64>())
            .sum()
    }

    /// Number of distinct stored edges (ignoring multiplicities).
    #[must_use]
    pub fn num_distinct_edges(&self) -> usize {
        self.submatrices.iter().map(CsrMatrix::nnz).sum()
    }

    /// Whether every edge has multiplicity exactly 1 — required for a
    /// topology in the paper's strict sense.
    #[must_use]
    pub fn is_binary(&self) -> bool {
        self.submatrices.iter().all(CsrMatrix::is_binary)
    }

    /// The paper's density: edges of `self` over edges of the dense FNNT on
    /// the same layer sizes, `Σ nnz(W_i) / Σ |U_{i−1}||U_i|`.
    #[must_use]
    pub fn density(&self) -> f64 {
        let dense_edges: f64 = self
            .layer_sizes()
            .windows(2)
            .map(|w| w[0] as f64 * w[1] as f64)
            .sum();
        self.num_distinct_edges() as f64 / dense_edges
    }

    /// The minimum possible density on these layer sizes
    /// (`Σ|U_{i−1}| / Σ|U_{i−1}||U_i|`, paper §II).
    #[must_use]
    pub fn min_density(&self) -> f64 {
        let sizes = self.layer_sizes();
        let num: f64 = sizes[..sizes.len() - 1].iter().map(|&s| s as f64).sum();
        let den: f64 = sizes.windows(2).map(|w| w[0] as f64 * w[1] as f64).sum();
        num / den
    }

    /// The input→output path-count matrix: entry `(u, v)` is the number of
    /// paths from input node `u` to output node `v`, computed as the chained
    /// product `W_1 ⋯ W_n` over the saturating [`PathCount`] semiring.
    #[must_use]
    pub fn path_count_matrix(&self) -> CsrMatrix<PathCount> {
        let chain: Vec<CsrMatrix<PathCount>> = self
            .submatrices
            .iter()
            .map(|w| w.map(|v| PathCount(u128::from(v))))
            .collect();
        chain_product(&chain).expect("FNNT submatrices are conformable by construction")
    }

    /// Checks the symmetry property (paper §II): every input–output pair
    /// joined by the same positive number of paths.
    #[must_use]
    pub fn check_symmetry(&self) -> Symmetry {
        let paths = self.path_count_matrix();
        let (nin, nout) = paths.shape();
        // A missing entry is a zero path count → disconnected.
        if paths.nnz() != nin * nout {
            for u in 0..nin {
                let (cols, _) = paths.row(u);
                if cols.len() != nout {
                    // Find the first missing column.
                    let mut expect = 0usize;
                    for &c in cols {
                        if c != expect {
                            break;
                        }
                        expect += 1;
                    }
                    return Symmetry::Disconnected {
                        input: u,
                        output: expect,
                    };
                }
            }
            unreachable!("nnz < nin*nout implies some row is short");
        }
        let mut min = PathCount::SATURATED;
        let mut max = PathCount(0);
        for &v in paths.data() {
            min = min.min(v);
            max = max.max(v);
        }
        if min == max {
            Symmetry::Symmetric(min)
        } else {
            Symmetry::Asymmetric { min, max }
        }
    }

    /// Whether every output depends on every input (path-connectedness,
    /// paper §II). Implied by symmetry but cheaper to state on its own.
    #[must_use]
    pub fn is_path_connected(&self) -> bool {
        let paths = self.path_count_matrix();
        paths.nnz() == paths.nrows() * paths.ncols()
    }

    /// Assembles the full `M × M` adjacency matrix `A` of the FNNT
    /// (`M = Σ|U_i|`), with nodes numbered layer by layer — the block
    /// strictly-superdiagonal form of eq. (11). Intended for small nets and
    /// cross-checking the `A^n` symmetry criterion literally.
    #[must_use]
    pub fn full_adjacency(&self) -> CsrMatrix<u64> {
        let sizes = self.layer_sizes();
        let total: usize = sizes.iter().sum();
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        let mut coo = CooMatrix::with_capacity(total, total, self.num_distinct_edges());
        for (i, w) in self.submatrices.iter().enumerate() {
            for (r, c, v) in w.iter() {
                coo.push(offsets[i] + r, offsets[i + 1] + c, v);
            }
        }
        coo.to_csr()
    }

    /// Concatenates two FNNTs output-to-input (the Figure-2 operation):
    /// `self`'s output layer is identified label-wise with `other`'s input
    /// layer.
    ///
    /// # Errors
    /// Returns [`RadixError::InvalidFnnt`] if the output layer size of
    /// `self` differs from the input layer size of `other`.
    pub fn concat(&self, other: &Fnnt) -> Result<Fnnt, RadixError> {
        let out = self.layer_sizes().last().copied().unwrap_or(0);
        let inn = other.layer_sizes()[0];
        if out != inn {
            return Err(RadixError::InvalidFnnt(format!(
                "cannot identify output layer of size {out} with input layer of size {inn}"
            )));
        }
        let mut subs = self.submatrices.clone();
        subs.extend(other.submatrices.iter().cloned());
        Ok(Fnnt { submatrices: subs })
    }

    /// The reversed FNNT: every layer transposed, layer order flipped —
    /// information flows output→input. Symmetry is preserved under
    /// reversal (the path-count matrix transposes).
    #[must_use]
    pub fn reverse(&self) -> Fnnt {
        let submatrices = self
            .submatrices
            .iter()
            .rev()
            .map(CsrMatrix::transpose)
            .collect();
        Fnnt { submatrices }
    }

    /// Converts the structure into weight matrices of another scalar type,
    /// assigning `T::ONE` to every edge (multiplicities collapse to
    /// pattern). Used by the NN substrate to initialize sparse layers.
    #[must_use]
    pub fn weight_patterns<T: Scalar>(&self) -> Vec<CsrMatrix<T>> {
        self.submatrices.iter().map(CsrMatrix::pattern).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radix_sparse::ops::matpow;
    use radix_sparse::{CyclicShift, DenseMatrix};

    /// The exact FNNT of the paper's Figure 4: layers of sizes 3, 3, 2, 3
    /// with W (layer 0→1) as printed.
    fn fig4_fnnt() -> Fnnt {
        // W from Figure 4: rows u1..u3, cols u4..u6.
        let w1 = CsrMatrix::from_dense(&DenseMatrix::from_rows(&[
            &[1u64, 1, 1],
            &[1, 0, 1],
            &[1, 1, 0],
        ]));
        // Figure 4's A shows 1_{3,2} from U1 to U2 and 1_{2,3} from U2 to U3.
        let w2 = CsrMatrix::from_dense(&DenseMatrix::<u64>::ones(3, 2));
        let w3 = CsrMatrix::from_dense(&DenseMatrix::<u64>::ones(2, 3));
        Fnnt::try_new(vec![w1, w2, w3]).unwrap()
    }

    #[test]
    fn fig4_structure() {
        let g = fig4_fnnt();
        assert_eq!(g.layer_sizes(), vec![3, 3, 2, 3]);
        assert_eq!(g.num_nodes(), 11);
        assert_eq!(g.num_edge_layers(), 3);
        assert_eq!(g.num_distinct_edges(), 7 + 6 + 6);
        assert!(g.is_binary());
    }

    #[test]
    fn fig4_full_adjacency_matches_figure() {
        // The A of Figure 4: W in the (0,1) block, ones in (1,2) and (2,3).
        let g = fig4_fnnt();
        let a = g.full_adjacency();
        assert_eq!(a.shape(), (11, 11));
        // Spot-check the printed A1 block: row u2 (index 1) connects to
        // u4 and u6 (indices 3 and 5) but not u5 (index 4).
        assert_eq!(a.get(1, 3), 1);
        assert_eq!(a.get(1, 4), 0);
        assert_eq!(a.get(1, 5), 1);
        // Nothing below the superdiagonal blocks.
        assert_eq!(a.get(3, 0), 0);
        assert_eq!(a.get(10, 10), 0);
    }

    #[test]
    fn fig4_is_path_connected_but_not_symmetric() {
        let g = fig4_fnnt();
        assert!(g.is_path_connected());
        // Input u1 has out-degree 3, u2 and u3 have 2 → path counts differ.
        match g.check_symmetry() {
            Symmetry::Asymmetric { min, max } => {
                assert!(min < max);
            }
            other => panic!("expected asymmetric, got {other:?}"),
        }
    }

    #[test]
    fn dense_fnnt_density_is_one() {
        let g = Fnnt::dense(&[3, 5, 2]);
        assert!((g.density() - 1.0).abs() < 1e-12);
        assert_eq!(g.num_distinct_edges(), 15 + 10);
        assert!(g.is_binary());
    }

    #[test]
    fn dense_fnnt_is_symmetric() {
        let g = Fnnt::dense(&[3, 4, 2]);
        // Dense: every u→v pair has exactly |U_1| = 4 paths.
        assert_eq!(g.check_symmetry(), Symmetry::Symmetric(PathCount(4)));
    }

    #[test]
    fn mixed_radix_chain_is_symmetric_with_one_path() {
        // Lemma 1 on N = (2,2,2).
        let subs: Vec<CsrMatrix<u64>> = vec![
            CyclicShift::radix_submatrix(8, 2, 1),
            CyclicShift::radix_submatrix(8, 2, 2),
            CyclicShift::radix_submatrix(8, 2, 4),
        ];
        let g = Fnnt::try_new(subs).unwrap();
        assert_eq!(g.check_symmetry(), Symmetry::Symmetric(PathCount(1)));
    }

    #[test]
    fn disconnected_detected() {
        // Two parallel identity layers: node u only reaches output u.
        let g = Fnnt::try_new(vec![CsrMatrix::identity(3), CsrMatrix::identity(3)]).unwrap();
        match g.check_symmetry() {
            Symmetry::Disconnected { input, output } => {
                assert_eq!(input, 0);
                assert_eq!(output, 1);
            }
            other => panic!("expected disconnected, got {other:?}"),
        }
        assert!(!g.is_path_connected());
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(Fnnt::try_new(vec![]).is_err());
        let a = CsrMatrix::<u64>::identity(3);
        let b = CsrMatrix::<u64>::identity(4);
        assert!(Fnnt::try_new(vec![a, b]).is_err());
    }

    #[test]
    fn rejects_zero_out_degree() {
        // A 2x2 with an empty first row violates the out-degree condition.
        let w = CsrMatrix::try_from_parts(2, 2, vec![0, 0, 1], vec![0], vec![1u64]).unwrap();
        let e = Fnnt::try_new(vec![w]);
        assert!(matches!(e, Err(RadixError::InvalidFnnt(msg)) if msg.contains("out-degree")));
    }

    #[test]
    fn rejects_zero_column() {
        let w = CsrMatrix::try_from_parts(2, 2, vec![0, 1, 2], vec![0, 0], vec![1u64, 1]).unwrap();
        let e = Fnnt::try_new(vec![w]);
        assert!(matches!(e, Err(RadixError::InvalidFnnt(msg)) if msg.contains("zero column")));
    }

    #[test]
    fn symmetry_matches_full_adjacency_power() {
        // The §II criterion literally: A^n's surviving block is m·1.
        let subs: Vec<CsrMatrix<u64>> = vec![
            CyclicShift::radix_submatrix(4, 2, 1),
            CyclicShift::radix_submatrix(4, 2, 2),
        ];
        let g = Fnnt::try_new(subs).unwrap();
        let a = g.full_adjacency();
        let an = matpow(&a, g.num_edge_layers()).unwrap();
        // Block (input rows 0..4, output cols 8..12) must be all-ones;
        // everything else zero.
        for i in 0..12 {
            for j in 0..12 {
                let expect = u64::from(i < 4 && (8..12).contains(&j));
                assert_eq!(an.get(i, j), expect, "at ({i},{j})");
            }
        }
        assert_eq!(g.check_symmetry(), Symmetry::Symmetric(PathCount(1)));
    }

    #[test]
    fn density_bounds_hold() {
        let g = fig4_fnnt();
        assert!(g.density() <= 1.0);
        assert!(g.density() >= g.min_density());
    }

    #[test]
    fn weight_patterns_preserve_structure() {
        let g = fig4_fnnt();
        let ws: Vec<CsrMatrix<f32>> = g.weight_patterns();
        assert_eq!(ws.len(), 3);
        for (w, orig) in ws.iter().zip(g.submatrices()) {
            assert!(w.same_pattern(orig));
            assert!(w.is_binary());
        }
    }

    #[test]
    fn concat_identifies_layers() {
        // Figure 2: concatenating mixed-radix topologies label-wise.
        let a = Fnnt::try_new(vec![CyclicShift::radix_submatrix(6, 2, 1)]).unwrap();
        let b = Fnnt::try_new(vec![CyclicShift::radix_submatrix(6, 3, 2)]).unwrap();
        let ab = a.concat(&b).unwrap();
        assert_eq!(ab.layer_sizes(), vec![6, 6, 6]);
        assert_eq!(ab.num_edge_layers(), 2);
        assert_eq!(ab.layer(0), a.layer(0));
        assert_eq!(ab.layer(1), b.layer(0));
    }

    #[test]
    fn concat_size_mismatch_rejected() {
        let a = Fnnt::dense(&[2, 3]);
        let b = Fnnt::dense(&[4, 2]);
        assert!(matches!(a.concat(&b), Err(RadixError::InvalidFnnt(_))));
    }

    #[test]
    fn reverse_preserves_symmetry_and_transposes_paths() {
        let subs: Vec<CsrMatrix<u64>> = vec![
            CyclicShift::radix_submatrix(6, 2, 1),
            CyclicShift::radix_submatrix(6, 3, 2),
        ];
        let g = Fnnt::try_new(subs).unwrap();
        let r = g.reverse();
        assert_eq!(
            r.layer_sizes(),
            g.layer_sizes().into_iter().rev().collect::<Vec<_>>()
        );
        assert_eq!(g.check_symmetry(), r.check_symmetry());
        assert_eq!(r.path_count_matrix(), g.path_count_matrix().transpose());
    }

    #[test]
    fn reverse_is_involution() {
        let g = fig4_fnnt();
        assert_eq!(g.reverse().reverse(), g);
    }

    #[test]
    fn num_edges_counts_multiplicity() {
        // A layer with a doubled edge: multiplicity 2 counted by num_edges,
        // once by num_distinct_edges.
        let w = CsrMatrix::try_from_parts(1, 1, vec![0, 1], vec![0], vec![2u64]).unwrap();
        let g = Fnnt::try_new(vec![w]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_distinct_edges(), 1);
        assert!(!g.is_binary());
    }
}
