//! # radix-net
//!
//! The core library of the RadiX-Net reproduction: deterministic generation
//! of sparse deep-neural-network topologies from mixed-radix numeral
//! systems, after
//!
//! > R. A. Robinett and J. Kepner, *RadiX-Net: Structured Sparse Matrices
//! > for Deep Neural Networks*, IEEE IPDPS Workshops, 2019
//! > (arXiv:1905.00416).
//!
//! ## The construction in one paragraph
//!
//! A mixed-radix numeral system `N = (N_1, …, N_L)` induces a layered graph
//! on `L+1` layers of `N' = ∏ N_i` nodes in which node `j` of layer `i−1`
//! connects to nodes `j + n·ν_i (mod N')` for each digit `n < N_i`
//! ([`MixedRadixTopology`], eq. (1)). Concatenating several such topologies
//! (all with product `N'`, the last allowed any divisor product) and taking
//! the Kronecker product of each adjacency submatrix with the all-ones
//! submatrix of an arbitrary dense DNN of widths `D` yields a RadiX-Net
//! ([`RadixNetSpec::build`], eq. (3), Figure 6). The result is *symmetric* —
//! every input/output pair is joined by the same number of paths
//! ([`Fnnt::check_symmetry`], Theorem 1) — and its density is governed by
//! the closed forms of eqs. (4)–(6) ([`density`]).
//!
//! ## Quick example
//!
//! ```
//! use radix_net::{MixedRadixSystem, RadixNetSpec, Symmetry};
//!
//! // The Figure-1 system (2,2,2) with widths (1,2,2,1).
//! let sys = MixedRadixSystem::new([2, 2, 2])?;
//! let spec = RadixNetSpec::new(vec![sys], vec![1, 2, 2, 1])?;
//! let net = spec.build();
//!
//! assert_eq!(net.fnnt().layer_sizes(), vec![8, 16, 16, 8]);
//! // Theorem 1: symmetric with (N')^0 · D_1·D_2 = 4 paths per pair.
//! match net.fnnt().check_symmetry() {
//!     Symmetry::Symmetric(m) => assert_eq!(m.exact(), Some(4)),
//!     other => panic!("not symmetric: {other:?}"),
//! }
//! # Ok::<(), radix_net::RadixError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod builder;
pub mod decision_tree;
pub mod density;
pub mod diversity;
pub mod error;
pub mod fnnt;
pub mod numeral;
pub mod spec_io;
pub mod topology;
pub mod verify;

pub use builder::{RadixNet, RadixNetSpec};
pub use decision_tree::{overlay_topology, DecisionTree};
pub use error::{RadixError, SpecParseError};
pub use fnnt::{Fnnt, Symmetry};
pub use numeral::MixedRadixSystem;
pub use spec_io::{parse_spec, spec_to_string};
pub use topology::MixedRadixTopology;
pub use verify::{
    paper_path_count, predicted_path_count, verify_fnnt, verify_spec, VerificationReport,
};
