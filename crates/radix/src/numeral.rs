//! Mixed-radix numeral systems (paper §II, "Mathematical Preliminaries").
//!
//! A mixed-radix system `N = (N_1, …, N_L)` with every `N_i ≥ 2` bijectively
//! represents the integers `{0, …, N'−1}`, `N' = ∏ N_i`, via
//!
//! ```text
//! (n_1, …, n_L)  ⟷  Σ_i n_i · ∏_{j<i} N_j
//! ```
//!
//! The partial products `ν_i = ∏_{j<i} N_j` are the *place values*; they are
//! exactly the shift offsets of the adjacency submatrices in eq. (1).

use crate::error::RadixError;

/// A validated mixed-radix numeral system: a non-empty ordered list of
/// radices, each at least 2, whose product fits in `usize`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MixedRadixSystem {
    radices: Vec<usize>,
    place_values: Vec<usize>,
    product: usize,
}

impl MixedRadixSystem {
    /// Validates and constructs a mixed-radix system.
    ///
    /// # Errors
    /// * [`RadixError::EmptySystem`] for an empty radix list,
    /// * [`RadixError::RadixTooSmall`] if any radix is < 2,
    /// * [`RadixError::ProductOverflow`] if `∏ N_i` overflows `usize`.
    pub fn new(radices: impl Into<Vec<usize>>) -> Result<Self, RadixError> {
        let radices = radices.into();
        if radices.is_empty() {
            return Err(RadixError::EmptySystem);
        }
        for (position, &radix) in radices.iter().enumerate() {
            if radix < 2 {
                return Err(RadixError::RadixTooSmall { position, radix });
            }
        }
        let mut place_values = Vec::with_capacity(radices.len());
        let mut acc: usize = 1;
        for &r in &radices {
            place_values.push(acc);
            acc = acc.checked_mul(r).ok_or(RadixError::ProductOverflow)?;
        }
        Ok(MixedRadixSystem {
            radices,
            place_values,
            product: acc,
        })
    }

    /// The uniform system `(r, r, …, r)` with `depth` copies of radix `r` —
    /// the `µ^d = N'` configuration swept in Figure 7.
    ///
    /// # Errors
    /// Same as [`MixedRadixSystem::new`].
    pub fn uniform(radix: usize, depth: usize) -> Result<Self, RadixError> {
        MixedRadixSystem::new(vec![radix; depth])
    }

    /// The ordered radices `(N_1, …, N_L)`.
    #[must_use]
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// Number of radices `L` (the number of edge-layers the induced
    /// mixed-radix topology has).
    #[must_use]
    pub fn len(&self) -> usize {
        self.radices.len()
    }

    /// Always false (systems are validated non-empty); present to satisfy
    /// the `len`/`is_empty` API convention.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The product `N' = ∏ N_i`.
    #[must_use]
    pub fn product(&self) -> usize {
        self.product
    }

    /// Place values `ν_i = ∏_{j<i} N_j`, one per radix (so `ν_1 = 1`).
    #[must_use]
    pub fn place_values(&self) -> &[usize] {
        &self.place_values
    }

    /// Mean radix — the `µ` of eqs. (5)/(6).
    #[must_use]
    pub fn mean_radix(&self) -> f64 {
        self.radices.iter().sum::<usize>() as f64 / self.radices.len() as f64
    }

    /// Population variance of the radices — the "sufficiently small
    /// variance" premise of the asymptotic density formulas.
    #[must_use]
    pub fn radix_variance(&self) -> f64 {
        let mu = self.mean_radix();
        self.radices
            .iter()
            .map(|&r| {
                let d = r as f64 - mu;
                d * d
            })
            .sum::<f64>()
            / self.radices.len() as f64
    }

    /// Decodes `value` into its digit tuple `(n_1, …, n_L)` (least
    /// significant first, matching the paper's ordering).
    ///
    /// # Panics
    /// Panics if `value >= N'`; the bijection is only defined on
    /// `{0, …, N'−1}`.
    #[must_use]
    pub fn value_to_digits(&self, value: usize) -> Vec<usize> {
        assert!(
            value < self.product,
            "value {value} outside {{0, …, {}}}",
            self.product - 1
        );
        let mut digits = Vec::with_capacity(self.radices.len());
        let mut rest = value;
        for &r in &self.radices {
            digits.push(rest % r);
            rest /= r;
        }
        digits
    }

    /// Encodes a digit tuple back to its integer value.
    ///
    /// # Panics
    /// Panics if the tuple length differs from `L` or any digit exceeds its
    /// radix.
    #[must_use]
    pub fn digits_to_value(&self, digits: &[usize]) -> usize {
        assert_eq!(digits.len(), self.radices.len(), "digit count mismatch");
        let mut value = 0usize;
        for ((&d, &r), &pv) in digits.iter().zip(&self.radices).zip(&self.place_values) {
            assert!(d < r, "digit {d} out of range for radix {r}");
            value += d * pv;
        }
        value
    }
}

impl std::fmt::Display for MixedRadixSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, r) in self.radices.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_system_of_fig1() {
        // N = (2,2,2): the Figure-1 example. N' = 8, place values 1, 2, 4.
        let n = MixedRadixSystem::new([2, 2, 2]).unwrap();
        assert_eq!(n.product(), 8);
        assert_eq!(n.place_values(), &[1, 2, 4]);
        assert_eq!(n.len(), 3);
        assert!((n.mean_radix() - 2.0).abs() < 1e-12);
        assert_eq!(n.radix_variance(), 0.0);
    }

    #[test]
    fn fig2_system() {
        // N = (3,3,4) from Figure 2: N' = 36, place values 1, 3, 9.
        let n = MixedRadixSystem::new([3, 3, 4]).unwrap();
        assert_eq!(n.product(), 36);
        assert_eq!(n.place_values(), &[1, 3, 9]);
    }

    #[test]
    fn bijection_is_total_and_injective() {
        let n = MixedRadixSystem::new([2, 3, 4]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for v in 0..n.product() {
            let digits = n.value_to_digits(v);
            assert_eq!(n.digits_to_value(&digits), v);
            assert!(seen.insert(digits));
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn digits_are_least_significant_first() {
        let n = MixedRadixSystem::new([2, 3]).unwrap();
        // 5 = 1·1 + 2·2 → digits (1, 2).
        assert_eq!(n.value_to_digits(5), vec![1, 2]);
    }

    #[test]
    fn rejects_radix_one() {
        let e = MixedRadixSystem::new([2, 1, 3]);
        assert_eq!(
            e,
            Err(RadixError::RadixTooSmall {
                position: 1,
                radix: 1
            })
        );
    }

    #[test]
    fn rejects_radix_zero_and_empty() {
        assert!(matches!(
            MixedRadixSystem::new([0]),
            Err(RadixError::RadixTooSmall { .. })
        ));
        assert_eq!(
            MixedRadixSystem::new(Vec::<usize>::new()),
            Err(RadixError::EmptySystem)
        );
    }

    #[test]
    fn rejects_overflowing_product() {
        let e = MixedRadixSystem::new(vec![usize::MAX / 2, 3]);
        assert_eq!(e, Err(RadixError::ProductOverflow));
    }

    #[test]
    fn uniform_constructor() {
        let n = MixedRadixSystem::uniform(3, 4).unwrap();
        assert_eq!(n.radices(), &[3, 3, 3, 3]);
        assert_eq!(n.product(), 81);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn decode_out_of_range_panics() {
        let n = MixedRadixSystem::new([2, 2]).unwrap();
        let _ = n.value_to_digits(4);
    }

    #[test]
    #[should_panic(expected = "digit 2 out of range")]
    fn encode_bad_digit_panics() {
        let n = MixedRadixSystem::new([2, 2]).unwrap();
        let _ = n.digits_to_value(&[2, 0]);
    }

    #[test]
    fn mean_and_variance_nonuniform() {
        let n = MixedRadixSystem::new([2, 4]).unwrap();
        assert!((n.mean_radix() - 3.0).abs() < 1e-12);
        assert!((n.radix_variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let n = MixedRadixSystem::new([3, 3, 4]).unwrap();
        assert_eq!(n.to_string(), "(3,3,4)");
    }
}
