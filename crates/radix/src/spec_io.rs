//! Text serialization of RadiX-Net specifications.
//!
//! Format (one spec per string, whitespace-separated fields):
//!
//! ```text
//! D:1,2,2,1 N:2,2,2
//! D:1,1,1,1,1 N:3,4 N:12
//! ```
//!
//! `D:` gives the width vector once; each `N:` gives one mixed-radix
//! system in order. Round-trips exactly through
//! [`spec_to_string`]/[`parse_spec`].

use crate::builder::RadixNetSpec;
use crate::error::{RadixError, SpecParseError};
use crate::numeral::MixedRadixSystem;

/// Serializes a spec to the `D:… N:… N:…` line format.
#[must_use]
pub fn spec_to_string(spec: &RadixNetSpec) -> String {
    let mut out = String::from("D:");
    push_csv(&mut out, spec.widths());
    for sys in spec.systems() {
        out.push_str(" N:");
        push_csv(&mut out, sys.radices());
    }
    out
}

fn push_csv(out: &mut String, values: &[usize]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
}

/// Parses the `D:… N:… N:…` line format back into a validated spec.
///
/// # Errors
/// Returns [`RadixError::SpecParse`] (carrying a [`SpecParseError`]
/// describing exactly which field or token is malformed) for bad syntax,
/// and the usual constraint errors for semantically invalid specs.
pub fn parse_spec(s: &str) -> Result<RadixNetSpec, RadixError> {
    let mut widths: Option<Vec<usize>> = None;
    let mut systems: Vec<MixedRadixSystem> = Vec::new();
    for field in s.split_whitespace() {
        if let Some(rest) = field.strip_prefix("D:") {
            if widths.is_some() {
                return Err(SpecParseError::DuplicateWidths.into());
            }
            widths = Some(parse_csv(rest)?);
        } else if let Some(rest) = field.strip_prefix("N:") {
            systems.push(MixedRadixSystem::new(parse_csv(rest)?)?);
        } else {
            return Err(SpecParseError::UnknownField {
                field: field.to_string(),
            }
            .into());
        }
    }
    let widths = widths.ok_or(SpecParseError::MissingWidths)?;
    RadixNetSpec::new(systems, widths)
}

fn parse_csv(s: &str) -> Result<Vec<usize>, SpecParseError> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .map_err(|_| SpecParseError::BadInteger {
                    token: t.to_string(),
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RadixNetSpec {
        RadixNetSpec::new(
            vec![
                MixedRadixSystem::new([2, 2, 3]).unwrap(),
                MixedRadixSystem::new([6]).unwrap(),
            ],
            vec![1, 2, 2, 1, 3],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let spec = sample();
        let s = spec_to_string(&spec);
        assert_eq!(s, "D:1,2,2,1,3 N:2,2,3 N:6");
        assert_eq!(parse_spec(&s).unwrap(), spec);
    }

    #[test]
    fn whitespace_tolerant() {
        let spec = parse_spec("  D:1,1,1   N:2,2  ").unwrap();
        assert_eq!(spec.n_prime(), 4);
    }

    #[test]
    fn missing_widths_rejected() {
        assert_eq!(
            parse_spec("N:2,2").unwrap_err(),
            RadixError::SpecParse(SpecParseError::MissingWidths)
        );
    }

    #[test]
    fn duplicate_widths_rejected() {
        assert_eq!(
            parse_spec("D:1,1,1 D:1,1,1 N:2,2").unwrap_err(),
            RadixError::SpecParse(SpecParseError::DuplicateWidths)
        );
    }

    #[test]
    fn unknown_field_rejected() {
        assert_eq!(
            parse_spec("D:1,1,1 X:2,2").unwrap_err(),
            RadixError::SpecParse(SpecParseError::UnknownField {
                field: "X:2,2".into()
            })
        );
    }

    #[test]
    fn bad_integer_rejected() {
        assert_eq!(
            parse_spec("D:1,x,1 N:2,2").unwrap_err(),
            RadixError::SpecParse(SpecParseError::BadInteger { token: "x".into() })
        );
    }

    #[test]
    fn parse_errors_chain_to_the_spec_taxonomy() {
        let e = parse_spec("D:1,?,1 N:2,2").unwrap_err();
        let source = std::error::Error::source(&e).expect("SpecParse chains its source");
        assert!(source.to_string().contains("bad integer"));
    }

    #[test]
    fn semantic_constraints_still_enforced() {
        // Parses syntactically but violates the equal-products constraint.
        let e = parse_spec("D:1,1,1,1,1 N:2,2 N:3,2 N:2");
        assert!(matches!(e, Err(RadixError::UnequalProducts { .. })));
    }

    #[test]
    fn no_systems_rejected() {
        assert!(matches!(parse_spec("D:1,1"), Err(RadixError::NoSystems)));
    }
}
