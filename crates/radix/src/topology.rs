//! Mixed-radix topologies — paper §III.A, eq. (1).
//!
//! The mixed-radix topology induced by `N = (N_1, …, N_L)` has `L+1` layers
//! of `N' = ∏ N_i` nodes; layer `i` places an edge from node `j` to node
//! `j + n·ν_i (mod N')` for every digit `n ∈ {0, …, N_i−1}`, i.e.
//! `W_i = Σ_{n} P^(n·ν_i)` with `P` the unit cyclic shift (eq. (2); see the
//! orientation note on [`radix_sparse::CyclicShift`]).

use radix_sparse::{CsrMatrix, CyclicShift};

use crate::fnnt::Fnnt;
use crate::numeral::MixedRadixSystem;

/// The mixed-radix topology induced by a [`MixedRadixSystem`].
#[derive(Debug, Clone, PartialEq)]
pub struct MixedRadixTopology {
    system: MixedRadixSystem,
    fnnt: Fnnt,
}

impl MixedRadixTopology {
    /// Constructs the topology induced by `system` on `N' = system.product()`
    /// nodes per layer (eq. (1)).
    #[must_use]
    pub fn new(system: MixedRadixSystem) -> Self {
        let fnnt = Fnnt::new_unchecked(Self::submatrices_on(&system, system.product()));
        MixedRadixTopology { system, fnnt }
    }

    /// The adjacency submatrices of `system` realized on `n_nodes` nodes per
    /// layer (offsets taken mod `n_nodes`).
    ///
    /// Used both by [`MixedRadixTopology::new`] (`n_nodes = N'`) and by the
    /// RadiX-Net builder, where the *last* system's product may strictly
    /// divide the common `N'` but its submatrices still live on `N'` nodes
    /// (Figure 6 keeps `W` of size `N' × N'` for every system).
    #[must_use]
    pub fn submatrices_on(system: &MixedRadixSystem, n_nodes: usize) -> Vec<CsrMatrix<u64>> {
        system
            .radices()
            .iter()
            .zip(system.place_values())
            .map(|(&radix, &pv)| CyclicShift::radix_submatrix(n_nodes, radix, pv))
            .collect()
    }

    /// The inducing mixed-radix system.
    #[must_use]
    pub fn system(&self) -> &MixedRadixSystem {
        &self.system
    }

    /// The underlying FNNT.
    #[must_use]
    pub fn fnnt(&self) -> &Fnnt {
        &self.fnnt
    }

    /// Consumes the topology, returning the FNNT.
    #[must_use]
    pub fn into_fnnt(self) -> Fnnt {
        self.fnnt
    }

    /// Number of nodes per layer, `N'`.
    #[must_use]
    pub fn nodes_per_layer(&self) -> usize {
        self.system.product()
    }

    /// Exact density: each layer `i` holds `N'·N_i` of `N'²` possible edges,
    /// so the density is `Σ N_i / (L·N')`.
    #[must_use]
    pub fn density(&self) -> f64 {
        let np = self.system.product() as f64;
        let l = self.system.len() as f64;
        self.system.radices().iter().sum::<usize>() as f64 / (l * np)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnnt::Symmetry;
    use radix_sparse::PathCount;

    #[test]
    fn fig1_topology_has_expected_edges() {
        // N = (2,2,2): Figure 1's right panel. Layer offsets 1, 2, 4.
        let t = MixedRadixTopology::new(MixedRadixSystem::new([2, 2, 2]).unwrap());
        let g = t.fnnt();
        assert_eq!(g.layer_sizes(), vec![8; 4]);
        let offsets = [1usize, 2, 4];
        for (li, &off) in offsets.iter().enumerate() {
            let w = g.layer(li);
            for j in 0..8 {
                assert_eq!(w.get(j, j), 1, "self edge at layer {li} node {j}");
                assert_eq!(
                    w.get(j, (j + off) % 8),
                    1,
                    "offset edge at layer {li} node {j}"
                );
                assert_eq!(w.row_nnz(j), 2);
            }
        }
    }

    #[test]
    fn lemma1_symmetry_one_path() {
        // Lemma 1: every mixed-radix topology is symmetric with exactly one
        // path between each input/output pair.
        for radices in [vec![2, 3], vec![3, 3, 4], vec![5, 2], vec![2, 2, 2, 2]] {
            let t = MixedRadixTopology::new(MixedRadixSystem::new(radices.clone()).unwrap());
            assert_eq!(
                t.fnnt().check_symmetry(),
                Symmetry::Symmetric(PathCount(1)),
                "failed for {radices:?}"
            );
        }
    }

    #[test]
    fn paths_follow_digit_decomposition() {
        // The unique path from input u to output v is determined by the
        // digits of (v − u) mod N': layer i moves by digit_i · ν_i.
        let sys = MixedRadixSystem::new([3, 4]).unwrap();
        let t = MixedRadixTopology::new(sys.clone());
        let g = t.fnnt();
        let np = sys.product();
        for u in 0..np {
            for v in 0..np {
                let delta = (v + np - u) % np;
                let digits = sys.value_to_digits(delta);
                // Walk the decomposed path and confirm each edge exists.
                let mut at = u;
                for (i, (&d, &pv)) in digits.iter().zip(sys.place_values()).enumerate() {
                    let next = (at + d * pv) % np;
                    assert_eq!(g.layer(i).get(at, next), 1, "edge missing on path {u}→{v}");
                    at = next;
                }
                assert_eq!(at, v);
            }
        }
    }

    #[test]
    fn density_formula_matches_measured() {
        for radices in [vec![2, 2, 2], vec![3, 3, 4], vec![2, 5]] {
            let t = MixedRadixTopology::new(MixedRadixSystem::new(radices).unwrap());
            assert!(
                (t.density() - t.fnnt().density()).abs() < 1e-12,
                "formula {} vs measured {}",
                t.density(),
                t.fnnt().density()
            );
        }
    }

    #[test]
    fn submatrices_on_divisor_grid() {
        // A system whose product (4) divides the grid size (8): offsets mod 8.
        let sys = MixedRadixSystem::new([2, 2]).unwrap();
        let subs = MixedRadixTopology::submatrices_on(&sys, 8);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].shape(), (8, 8));
        // Layer 0 offset 1; layer 1 offset 2.
        assert_eq!(subs[1].get(0, 2), 1);
        assert_eq!(subs[1].get(7, 1), 1);
    }

    #[test]
    fn binary_everywhere() {
        let t = MixedRadixTopology::new(MixedRadixSystem::new([4, 3, 2]).unwrap());
        assert!(t.fnnt().is_binary());
    }
}
