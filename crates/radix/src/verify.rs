//! Computational verification of Lemma 1, Lemma 2, and Theorem 1.
//!
//! The paper proves that mixed-radix, extended mixed-radix, and RadiX-Net
//! topologies satisfy *symmetry* — the same number of paths between every
//! input/output pair — and derives closed forms for that count. This module
//! computes the predicted counts and checks them against the actual chained
//! path-count matrix of a generated net.
//!
//! ## A note on Theorem 1's constant
//!
//! Theorem 1 states the path count as `(N')^{M−1} · ∏_{i=1}^{M̄−1} D_i`
//! (`M` = number of systems, `M̄` = total radices). Its proof invokes
//! Lemma 2, whose induction assumes each constituent mixed-radix topology
//! joins *every* input/output pair — true only when the system's product is
//! the full `N'`. When the **last** system's product `s` strictly divides
//! `N'` (allowed by constraint 2), the final block contributes a factor `s`
//! rather than `N'`, so the exact count is
//!
//! ```text
//! m = (N')^{M−2} · s · ∏_{i=1}^{M̄−1} D_i        (M ≥ 2)
//! m = ∏ D_i                                       (M = 1, full product)
//! ```
//!
//! which reduces to the paper's formula when `s = N'`. Symmetry itself
//! still holds in all cases. [`predicted_path_count`] implements the exact
//! generalized form; the test suite and `tests/theorem1.rs` verify it
//! against actual chain products, and EXPERIMENTS.md records the
//! discrepancy.

use radix_sparse::PathCount;

use crate::builder::RadixNetSpec;
use crate::fnnt::{Fnnt, Symmetry};

/// Report of a symmetry verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// What the symmetry check actually observed.
    pub observed: Symmetry,
    /// The path count predicted by (generalized) Theorem 1.
    pub predicted: PathCount,
    /// Whether observed and predicted agree.
    pub matches: bool,
}

/// The exact path count predicted by the generalized Theorem 1 for a
/// RadiX-Net spec (see module docs). Saturates on overflow.
#[must_use]
pub fn predicted_path_count(spec: &RadixNetSpec) -> PathCount {
    let n_prime = spec.n_prime() as u128;
    let m = spec.systems().len();
    let last_product = spec.systems()[m - 1].product() as u128;

    let mut count = PathCount(1);
    // Contribution of the mixed-radix chain:
    // (N')^{M−1} when the last product is full, else (N')^{M−2}·s.
    if m >= 2 {
        for _ in 0..(m - 2) {
            count = radix_sparse::Scalar::mul(count, PathCount(n_prime));
        }
        count = radix_sparse::Scalar::mul(count, PathCount(n_prime));
        // The (m−1) factors above assume every system is full; correct the
        // final one to the last system's actual product.
        if last_product != n_prime {
            // count currently holds (N')^{m−1}; rescale the last factor.
            // Recompute from scratch to avoid division on saturated values.
            count = PathCount(1);
            for _ in 0..(m - 2) {
                count = radix_sparse::Scalar::mul(count, PathCount(n_prime));
            }
            count = radix_sparse::Scalar::mul(count, PathCount(last_product));
        }
    }
    // Contribution of the dense widths: ∏_{i=1}^{M̄−1} D_i (interior only).
    let widths = spec.widths();
    for &d in &widths[1..widths.len() - 1] {
        count = radix_sparse::Scalar::mul(count, PathCount(d as u128));
    }
    count
}

/// The path count the *paper's literal* Theorem 1 formula gives,
/// `(N')^{M−1} · ∏_{i=1}^{M̄−1} D_i` — exact whenever the last system's
/// product equals `N'`. Kept separate so experiments can report
/// paper-vs-generalized.
#[must_use]
pub fn paper_path_count(spec: &RadixNetSpec) -> PathCount {
    let n_prime = spec.n_prime() as u128;
    let m = spec.systems().len();
    let mut count = PathCount(1);
    for _ in 0..(m - 1) {
        count = radix_sparse::Scalar::mul(count, PathCount(n_prime));
    }
    let widths = spec.widths();
    for &d in &widths[1..widths.len() - 1] {
        count = radix_sparse::Scalar::mul(count, PathCount(d as u128));
    }
    count
}

/// Builds the net from `spec`, runs the symmetry checker, and compares with
/// the generalized Theorem-1 prediction.
#[must_use]
pub fn verify_spec(spec: &RadixNetSpec) -> VerificationReport {
    let net = spec.build();
    verify_fnnt(net.fnnt(), predicted_path_count(spec))
}

/// Compares an already-built FNNT against a predicted uniform path count.
#[must_use]
pub fn verify_fnnt(fnnt: &Fnnt, predicted: PathCount) -> VerificationReport {
    let observed = fnnt.check_symmetry();
    let matches = matches!(&observed, Symmetry::Symmetric(m) if *m == predicted);
    VerificationReport {
        observed,
        predicted,
        matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeral::MixedRadixSystem;

    fn sys(radices: &[usize]) -> MixedRadixSystem {
        MixedRadixSystem::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn lemma1_single_system_one_path() {
        // M = 1, widths all 1: a plain mixed-radix topology. Lemma 1: m = 1.
        let spec = RadixNetSpec::extended_mixed_radix(vec![sys(&[2, 3, 2])]).unwrap();
        let report = verify_spec(&spec);
        assert_eq!(report.predicted, PathCount(1));
        assert!(report.matches, "observed {:?}", report.observed);
    }

    #[test]
    fn lemma2_emr_path_count() {
        // M = 3 full systems, widths 1: m = (N')^{M−1} = 12² = 144.
        let spec = RadixNetSpec::extended_mixed_radix(vec![sys(&[3, 4]), sys(&[2, 6]), sys(&[12])])
            .unwrap();
        let report = verify_spec(&spec);
        assert_eq!(report.predicted, PathCount(144));
        assert!(report.matches, "observed {:?}", report.observed);
        assert_eq!(report.predicted, paper_path_count(&spec));
    }

    #[test]
    fn theorem1_with_widths() {
        // M = 2 systems over N' = 6, D = (2,3,2,1,2):
        // m = (N')^{1} · D_1·D_2·D_3 = 6 · 3·2·1 = 36.
        let spec =
            RadixNetSpec::new(vec![sys(&[2, 3]), sys(&[3, 2])], vec![2, 3, 2, 1, 2]).unwrap();
        let report = verify_spec(&spec);
        assert_eq!(report.predicted, PathCount(6 * 3 * 2));
        assert!(report.matches, "observed {:?}", report.observed);
    }

    #[test]
    fn divisor_last_system_generalized_count() {
        // N' = 8, last system (2,2) with product 4 | 8. M = 2 systems.
        // Generalized: (N')^{0} · 4 · ∏ interior D (all 1) = 4.
        // Paper's literal formula would claim 8.
        let spec = RadixNetSpec::extended_mixed_radix(vec![sys(&[2, 2, 2]), sys(&[2, 2])]).unwrap();
        let report = verify_spec(&spec);
        assert_eq!(report.predicted, PathCount(4));
        assert!(report.matches, "observed {:?}", report.observed);
        assert_eq!(paper_path_count(&spec), PathCount(8));
    }

    #[test]
    fn three_systems_divisor_last() {
        // N' = 12, systems (3,4), (4,3) full, then (6) with 6 | 12.
        // Generalized: (12)^{1} · 6 = 72.
        let spec = RadixNetSpec::extended_mixed_radix(vec![sys(&[3, 4]), sys(&[4, 3]), sys(&[6])])
            .unwrap();
        let report = verify_spec(&spec);
        assert_eq!(report.predicted, PathCount(72));
        assert!(report.matches, "observed {:?}", report.observed);
    }

    #[test]
    fn widths_scale_path_count_multiplicatively() {
        let base = RadixNetSpec::new(vec![sys(&[2, 2])], vec![1, 1, 1]).unwrap();
        let wide = RadixNetSpec::new(vec![sys(&[2, 2])], vec![1, 5, 1]).unwrap();
        let r_base = verify_spec(&base);
        let r_wide = verify_spec(&wide);
        assert!(r_base.matches && r_wide.matches);
        assert_eq!(
            r_wide.predicted.exact().unwrap(),
            5 * r_base.predicted.exact().unwrap()
        );
    }

    #[test]
    fn input_output_widths_do_not_affect_count() {
        // D_0 and D_M̄ multiply node counts, not path counts.
        let a = RadixNetSpec::new(vec![sys(&[2, 2])], vec![1, 2, 1]).unwrap();
        let b = RadixNetSpec::new(vec![sys(&[2, 2])], vec![7, 2, 9]).unwrap();
        assert_eq!(predicted_path_count(&a), predicted_path_count(&b));
        assert!(verify_spec(&b).matches);
    }

    #[test]
    fn prediction_saturates_gracefully() {
        // Deep chain of systems over a large N' would overflow u128; the
        // prediction must saturate, not panic. N' = 2^40, 5 systems.
        let big = sys(&[1 << 20, 1 << 20]);
        let systems = vec![big.clone(), big.clone(), big.clone(), big.clone(), big];
        let total: usize = systems.iter().map(MixedRadixSystem::len).sum();
        let spec = RadixNetSpec::new(systems, vec![1; total + 1]).unwrap();
        // (2^40)^4 = 2^160 > u128::MAX → saturated.
        assert!(predicted_path_count(&spec).is_saturated());
    }
}
