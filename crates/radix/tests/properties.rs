//! Property-based tests for the core RadiX-Net crate: Theorem 1 on random
//! specifications, density formula (4) against measured edge counts on
//! random nets, the Figure-1 tree/matrix equivalence on random systems, and
//! the mixed-radix bijection.

use proptest::prelude::*;

use radix_net::{
    density, overlay_topology, predicted_path_count, verify_spec, MixedRadixSystem,
    MixedRadixTopology, RadixNetSpec, Symmetry,
};

/// Strategy: a random mixed-radix system with bounded product.
fn small_system() -> impl Strategy<Value = MixedRadixSystem> {
    proptest::collection::vec(2usize..5, 1..4)
        .prop_filter("bounded product", |radices| {
            radices.iter().product::<usize>() <= 64
        })
        .prop_map(|radices| MixedRadixSystem::new(radices).unwrap())
}

/// Strategy: a valid RadiX-Net spec (systems sharing a product, divisor
/// last, random small widths).
fn small_spec() -> impl Strategy<Value = RadixNetSpec> {
    (small_system(), 1usize..3, any::<u64>()).prop_map(|(first, extra_systems, seed)| {
        let n_prime = first.product();
        let mut systems = vec![first];
        // Deterministic PRNG from the seed for reproducible shrinking.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Middle systems: random ordered factorizations of N'.
        let factorizations = radix_net::diversity::ordered_factorizations(n_prime);
        for _ in 0..extra_systems.saturating_sub(1) {
            let pick = (next() as usize) % factorizations.len();
            systems.push(MixedRadixSystem::new(factorizations[pick].clone()).unwrap());
        }
        // Last system: factorization of a random divisor of N'.
        let divisors: Vec<usize> = (2..=n_prime).filter(|d| n_prime % d == 0).collect();
        let d = divisors[(next() as usize) % divisors.len()];
        let last_facts = radix_net::diversity::ordered_factorizations(d);
        systems.push(
            MixedRadixSystem::new(last_facts[(next() as usize) % last_facts.len()].clone())
                .unwrap(),
        );

        let total: usize = systems.iter().map(MixedRadixSystem::len).sum();
        let widths: Vec<usize> = (0..=total).map(|_| (next() as usize) % 3 + 1).collect();
        RadixNetSpec::new(systems, widths).expect("constructed spec is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mixed_radix_bijection(radices in proptest::collection::vec(2usize..6, 1..5)) {
        let sys = MixedRadixSystem::new(radices).unwrap();
        prop_assume!(sys.product() <= 4096);
        for v in 0..sys.product() {
            prop_assert_eq!(sys.digits_to_value(&sys.value_to_digits(v)), v);
        }
    }

    #[test]
    fn lemma1_every_mixed_radix_topology_symmetric(sys in small_system()) {
        let t = MixedRadixTopology::new(sys);
        match t.fnnt().check_symmetry() {
            Symmetry::Symmetric(m) => prop_assert_eq!(m.exact(), Some(1)),
            other => prop_assert!(false, "not symmetric: {:?}", other),
        }
    }

    #[test]
    fn fig1_tree_overlay_equals_matrix_form(sys in small_system()) {
        let via_trees = overlay_topology(&sys);
        let via_matrices = MixedRadixTopology::new(sys).into_fnnt();
        prop_assert_eq!(via_trees, via_matrices);
    }

    #[test]
    fn theorem1_on_random_specs(spec in small_spec()) {
        let report = verify_spec(&spec);
        prop_assert!(
            report.matches,
            "spec {:?}: predicted {:?}, observed {:?}",
            spec, report.predicted, report.observed
        );
    }

    #[test]
    fn eq4_density_matches_measured(spec in small_spec()) {
        let net = spec.build();
        let measured = net.fnnt().density();
        let formula = density::density_exact(&spec);
        prop_assert!(
            (measured - formula).abs() < 1e-12,
            "measured {measured} vs formula {formula}"
        );
    }

    #[test]
    fn built_nets_are_path_connected(spec in small_spec()) {
        prop_assert!(spec.build().fnnt().is_path_connected());
    }

    #[test]
    fn built_nets_are_binary(spec in small_spec()) {
        // No valid mixed-radix layer duplicates an edge: radix · place value
        // never exceeds N' within a system.
        prop_assert!(spec.build().fnnt().is_binary());
    }

    #[test]
    fn density_within_bounds(spec in small_spec()) {
        let net = spec.build();
        let d = net.fnnt().density();
        prop_assert!(d > 0.0 && d <= 1.0);
        prop_assert!(d >= net.fnnt().min_density() - 1e-12);
    }

    #[test]
    fn predicted_count_positive(spec in small_spec()) {
        let p = predicted_path_count(&spec);
        prop_assert!(p.exact().is_none_or(|v| v > 0));
    }

    #[test]
    fn layer_sizes_are_width_times_nprime(spec in small_spec()) {
        let net = spec.build();
        let expect: Vec<usize> =
            spec.widths().iter().map(|&d| d * spec.n_prime()).collect();
        prop_assert_eq!(net.fnnt().layer_sizes(), expect);
    }
}
