//! Offline, API-compatible stand-in for the parts of `criterion` this
//! workspace uses.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. Bench files keep their authoring surface —
//! [`Criterion`], [`criterion_group!`] / [`criterion_main!`],
//! [`BenchmarkId`], [`Throughput`], benchmark groups, and `Bencher::iter` —
//! and this shim times each closure with [`std::time::Instant`], printing a
//! mean wall-clock per iteration (plus a derived element rate when a
//! throughput is set). There is no statistical analysis, no HTML report,
//! and no saved baselines; when `cargo test` runs a `harness = false` bench
//! target it passes `--test`, which switches the shim to a one-iteration
//! smoke run so test suites stay fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark point in normal mode; sampling stops at
/// the budget even if fewer than `sample_size` iterations have run.
const TIME_BUDGET: Duration = Duration::from_millis(250);

/// Identifies one benchmark point, typically `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{param}", name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. nonzeros) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    quick: bool,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` repeatedly (once in `--test` smoke mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let reps = if self.quick {
            1
        } else {
            self.sample_size.max(1)
        };
        let start = Instant::now();
        for done in 0..reps {
            std::hint::black_box(f());
            self.iters_done = done as u64 + 1;
            if !self.quick && start.elapsed() > TIME_BUDGET {
                break;
            }
        }
        self.total = start.elapsed();
    }
}

/// Top-level benchmark driver (mirroring `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // `cargo bench -- <filter>` passes other args we simply ignore.
        let quick = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            quick,
        }
    }
}

impl Criterion {
    /// Sets how many iterations each benchmark point samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// No-op kept for API compatibility with real criterion.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmark points.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a single free-standing benchmark point.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let (sample_size, quick) = (self.sample_size, self.quick);
        run_point(&id.label, None, sample_size, quick, |b| f(b));
        self
    }
}

/// A group of related benchmark points sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped override; as in real criterion it must not leak into
    /// later groups, so the parent's setting is left untouched.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the units processed per iteration for subsequent points.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark point with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let (sample_size, quick) = (self.effective_sample_size(), self.criterion.quick);
        run_point(&label, self.throughput, sample_size, quick, |b| {
            f(b, input);
        });
        self
    }

    /// Runs one benchmark point without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let (sample_size, quick) = (self.effective_sample_size(), self.criterion.quick);
        run_point(&label, self.throughput, sample_size, quick, |b| f(b));
        self
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Times one benchmark point and prints its summary line.
fn run_point<F: FnOnce(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    quick: bool,
    f: F,
) {
    let mut bencher = Bencher {
        iters_done: 0,
        total: Duration::ZERO,
        quick,
        sample_size,
    };
    f(&mut bencher);
    if quick {
        println!("bench {label}: ok (smoke run)");
        return;
    }
    if bencher.iters_done == 0 {
        println!("bench {label}: closure never called Bencher::iter");
        return;
    }
    let per_iter = bencher.total.as_secs_f64() / bencher.iters_done as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!(", {:.3e} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!(", {:.3e} B/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!(
        "bench {label}: {:.3} us/iter over {} iter(s){rate}",
        per_iter * 1e6,
        bencher.iters_done
    );
}

/// Declares a benchmark group function (mirroring criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main` (mirroring criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("serial", "n64").label, "serial/n64");
        assert_eq!(BenchmarkId::from_parameter(8).label, "8");
    }

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default().sample_size(3);
        c.quick = true;
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.throughput(Throughput::Elements(10));
            group.bench_with_input(BenchmarkId::new("a", 1), &5usize, |b, &x| {
                b.iter(|| x * 2);
                calls += 1;
            });
            group.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_sample_size_does_not_leak() {
        let mut c = Criterion::default().sample_size(100);
        {
            let mut group = c.benchmark_group("g1");
            group.sample_size(5);
            assert_eq!(group.effective_sample_size(), 5);
            group.finish();
        }
        let group2 = c.benchmark_group("g2");
        assert_eq!(group2.effective_sample_size(), 100);
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default().sample_size(2);
        c.quick = true;
        let mut ran = false;
        c.bench_function("solo", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }
}
