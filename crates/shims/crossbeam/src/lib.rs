//! Offline, API-compatible stand-in for the parts of `crossbeam` this
//! workspace uses: bounded MPMC-ish channels ([`channel::bounded`]) and
//! scoped threads ([`scope`]).
//!
//! Channels are backed by [`std::sync::mpsc::sync_channel`] (bounded,
//! blocking, disconnect-on-drop — the same semantics the pipelined
//! inference schedule relies on), and scoped threads by
//! [`std::thread::scope`]. The one semantic difference from real crossbeam:
//! if a spawned thread panics, [`scope`] propagates the panic instead of
//! returning `Err`, which is strictly stricter than the `.expect(…)` the
//! call sites apply to the result anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;

/// Bounded blocking channels (mirroring `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel; clonable for fan-in.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`] (mirroring
    /// `crossbeam::channel::TrySendError`). Either way the unsent message
    /// is handed back, so a load-shedding caller can fail over (or reject
    /// typed) without losing it.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded buffer is at capacity right now; receivers are
        /// still alive. The admission-control signal: a non-blocking
        /// submitter treats this as "overloaded", not as an error state.
        Full(T),
        /// Every receiver has been dropped; the message can never arrive.
        Disconnected(T),
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or returns `Err` if the
        /// receiving side has disconnected.
        ///
        /// # Errors
        /// Returns [`SendError`] carrying `msg` back if every receiver has
        /// been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }

        /// Enqueues the message only if the bounded buffer has room right
        /// now — never blocks. This is the primitive admission-time load
        /// shedding is built on: a full queue is a backpressure signal the
        /// caller can convert into a typed "overloaded" rejection instead
        /// of parking the submitting thread.
        ///
        /// # Errors
        /// [`TrySendError::Full`] when the buffer is at capacity (message
        /// handed back, receivers alive); [`TrySendError::Disconnected`]
        /// when every receiver has been dropped.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            })
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`] (mirroring
    /// `crossbeam::channel::TryRecvError`).
    ///
    /// The distinction matters for graceful shutdown: a drain loop must keep
    /// polling on [`TryRecvError::Empty`] (senders alive, nothing queued
    /// *right now*) but may retire on [`TryRecvError::Disconnected`]
    /// (every sender dropped **and** the buffer fully drained — buffered
    /// messages are always handed out before the disconnect is reported,
    /// even when senders drop concurrently from several threads).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently buffered; senders still exist.
        Empty,
        /// All senders have been dropped and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`] (mirroring
    /// `crossbeam::channel::RecvTimeoutError`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message arriving.
        Timeout,
        /// All senders have been dropped and the buffer is drained.
        Disconnected,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or returns `Err` once the channel
        /// is disconnected and drained.
        ///
        /// # Errors
        /// Returns [`RecvError`] if every sender has been dropped and the
        /// buffer is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Returns a buffered message immediately, without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] when nothing is queued but senders are
        /// still alive; [`TryRecvError::Disconnected`] only once every
        /// sender has been dropped **and** every buffered message has been
        /// received (real crossbeam's ordering guarantee — see the enum
        /// docs; pinned by this crate's concurrent-drop test).
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks for at most `timeout` waiting for a message — the
        /// primitive a deadline-aware batching loop is built on.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] if the deadline passed with the
        /// channel still connected; [`RecvTimeoutError::Disconnected`] once
        /// every sender has been dropped and the buffer is drained.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Iterates messages until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

/// A scope handle passed to [`scope`] closures and nested spawns.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread that may borrow from the enclosing scope; the closure
    /// receives the scope handle again so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope handle, joining every spawned thread before
/// returning (mirroring `crossbeam::scope`).
///
/// # Errors
/// Never returns `Err` in this shim; a panicking child thread propagates its
/// panic out of `scope` instead (see the crate docs).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn channel_roundtrip_in_order() {
        let (tx, rx) = bounded::<usize>(2);
        super::scope(|scope| {
            scope.spawn(move |_| {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<usize> = rx.into_iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        })
        .unwrap();
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        use super::channel::TryRecvError;
        let (tx, rx) = bounded::<u8>(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        // A buffered message must be delivered before the disconnect is
        // reported, even though the sender is already gone.
        tx.send(11).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(11));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_send_distinguishes_full_from_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<u8>(1);
        // Room in the buffer: accepted without blocking.
        assert_eq!(tx.try_send(1), Ok(()));
        // Buffer at capacity, receiver alive: Full hands the message back.
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        // Draining frees the slot; the channel is usable again.
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        assert_eq!(rx.try_recv(), Ok(3));
        // Receiver gone: Disconnected, regardless of buffer space.
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn recv_timeout_times_out_and_detects_disconnect() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = bounded::<u8>(1);
        // Nothing queued, sender alive: timeout.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        // Queued message: delivered well within the deadline.
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(3));
        // Sender gone, buffer empty: disconnect, not timeout.
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(100)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_late_arrival() {
        use std::time::Duration;
        let (tx, rx) = bounded::<u8>(1);
        super::scope(|scope| {
            scope.spawn(move |_| {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(42));
        })
        .unwrap();
    }

    #[test]
    fn concurrent_sender_drops_never_lose_messages() {
        // The graceful-shutdown contract: several senders, each sending a
        // burst and dropping at its own time from its own thread, racing
        // the receiver's drain loop. Every sent message must be delivered
        // before any disconnect is reported — a `Disconnected` with
        // messages still buffered would make a serving engine drop
        // in-flight requests on shutdown.
        use super::channel::TryRecvError;
        const SENDERS: usize = 4;
        const PER_SENDER: usize = 100;
        let (tx, rx) = bounded::<usize>(8);
        let mut got = vec![0usize; SENDERS * PER_SENDER];
        super::scope(|scope| {
            for s in 0..SENDERS {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    for i in 0..PER_SENDER {
                        tx.send(s * PER_SENDER + i).unwrap();
                    }
                    // tx drops here, concurrently with its siblings.
                });
            }
            drop(tx);
            // Drain with the non-blocking primitive the engine's batcher
            // uses, spinning on Empty (senders still alive) and stopping
            // only on a true disconnect.
            loop {
                match rx.try_recv() {
                    Ok(v) => got[v] += 1,
                    Err(TryRecvError::Empty) => std::thread::yield_now(),
                    Err(TryRecvError::Disconnected) => break,
                }
            }
        })
        .unwrap();
        assert!(
            got.iter().all(|&c| c == 1),
            "every message delivered exactly once, none lost at disconnect"
        );
        // And the channel stays disconnected afterwards.
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn iteration_ends_only_after_buffer_drains_under_concurrent_drops() {
        // Same contract through the blocking iterator surface: `iter()`
        // must yield every message from every sender before terminating,
        // with all senders dropping concurrently.
        const SENDERS: usize = 3;
        const PER_SENDER: usize = 50;
        let (tx, rx) = bounded::<usize>(4);
        let mut seen = [false; SENDERS * PER_SENDER];
        super::scope(|scope| {
            for s in 0..SENDERS {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    for i in 0..PER_SENDER {
                        tx.send(s * PER_SENDER + i).unwrap();
                    }
                });
            }
            drop(tx);
            for v in rx.iter() {
                assert!(!seen[v], "duplicate delivery of {v}");
                seen[v] = true;
            }
        })
        .unwrap();
        assert!(seen.iter().all(|&s| s), "iterator ended before draining");
    }

    #[test]
    fn nested_spawn_via_scope_handle() {
        let out = super::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21usize);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
