//! Offline, API-compatible stand-in for the parts of `crossbeam` this
//! workspace uses: bounded MPMC-ish channels ([`channel::bounded`]) and
//! scoped threads ([`scope`]).
//!
//! Channels are backed by [`std::sync::mpsc::sync_channel`] (bounded,
//! blocking, disconnect-on-drop — the same semantics the pipelined
//! inference schedule relies on), and scoped threads by
//! [`std::thread::scope`]. The one semantic difference from real crossbeam:
//! if a spawned thread panics, [`scope`] propagates the panic instead of
//! returning `Err`, which is strictly stricter than the `.expect(…)` the
//! call sites apply to the result anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;

/// Bounded blocking channels (mirroring `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel; clonable for fan-in.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or returns `Err` if the
        /// receiving side has disconnected.
        ///
        /// # Errors
        /// Returns [`SendError`] carrying `msg` back if every receiver has
        /// been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or returns `Err` once the channel
        /// is disconnected and drained.
        ///
        /// # Errors
        /// Returns [`RecvError`] if every sender has been dropped and the
        /// buffer is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Iterates messages until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

/// A scope handle passed to [`scope`] closures and nested spawns.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread that may borrow from the enclosing scope; the closure
    /// receives the scope handle again so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope handle, joining every spawned thread before
/// returning (mirroring `crossbeam::scope`).
///
/// # Errors
/// Never returns `Err` in this shim; a panicking child thread propagates its
/// panic out of `scope` instead (see the crate docs).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn channel_roundtrip_in_order() {
        let (tx, rx) = bounded::<usize>(2);
        super::scope(|scope| {
            scope.spawn(move |_| {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<usize> = rx.into_iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        })
        .unwrap();
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn nested_spawn_via_scope_handle() {
        let out = super::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21usize);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
