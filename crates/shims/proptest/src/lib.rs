//! Offline, API-compatible stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim keeps the same *authoring* surface — the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! [`collection::vec`] / [`collection::btree_set`], [`any`], the
//! [`proptest!`] macro with `#![proptest_config(…)]`, and the
//! `prop_assert*` / `prop_assume!` macros — but runs each property as a
//! plain randomized loop: deterministic seeding per test name (generation
//! itself delegates to the workspace's `rand` shim, as real proptest builds
//! on the rand crate), the case count taken from [`ProptestConfig`]
//! (overridable via the
//! `PROPTEST_CASES` environment variable, as in the real crate), and **no
//! shrinking** — a failing case panics with the failing assertion's message
//! instead of a minimized counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore};

/// Everything `use proptest::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Deterministic generator driving every strategy: an FNV-seeded
/// [`rand::rngs::StdRng`] from the workspace's rand shim (real proptest
/// likewise builds on the rand crate; all range/uniform sampling is
/// delegated there rather than re-implemented here).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Seeds a generator from a test's name so every run of the suite sees
    /// the same cases (set `PROPTEST_RNG_SEED` to perturb all tests at once).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
            for b in extra.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        TestRng {
            inner: rand::SeedableRng::seed_from_u64(h),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// How many times a `prop_filter` (or distinct-element collection) retries
/// before giving up on the whole test as over-constrained.
const MAX_LOCAL_REJECTS: usize = 500;

/// A generator of random values (the shim's version of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it,
    /// and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `f`, retrying up to a bounded number
    /// of times (`whence` names the constraint in the give-up message).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy adaptor returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adaptor returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy adaptor returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_LOCAL_REJECTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected {MAX_LOCAL_REJECTS} candidates in a row; \
             strategy is over-constrained",
            self.whence
        );
    }
}

// Range strategies delegate to the rand shim's uniform samplers (one
// implementation of the subtle numeric code, shared by both shims).
impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy producing a fixed value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite and sign-symmetric — deliberately *not* raw bit patterns
        // (no NaN/inf surprises).
        rng.gen_range(-1.0e6..1.0e6)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy for any [`Arbitrary`] type, created by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (mirroring `proptest::collection`).
pub mod collection {
    use super::{Range, RangeInclusive, Strategy, TestRng, MAX_LOCAL_REJECTS};
    use std::collections::BTreeSet;

    /// A size specification for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.lo..=self.hi_inclusive)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vector of `elem`-generated values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with *distinct-element count* drawn
    /// from a [`SizeRange`] (duplicates are redrawn a bounded number of
    /// times, then the smaller set is returned, as in real proptest).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut misses = 0usize;
            while set.len() < target && misses < MAX_LOCAL_REJECTS {
                if !set.insert(self.elem.generate(rng)) {
                    misses += 1;
                }
            }
            set
        }
    }

    /// Set of distinct `elem`-generated values with cardinality in `size`.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Per-test configuration (mirroring `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required before the property is accepted.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override (used by CI to keep suites fast).
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Why a single test case did not pass (mirroring
/// `proptest::test_runner::TestCaseError`).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case hit a `prop_assume!` that did not hold; draw a new one.
    Reject(String),
    /// The property is false for this case.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Builds the rejection variant.
    #[must_use]
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("{} at {}:{}", format_args!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format_args!($($fmt)+), left, right
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = config.effective_cases();
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let max_rejects = cases.saturating_mul(16).max(1024);
                // Build each strategy once (as real proptest does), not once
                // per case: a tuple of strategies is itself a strategy.
                let __strategies = ($($strategy,)+);
                while passed < cases {
                    let ($($pat,)+) = $crate::Strategy::generate(&__strategies, &mut rng);
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= max_rejects,
                                "property {} rejected {} cases (passed {}); \
                                 assumptions are over-constrained",
                                stringify!($name), rejected, passed
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed after {} passing case(s): {}",
                                stringify!($name), passed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::collection;
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let strat = (1usize..5)
            .prop_flat_map(|n| collection::vec(0usize..n, 1..4))
            .prop_map(|v| v.len())
            .prop_filter("nonzero", |&l| l > 0);
        let mut rng = TestRng::deterministic("compose");
        for _ in 0..200 {
            let l = strat.generate(&mut rng);
            assert!((1..4).contains(&l));
        }
    }

    #[test]
    fn btree_set_is_distinct_and_bounded() {
        let strat = collection::btree_set(0usize..100, 2..6);
        let mut rng = TestRng::deterministic("btree");
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.len() < 6);
            assert!(s.iter().all(|&v| v < 100));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_runs_and_asserts(a in 0u64..100, (b, c) in (0u64..10, 0u64..10)) {
            prop_assume!(a % 7 != 0);
            prop_assert!(a < 100);
            prop_assert_eq!(b + c, c + b);
            prop_assert_ne!(a + 1, a);
        }
    }
}
