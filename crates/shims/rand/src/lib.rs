//! Offline, API-compatible stand-in for the parts of the `rand` crate this
//! workspace uses.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched; this shim implements the same call-site surface — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`] — on top of a
//! deterministic xoshiro256** generator seeded via SplitMix64. Streams are
//! **not** bit-compatible with the real `rand` crate, but they are uniform,
//! deterministic per seed, and stable across platforms, which is all the
//! workspace's seeded tests and initializers rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators (mirroring `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform over the representable grid in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value can be drawn from (mirroring
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over bounded ranges (mirroring
/// `rand::distributions::uniform::SampleUniform`). The blanket
/// [`SampleRange`] impls below are generic over this trait — exactly like
/// the real crate — so type inference can unify an unsuffixed range literal
/// with the surrounding expression's float/integer type.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Uniform integer below `n` via Lemire-style widening multiply (the modulo
/// bias at these range sizes is far below anything a statistical test in
/// this workspace could see, but the multiply is cheap and unbiased enough).
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = hi.abs_diff(lo) as u64;
                lo.wrapping_add(below_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = hi - lo;
                assert!(span.is_finite(), "gen_range: span {lo}..{hi} overflows");
                // The lerp can round up to exactly `hi` (e.g. unit_f64's max
                // rounds to 1.0f32); redraw to honour the [lo, hi) contract.
                loop {
                    let v = lo + span * unit_f64(rng.next_u64()) as $t;
                    if v < hi {
                        return v;
                    }
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = hi - lo;
                assert!(span.is_finite(), "gen_range: span {lo}..={hi} overflows");
                // 53-bit grid including both endpoints; the lerp can round
                // just past either endpoint on asymmetric ranges, so clamp.
                let u = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                (lo + span * u).clamp(lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f64, f32);

/// Named generators (mirroring `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded through
    /// SplitMix64 (not the ChaCha-based `StdRng` of the real crate, but the
    /// same trait surface and determinism guarantees).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirroring `rand::seq`).
pub mod seq {
    use super::{below_u64, Rng};

    /// Slice shuffling and sampling (mirroring `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffles the whole slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles a uniformly chosen `amount`-element prefix into place and
        /// returns `(shuffled_prefix, rest)`.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = i + below_u64(rng, (self.len() - i) as u64) as usize;
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-1i32..=1);
            assert!((-1..=1).contains(&w));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn inclusive_float_range_never_overshoots() {
        // Asymmetric range where `hi - lo` rounds up in f32, so the lerp at
        // u ≈ 1 lands just past `hi` without the clamp.
        let mut rng = StdRng::seed_from_u64(13);
        let (lo, hi) = (-0.100_003_59_f32, 0.024_996_43_f32);
        for _ in 0..100_000 {
            let v = rng.gen_range(lo..=hi);
            assert!((lo..=hi).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_splits_at_amount() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..10).collect();
        let (head, tail) = v.partial_shuffle(&mut rng, 4);
        assert_eq!(head.len(), 4);
        assert_eq!(tail.len(), 6);
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([9u8].choose(&mut rng), Some(&9));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
