//! Offline, API-compatible stand-in for the parts of `rayon` this workspace
//! uses.
//!
//! The build environment has no network access, so the real `rayon` cannot
//! be fetched. Unlike most shims this one is **not** a sequential fake: it
//! materializes the items of a "parallel iterator" eagerly and fans them out
//! over [`std::thread::scope`] threads (one contiguous block per hardware
//! thread), so `par_*` kernels genuinely run in parallel. There is no work
//! stealing — RadiX-Net workloads are regular (every row costs about the
//! same), so static contiguous blocks balance well.
//!
//! Supported surface: `into_par_iter()` on ranges and vectors,
//! `par_chunks_mut` on slices, and the adaptors `enumerate`, `map`,
//! `map_init`, `for_each`, and `collect`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Everything call sites need: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSliceMut};
}

/// Number of worker threads to fan out over (the `RAYON_NUM_THREADS`
/// environment variable overrides the hardware default, as in real rayon).
fn num_threads() -> usize {
    let hardware = || {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("RAYON_NUM_THREADS") {
        // As in real rayon, 0 (and anything unparseable) means "choose
        // automatically", not "run serially".
        Ok(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(hardware),
        Err(_) => hardware(),
    }
}

/// Splits `items` into at most `parts` contiguous blocks of near-equal size.
fn split_blocks<I>(mut items: Vec<I>, parts: usize) -> Vec<Vec<I>> {
    let n = items.len();
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    // Pop blocks off the back so each drain is O(block), then restore order.
    let mut blocks: Vec<Vec<I>> = Vec::with_capacity(parts);
    for p in (0..parts).rev() {
        let len = base + usize::from(p < extra);
        blocks.push(items.split_off(items.len() - len));
    }
    blocks.reverse();
    blocks
}

/// An eager "parallel iterator": the items are already materialized, and
/// every consuming adaptor fans them out over scoped threads.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs every item with its index, like [`Iterator::enumerate`].
    #[must_use]
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        let threads = num_threads();
        if threads <= 1 || self.items.len() <= 1 {
            self.items.into_iter().for_each(f);
            return;
        }
        let blocks = split_blocks(self.items, threads);
        let f = &f;
        std::thread::scope(|scope| {
            for block in blocks {
                scope.spawn(move || block.into_iter().for_each(f));
            }
        });
    }

    /// Maps every item through `f` across worker threads, preserving order.
    pub fn map<F, R>(self, f: F) -> ParIter<R>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        self.map_init(|| (), |_state: &mut (), item| f(item))
    }

    /// Like [`ParIter::map`], but each worker thread first builds a scratch
    /// state with `init` and threads it through its items (rayon's
    /// `map_init`).
    pub fn map_init<INIT, S, F, R>(self, init: INIT, f: F) -> ParIter<R>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, I) -> R + Sync,
        R: Send,
    {
        let threads = num_threads();
        if threads <= 1 || self.items.len() <= 1 {
            let mut state = init();
            return ParIter {
                items: self.items.into_iter().map(|i| f(&mut state, i)).collect(),
            };
        }
        let blocks = split_blocks(self.items, threads);
        let init = &init;
        let f = &f;
        let mapped: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .into_iter()
                .map(|block| {
                    scope.spawn(move || {
                        let mut state = init();
                        block
                            .into_iter()
                            .map(|item| f(&mut state, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect()
        });
        ParIter {
            items: mapped.into_iter().flatten().collect(),
        }
    }

    /// Gathers the (already computed, order-preserved) items.
    #[must_use]
    pub fn collect<C: From<Vec<I>>>(self) -> C {
        C::from(self.items)
    }
}

/// Conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced by the parallel iterator.
    type Item: Send;

    /// Materializes `self` as a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Parallel mutable-chunk views of slices (rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into non-overlapping mutable chunks of `chunk_size`
    /// (the last chunk may be shorter) as a parallel iterator.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        let expect: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(squares, expect);
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        // Each worker's scratch buffer grows once per item it handles; the
        // output stays order-preserved and independent of the partitioning.
        let out: Vec<u64> = (0..64usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                debug_assert!(!scratch.is_empty());
                i as u64
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let mut data = vec![0u32; 103];
        data.as_mut_slice()
            .par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v = i as u32 + 1;
                }
            });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn for_each_visits_all_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 99 * 100 / 2);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let mut empty: Vec<u8> = Vec::new();
        empty.as_mut_slice().par_chunks_mut(4).for_each(|_| {});
    }
}
