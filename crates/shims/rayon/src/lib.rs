//! Offline, API-compatible stand-in for the parts of `rayon` this workspace
//! uses.
//!
//! The build environment has no network access, so the real `rayon` cannot
//! be fetched. Unlike most shims this one is **not** a sequential fake: work
//! is fanned out over a **persistent worker pool** — `num_threads() - 1`
//! detached threads spawned once per process, parked on a condvar between
//! jobs — so a steady-state parallel call costs two condvar round trips and
//! a handful of atomic operations, with **zero heap allocation** on the
//! dispatch path. (The previous implementation spawned fresh
//! [`std::thread::scope`] threads per call, whose stacks and join handles
//! allocated every time — that made the parallel kernels impossible to run
//! inside an allocation-free timed region.)
//!
//! Supported surface: `into_par_iter()` on ranges and vectors,
//! `par_chunks_mut` on slices, the adaptors `enumerate`, `map`, `map_init`,
//! `for_each`, and `collect`, plus two shim-specific zero-allocation
//! primitives the prepared kernels build on:
//!
//! * [`for_each_chunk_mut`] — pool-parallel loop over `chunk`-sized mutable
//!   chunks of a slice, chunks claimed dynamically via an atomic cursor,
//! * [`for_each_chunk_mut_with`] — the same, plus one caller-provided
//!   scratch state per worker slot (rayon's `map_init` shape, but with the
//!   states owned by the caller so they persist — and stay warm — across
//!   calls).
//!
//! Nested parallel calls (a job that itself calls a `par_*` entry point)
//! degrade to inline execution on the current thread instead of
//! deadlocking, mirroring how real rayon absorbs nested scopes into the
//! running worker.
//!
//! This crate contains `unsafe` in two tightly-scoped places: handing the
//! borrowed job closure to the persistent workers (the broadcast protocol
//! guarantees the closure outlives every dereference) and splitting
//! slices/vectors into disjoint per-task pieces across threads (task
//! indices are claimed exactly once from an atomic cursor). Each unsafe
//! block carries its own safety argument; everything outside this crate
//! remains `#![forbid(unsafe_code)]`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Everything call sites need: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSliceMut};
}

/// Number of worker threads to fan out over. `RADIX_POOL_THREADS` (the
/// project-native knob, used by the CI multi-thread matrix) takes
/// precedence, then `RAYON_NUM_THREADS` (the name real rayon honours), then
/// the hardware default. Read once, when the pool is built.
fn num_threads() -> usize {
    let hardware = || {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    };
    // As in real rayon, 0 (and anything unparseable) means "choose
    // automatically", not "run serially".
    let parse = |v: String| v.parse::<usize>().ok().filter(|&n| n > 0);
    std::env::var("RADIX_POOL_THREADS")
        .ok()
        .and_then(parse)
        .or_else(|| std::env::var("RAYON_NUM_THREADS").ok().and_then(parse))
        .unwrap_or_else(hardware)
}

/// Total number of threads that participate in a parallel job: the
/// persistent pool workers plus the calling thread (rayon's
/// `current_num_threads`). Callers sizing per-worker scratch state (see
/// [`for_each_chunk_mut_with`]) should size it to this value.
#[must_use]
pub fn current_num_threads() -> usize {
    pool::get().workers + 1
}

mod pool {
    //! The persistent worker pool and its broadcast protocol.
    //!
    //! One job at a time: a caller publishes a type-erased `&dyn Fn(usize)`
    //! under the state mutex, bumps the epoch, and wakes every worker. Each
    //! participant (workers get slots `1..=N`, the caller runs slot `0`)
    //! invokes the job once; the caller blocks until all workers have
    //! decremented `remaining` before returning, which is what makes the
    //! borrowed-closure hand-off sound.

    use std::cell::Cell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

    /// Type-erased pointer to the current broadcast's job closure.
    #[derive(Clone, Copy)]
    struct Job(*const (dyn Fn(usize) + Sync));

    // SAFETY: the pointee is `Sync` (callable from any thread through a
    // shared reference), and `broadcast` does not return — even on panic —
    // until every worker has finished its call, so the pointer never
    // outlives the closure it was created from.
    #[allow(unsafe_code)]
    unsafe impl Send for Job {}

    struct State {
        /// Bumped once per broadcast; workers use it to detect new jobs.
        epoch: u64,
        /// The in-flight job, `None` between broadcasts.
        job: Option<Job>,
        /// Workers still running the current job.
        remaining: usize,
        /// Panic payload from the first worker whose job invocation
        /// panicked (later payloads are dropped). Taken — and re-raised on
        /// the calling thread — by `broadcast` after the job retires, so a
        /// worker panic poisons only the job that raised it: the worker
        /// itself survives to park for the next broadcast, and the pool
        /// stays fully usable.
        panic: Option<Box<dyn std::any::Any + Send>>,
        /// Workers that have finished thread start-up and parked at the
        /// job-wait loop. Pool construction blocks on this so that no
        /// worker-thread bootstrap allocation can leak into a caller's
        /// post-construction (possibly allocation-measured) code.
        ready: usize,
    }

    struct Shared {
        state: Mutex<State>,
        job_ready: Condvar,
        job_done: Condvar,
    }

    /// The process-wide pool: workers parked on `job_ready`, plus a gate
    /// mutex serializing concurrent top-level broadcasts.
    pub(crate) struct Pool {
        shared: Arc<Shared>,
        pub(crate) workers: usize,
        gate: Mutex<()>,
    }

    thread_local! {
        /// Set while this thread is executing a broadcast job; nested
        /// parallel calls check it and run inline instead of deadlocking.
        static IN_JOB: Cell<bool> = const { Cell::new(false) };
    }

    pub(crate) fn in_job() -> bool {
        IN_JOB.with(Cell::get)
    }

    /// The pool, built (and its workers spawned) on first use.
    pub(crate) fn get() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = super::num_threads().saturating_sub(1);
            let shared = Arc::new(Shared {
                state: Mutex::new(State {
                    epoch: 0,
                    job: None,
                    remaining: 0,
                    panic: None,
                    ready: 0,
                }),
                job_ready: Condvar::new(),
                job_done: Condvar::new(),
            });
            for slot in 1..=workers {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("radix-rayon-{slot}"))
                    .spawn(move || worker_loop(&sh, slot))
                    .expect("spawn rayon-shim pool worker");
            }
            // Wait for every worker to park: thread start-up (TLS setup,
            // runtime bookkeeping) may allocate on the worker threads, and
            // it must all be charged to pool construction, not to whatever
            // the caller measures afterwards.
            {
                let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
                while st.ready < workers {
                    st = shared
                        .job_done
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            Pool {
                shared,
                workers,
                gate: Mutex::new(()),
            }
        })
    }

    fn worker_loop(shared: &Shared, slot: usize) {
        let mut seen = 0u64;
        // Touch the thread-local once so its (allocation-free, but still
        // lazy) registration happens here, then report ready.
        IN_JOB.with(|c| c.set(false));
        {
            let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.ready += 1;
            shared.job_done.notify_all();
        }
        loop {
            let job = {
                let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if st.epoch != seen {
                        seen = st.epoch;
                        if let Some(job) = st.job {
                            break job;
                        }
                    }
                    st = shared
                        .job_ready
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // SAFETY: `broadcast` keeps the closure alive until `remaining`
            // reaches zero, and this worker decrements `remaining` only
            // after the call below returns.
            #[allow(unsafe_code)]
            let f = unsafe { &*job.0 };
            IN_JOB.with(|c| c.set(true));
            let result = catch_unwind(AssertUnwindSafe(|| f(slot)));
            IN_JOB.with(|c| c.set(false));
            let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Err(payload) = result {
                // First payload wins; the job is already doomed either way.
                st.panic.get_or_insert(payload);
            }
            st.remaining -= 1;
            if st.remaining == 0 {
                shared.job_done.notify_all();
            }
        }
    }

    /// Clean-up that must run even if the caller's own `job(0)` panics:
    /// clear the in-job flag, wait for every worker, retire the job.
    struct CallGuard<'a>(&'a Shared);

    impl Drop for CallGuard<'_> {
        fn drop(&mut self) {
            IN_JOB.with(|c| c.set(false));
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            while st.remaining > 0 {
                st = self
                    .0
                    .job_done
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.job = None;
        }
    }

    /// Runs `job(slot)` once per participant — the caller as slot `0`, each
    /// pool worker as slots `1..=workers` — returning once every call has
    /// finished. With no workers (single-thread machines, nested calls) the
    /// job runs inline on the caller only. Allocation-free in steady state.
    ///
    /// # Panics
    /// Re-raises the first panicking worker's original payload (via
    /// [`resume_unwind`]) on the calling thread, so callers that
    /// `catch_unwind` around a parallel region see the real message, not a
    /// synthetic one. The caller's own panic unwinds normally after all
    /// workers finish. Either way the panic poisons only this job: workers
    /// catch their own unwinds and park again, leaving the pool fully
    /// usable for the next broadcast.
    pub(crate) fn broadcast(job: &(dyn Fn(usize) + Sync)) {
        let p = get();
        if p.workers == 0 || in_job() {
            job(0);
            return;
        }
        let _gate = p.gate.lock().unwrap_or_else(PoisonError::into_inner);
        // SAFETY: lifetime erasure only — the fat pointer layout is
        // unchanged, and the protocol below guarantees the closure outlives
        // every dereference (the caller blocks until all workers finish).
        #[allow(unsafe_code)]
        let erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        {
            let mut st = p
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.job = Some(Job(erased));
            st.epoch = st.epoch.wrapping_add(1);
            st.remaining = p.workers;
            st.panic = None;
        }
        p.shared.job_ready.notify_all();
        let guard = CallGuard(&p.shared);
        IN_JOB.with(|c| c.set(true));
        job(0);
        drop(guard);
        let payload = p
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .panic
            .take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// A raw mutable pointer that may be dereferenced from any pool thread.
/// Each use site carves out disjoint regions per task/slot index, so no two
/// threads ever touch the same element.
struct SharedMutPtr<T>(*mut T);

// SAFETY: the pointer is only used to derive references to *disjoint*
// regions (distinct chunk indices, distinct worker slots), each claimed
// exactly once; the data it points into outlives the broadcast.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SharedMutPtr<T> {}

impl<T> SharedMutPtr<T> {
    /// The wrapped pointer. Closures must go through this method (not the
    /// field) so they capture the `Sync` wrapper, not the raw pointer.
    fn ptr(&self) -> *mut T {
        self.0
    }
}

/// Pool-parallel loop over `chunk_size`-sized mutable chunks of `data`
/// (the last chunk may be shorter), with one caller-provided scratch state
/// per participating thread. `f(state, chunk_index, chunk)` is called once
/// per chunk; chunks are claimed dynamically from an atomic cursor, so the
/// schedule load-balances. At most `states.len()` threads participate —
/// size the slice with [`current_num_threads`] for full parallelism (a
/// single state forces serial execution).
///
/// Unlike [`ParallelSliceMut::par_chunks_mut`], this performs **no heap
/// allocation**: no chunk list is materialized and the pool threads are
/// persistent, which is what keeps warmed-up parallel inference inside an
/// allocation-free timed region.
///
/// # Panics
/// Panics if `chunk_size == 0`, or if `data` is non-empty and `states` is
/// empty, or if `f` panics on any thread.
pub fn for_each_chunk_mut_with<T, S, F>(data: &mut [T], chunk_size: usize, states: &mut [S], f: F)
where
    T: Send,
    S: Send,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk size must be positive");
    let len = data.len();
    let n_tasks = len.div_ceil(chunk_size);
    if n_tasks == 0 {
        return;
    }
    assert!(!states.is_empty(), "need at least one scratch state");
    if n_tasks == 1 || states.len() == 1 || pool::get().workers == 0 || pool::in_job() {
        let state = &mut states[0];
        for k in 0..n_tasks {
            let start = k * chunk_size;
            let end = (start + chunk_size).min(len);
            f(state, k, &mut data[start..end]);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let data_ptr = SharedMutPtr(data.as_mut_ptr());
    let states_ptr = SharedMutPtr(states.as_mut_ptr());
    let n_states = states.len();
    pool::broadcast(&|slot| {
        if slot >= n_states {
            return;
        }
        // SAFETY: `slot` is unique per participating thread, so this is the
        // only live reference to `states[slot]`; the slice outlives the
        // broadcast.
        #[allow(unsafe_code)]
        let state = unsafe { &mut *states_ptr.ptr().add(slot) };
        loop {
            let k = cursor.fetch_add(1, Ordering::Relaxed);
            if k >= n_tasks {
                break;
            }
            let start = k * chunk_size;
            let clen = chunk_size.min(len - start);
            // SAFETY: `k` is claimed exactly once, chunks `[start,
            // start+clen)` are pairwise disjoint across `k`, and `data`
            // outlives the broadcast.
            #[allow(unsafe_code)]
            let chunk = unsafe { std::slice::from_raw_parts_mut(data_ptr.ptr().add(start), clen) };
            f(state, k, chunk);
        }
    });
}

/// Stateless variant of [`for_each_chunk_mut_with`]: pool-parallel,
/// allocation-free loop over `chunk_size`-sized mutable chunks, `f(chunk_index,
/// chunk)` once per chunk.
///
/// # Panics
/// Panics if `chunk_size == 0` or if `f` panics on any thread.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    /// Upper bound on participating threads for the stateless entry point
    /// (the unit states live on the stack).
    const MAX_SLOTS: usize = 128;
    let mut states = [(); MAX_SLOTS];
    let slots = current_num_threads().min(MAX_SLOTS);
    for_each_chunk_mut_with(data, chunk_size, &mut states[..slots.max(1)], |(), k, c| {
        f(k, c);
    });
}

/// Pool-parallel loop over the **elements** of a slice with one
/// caller-provided scratch state per participating thread:
/// `f(state, index, &mut items[index])` is called exactly once per element,
/// elements claimed dynamically from an atomic cursor. At most
/// `states.len()` threads participate — size the slice with
/// [`current_num_threads`] for full parallelism (a single state forces
/// serial execution, in ascending index order).
///
/// This is [`for_each_chunk_mut_with`] for work items that are **not**
/// contiguous `&mut [T]` chunks of one buffer: each element can describe an
/// arbitrary unit of work (a row *range* of a shared batch plus its own
/// result buffers, say — the shape the pool-native data-parallel gradient
/// path dispatches on). Like the chunk primitives it performs **no heap
/// allocation**: no task list is materialized and the pool threads are
/// persistent.
///
/// # Panics
/// Panics if `items` is non-empty and `states` is empty, or if `f` panics
/// on any thread.
pub fn for_each_item_with<T, S, F>(items: &mut [T], states: &mut [S], f: F)
where
    T: Send,
    S: Send,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    for_each_chunk_mut_with(items, 1, states, |state, k, chunk| {
        f(state, k, &mut chunk[0]);
    });
}

/// An eager "parallel iterator": the items are already materialized, and
/// every consuming adaptor fans them out over the persistent worker pool.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs every item with its index, like [`Iterator::enumerate`].
    #[must_use]
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item across the pool threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        let n = self.items.len();
        if n <= 1 || pool::get().workers == 0 || pool::in_job() {
            self.items.into_iter().for_each(f);
            return;
        }
        // Hand ownership of the buffer to the broadcast: items are moved
        // out one by one via `ptr::read`, claimed exactly once each from
        // the cursor, then the (now logically empty) buffer is freed.
        let mut items = std::mem::ManuallyDrop::new(self.items);
        let base = SharedMutPtr(items.as_mut_ptr());
        let cursor = AtomicUsize::new(0);
        pool::broadcast(&|_slot| loop {
            let k = cursor.fetch_add(1, Ordering::Relaxed);
            if k >= n {
                break;
            }
            // SAFETY: each index is claimed exactly once, so every item is
            // read (moved out) exactly once; the buffer outlives the
            // broadcast and its elements are never touched again below.
            #[allow(unsafe_code)]
            let item = unsafe { std::ptr::read(base.ptr().add(k)) };
            f(item);
        });
        // SAFETY: all `n` items were moved out above (the broadcast only
        // returns after every claimed index has been processed), so the
        // buffer must be freed without dropping any element. On panic the
        // `ManuallyDrop` leaks instead — safe, never a double drop.
        #[allow(unsafe_code)]
        unsafe {
            items.set_len(0);
        }
        drop(std::mem::ManuallyDrop::into_inner(items));
    }

    /// Maps every item through `f` across the pool threads, preserving
    /// order.
    pub fn map<F, R>(self, f: F) -> ParIter<R>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        self.map_init(|| (), |_state: &mut (), item| f(item))
    }

    /// Like [`ParIter::map`], but each participating thread first builds a
    /// scratch state with `init` and threads it through the items it claims
    /// (rayon's `map_init`). Order-preserving.
    pub fn map_init<INIT, S, F, R>(self, init: INIT, f: F) -> ParIter<R>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, I) -> R + Sync,
        R: Send,
    {
        let n = self.items.len();
        if n <= 1 || pool::get().workers == 0 || pool::in_job() {
            let mut state = init();
            return ParIter {
                items: self.items.into_iter().map(|i| f(&mut state, i)).collect(),
            };
        }
        let mut items = std::mem::ManuallyDrop::new(self.items);
        let in_ptr = SharedMutPtr(items.as_mut_ptr());
        let mut out: Vec<std::mem::MaybeUninit<R>> = Vec::with_capacity(n);
        let out_ptr = SharedMutPtr(out.as_mut_ptr());
        let cursor = AtomicUsize::new(0);
        let init = &init;
        pool::broadcast(&|_slot| {
            // State is built lazily so idle threads (more threads than
            // items) never pay for `init`.
            let mut state: Option<S> = None;
            loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let st = state.get_or_insert_with(init);
                // SAFETY: index `k` is claimed exactly once: the input item
                // is moved out once, and the output slot is written once;
                // both buffers outlive the broadcast.
                #[allow(unsafe_code)]
                let item = unsafe { std::ptr::read(in_ptr.ptr().add(k)) };
                let r = f(st, item);
                #[allow(unsafe_code)]
                unsafe {
                    out_ptr.ptr().add(k).write(std::mem::MaybeUninit::new(r));
                }
            }
        });
        // SAFETY: as in `for_each`, every input item was moved out, so the
        // buffer is freed empty (leaked on panic, never double-dropped).
        #[allow(unsafe_code)]
        unsafe {
            items.set_len(0);
        }
        drop(std::mem::ManuallyDrop::into_inner(items));
        // SAFETY: every slot in `0..n` was written exactly once above, and
        // `MaybeUninit<R>` has the same layout as `R`, so the buffer can be
        // reinterpreted as an initialized `Vec<R>`.
        #[allow(unsafe_code)]
        let results = {
            let ptr = out.as_mut_ptr().cast::<R>();
            let cap = out.capacity();
            std::mem::forget(out);
            unsafe { Vec::from_raw_parts(ptr, n, cap) }
        };
        ParIter { items: results }
    }

    /// Gathers the (already computed, order-preserved) items.
    #[must_use]
    pub fn collect<C: From<Vec<I>>>(self) -> C {
        C::from(self.items)
    }
}

/// Conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced by the parallel iterator.
    type Item: Send;

    /// Materializes `self` as a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Parallel mutable-chunk views of slices (rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into non-overlapping mutable chunks of `chunk_size`
    /// (the last chunk may be shorter) as a parallel iterator.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        let expect: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(squares, expect);
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        // Each worker's scratch buffer grows once per item it handles; the
        // output stays order-preserved and independent of the partitioning.
        let out: Vec<u64> = (0..64usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                debug_assert!(!scratch.is_empty());
                i as u64
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let mut data = vec![0u32; 103];
        data.as_mut_slice()
            .par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v = i as u32 + 1;
                }
            });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn for_each_visits_all_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 99 * 100 / 2);
    }

    #[test]
    fn for_each_drops_owned_items_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let drops = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let items: Vec<Counted> = (0..50).map(|_| Counted(Arc::clone(&drops))).collect();
        items.into_par_iter().for_each(|item| {
            std::hint::black_box(&item);
        });
        assert_eq!(drops.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let mut empty: Vec<u8> = Vec::new();
        empty.as_mut_slice().par_chunks_mut(4).for_each(|_| {});
        crate::for_each_chunk_mut(&mut empty, 4, |_, _| {});
    }

    #[test]
    fn chunk_primitive_covers_every_chunk() {
        let mut data = vec![0u32; 103];
        crate::for_each_chunk_mut(&mut data, 10, |k, chunk| {
            for v in chunk.iter_mut() {
                *v = k as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn chunk_primitive_with_state_uses_disjoint_states() {
        // Every chunk records which state processed it; states count their
        // own chunks, and the totals must add up.
        let mut data = vec![0u8; 64];
        let mut states = vec![0usize; crate::current_num_threads()];
        crate::for_each_chunk_mut_with(&mut data, 3, &mut states, |st, _, chunk| {
            *st += 1;
            for v in chunk.iter_mut() {
                *v = 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
        assert_eq!(states.iter().sum::<usize>(), 64usize.div_ceil(3));
    }

    #[test]
    fn item_primitive_visits_every_item_once() {
        // Items carry their own payloads (not chunks of one buffer); each
        // must be visited exactly once, states must count their items.
        let mut items: Vec<(usize, u32)> = (0..37).map(|i| (i, 0u32)).collect();
        let mut states = vec![0usize; crate::current_num_threads()];
        crate::for_each_item_with(&mut items, &mut states, |st, k, item| {
            assert_eq!(item.0, k, "index must match the item's position");
            *st += 1;
            item.1 += 1;
        });
        assert!(items.iter().all(|&(_, v)| v == 1));
        assert_eq!(states.iter().sum::<usize>(), 37);
        // Empty input needs no state at all.
        let mut none: Vec<(usize, u32)> = Vec::new();
        crate::for_each_item_with(&mut none, &mut states, |_, _, _| unreachable!());
    }

    #[test]
    fn item_primitive_single_state_runs_in_order() {
        // One state forces the serial fallback, which must claim items in
        // ascending index order (the property the deterministic gradient
        // reduction's tests lean on when they force serial execution).
        let mut items = vec![0usize; 16];
        let order = std::sync::Mutex::new(Vec::new());
        let mut states = [()];
        crate::for_each_item_with(&mut items, &mut states, |(), k, _| {
            order.lock().unwrap().push(k);
        });
        assert_eq!(order.into_inner().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        // A parallel job that itself issues parallel calls must complete
        // (inner calls degrade to inline execution on the worker).
        let out: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..4usize).into_par_iter().map(|j| i * 10 + j).collect();
                inner.iter().sum()
            })
            .collect();
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn panic_in_job_carries_original_payload() {
        // A panic inside a parallel region must surface on the calling
        // thread with its *original* payload — downstream supervision code
        // classifies failures by that message — whether it fired on a pool
        // worker or on the caller's own slot (both paths are exercised
        // here: with many items every participant claims some).
        let caught = std::panic::catch_unwind(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 33 {
                    panic!("injected kernel fault 33");
                }
            });
        })
        .expect_err("the injected panic must propagate to the caller");
        let msg = caught
            .downcast_ref::<&'static str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .expect("payload should be the original panic message");
        assert!(
            msg.contains("injected kernel fault 33"),
            "got payload {msg:?}"
        );
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        // A worker panic poisons only the job that raised it: the very
        // next broadcast on the same pool must run to completion on every
        // thread and produce correct results. This is the property the
        // serving supervisor relies on — an engine restart reuses the
        // process-wide pool that just absorbed the fault.
        for round in 0..3 {
            let caught = std::panic::catch_unwind(|| {
                (0..32usize).into_par_iter().for_each(|i| {
                    if i % 8 == round % 8 {
                        panic!("round {round} fault");
                    }
                });
            });
            assert!(caught.is_err(), "round {round}: panic must propagate");
            // Pool still healthy: a full map over the same range works.
            let out: Vec<usize> = (0..32usize).into_par_iter().map(|i| i * 2).collect();
            assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
        }
    }
}
