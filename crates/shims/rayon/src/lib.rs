//! Offline, API-compatible stand-in for the parts of `rayon` this workspace
//! uses.
//!
//! The build environment has no network access, so the real `rayon` cannot
//! be fetched. Unlike most shims this one is **not** a sequential fake: work
//! is fanned out over a **persistent worker pool** — `num_threads() - 1`
//! detached threads spawned once per process — through a **deque-based
//! work-stealing scheduler**. Each worker owns a fixed-capacity chunk deque
//! (LIFO local pop, FIFO steal); a parallel call claims one of a fixed set
//! of job slots, pushes a root index range onto the submitter's deque, and
//! participates until every leaf index has executed exactly once. Ranges
//! split binarily as they are claimed, so thieves always steal the largest
//! outstanding half. A steady-state parallel call performs **zero heap
//! allocation** on the dispatch path: the deques, job slots, and condvars
//! are all built once, at pool construction.
//!
//! Unlike the previous one-job-at-a-time broadcast protocol, **independent
//! jobs interleave on the same workers**: a serving flush and a training
//! gradient batch submitted from different threads share the pool
//! concurrently, and a two-level [`Priority`] lane lets latency-sensitive
//! work (inference tiles) preempt throughput work (training chunks) at
//! every claim boundary — see [`with_priority`]. Nested `par_*` calls
//! **enqueue** onto the nesting worker's own deque instead of inlining, so
//! idle peers can steal the inner work; the nesting thread helps only with
//! the job it is waiting on, which is what makes per-slot scratch states
//! safe from re-entrant aliasing.
//!
//! The steal order is deterministic given the **steal seed**
//! ([`set_steal_seed`], or `RADIX_STEAL_SEED` at pool build): victims are
//! visited in a seed-derived rotation, which is the injectable hook the
//! scheduler-torture suite uses to force different interleavings.
//! Schedules never affect results: the primitives guarantee exactly-once
//! execution per index, and the deterministic kernels built on them
//! (fixed-order tree reductions) are schedule-independent by construction.
//!
//! Supported surface: `into_par_iter()` on ranges and vectors,
//! `par_chunks_mut` on slices, the adaptors `enumerate`, `map`, `map_init`,
//! `for_each`, and `collect`, plus the shim-specific zero-allocation
//! primitives the prepared kernels build on: [`for_each_chunk_mut`],
//! [`for_each_chunk_mut_with`], [`for_each_chunk_mut_paired`], and
//! [`for_each_item_with`].
//!
//! This crate contains `unsafe` in two tightly-scoped places: handing the
//! borrowed job closure to the persistent workers (a job slot's closure
//! pointer is dereferenced only between claiming one of its tasks and
//! retiring it, and the submitter does not return until every task has
//! retired) and splitting slices/vectors into disjoint per-task pieces
//! across threads (leaf indices are executed exactly once; scratch state
//! slots are never held by two threads at once, and a thread never
//! re-enters a job it is already executing). Each unsafe block carries its
//! own safety argument; everything outside this crate remains
//! `#![forbid(unsafe_code)]`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Everything call sites need: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSliceMut};
}

/// Number of worker threads to fan out over. `RADIX_POOL_THREADS` (the
/// project-native knob, used by the CI multi-thread matrix) takes
/// precedence, then `RAYON_NUM_THREADS` (the name real rayon honours), then
/// the hardware default. Read once, when the pool is built.
fn num_threads() -> usize {
    let hardware = || {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    };
    // As in real rayon, 0 (and anything unparseable) means "choose
    // automatically", not "run serially".
    let parse = |v: String| v.parse::<usize>().ok().filter(|&n| n > 0);
    std::env::var("RADIX_POOL_THREADS")
        .ok()
        .and_then(parse)
        .or_else(|| std::env::var("RAYON_NUM_THREADS").ok().and_then(parse))
        .unwrap_or_else(hardware)
}

/// Total number of threads that participate in a parallel job: the
/// persistent pool workers plus the calling thread (rayon's
/// `current_num_threads`). Callers sizing per-worker scratch state (see
/// [`for_each_chunk_mut_with`]) should size it to this value.
#[must_use]
pub fn current_num_threads() -> usize {
    pool::get().workers + 1
}

/// Scheduling lane for a parallel job. Workers look for [`Priority::High`]
/// tasks (across every deque) before considering [`Priority::Normal`] ones,
/// so latency-sensitive work — a serving flush's inference tiles — runs
/// ahead of throughput work — training gradient chunks — at every claim
/// boundary. Tasks already executing are never interrupted; preemption
/// happens between chunks, which is why latency-sensitive callers keep
/// their chunk sizes small.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// Default lane: throughput work (training, batch analytics).
    Normal,
    /// Preferred lane: claimed before any `Normal` task, across all deques.
    High,
}

/// Runs `f` with this thread's ambient scheduling priority set to `p`;
/// every parallel job submitted inside `f` — including jobs nested inside
/// those jobs, on whichever worker executes them — is tagged with that
/// lane. The previous ambient priority is restored on exit (also on
/// unwind).
pub fn with_priority<R>(p: Priority, f: impl FnOnce() -> R) -> R {
    struct Restore(Priority);
    impl Drop for Restore {
        fn drop(&mut self) {
            pool::set_ambient_priority(self.0);
        }
    }
    let _restore = Restore(pool::ambient_priority());
    pool::set_ambient_priority(p);
    f()
}

/// This thread's current ambient scheduling priority (the lane new jobs
/// submitted from this thread will be tagged with).
#[must_use]
pub fn thread_priority() -> Priority {
    pool::ambient_priority()
}

/// The process-wide steal seed: mixes into every worker's victim-visit
/// rotation. Defaults to `RADIX_STEAL_SEED` (if set when the pool is
/// built), else 0.
static STEAL_SEED: AtomicU64 = AtomicU64::new(0);

/// Sets the steal seed, the injectable steal-order hook: workers derive
/// their victim-visit rotation from `(seed, thread, attempt)`, so different
/// seeds force different steal interleavings — the property the
/// scheduler-torture suite sweeps. Takes effect on the next claim; results
/// of the shim's primitives are schedule-independent, so this can never
/// change what a parallel call computes, only the interleaving.
pub fn set_steal_seed(seed: u64) {
    STEAL_SEED.store(seed, Ordering::Relaxed);
}

/// The current process-wide steal seed (see [`set_steal_seed`]).
#[must_use]
pub fn steal_seed() -> u64 {
    STEAL_SEED.load(Ordering::Relaxed)
}

mod pool {
    //! The persistent worker pool and its work-stealing scheduler.
    //!
    //! One mutex guards the whole scheduler state — every deque and job
    //! slot. Tasks are coarse by construction (a task is a kernel *chunk*:
    //! rows of a batch, a parameter range), so claims are rare relative to
    //! the work they hand out and the lock stays cold; in exchange, steals
    //! can inspect every queued task (not just deque ends), which is what
    //! makes the priority lane and the submitter's filtered helping exact,
    //! and the seeded victim rotation fully deterministic under the lock.
    //!
    //! Invariants the safety arguments lean on:
    //!
    //! * **Exactly-once**: a task (an index range) is removed from a deque
    //!   by exactly one thread; splitting pushes disjoint halves. A job's
    //!   `remaining` counts unretired leaves; it reaches zero exactly when
    //!   every leaf has executed (or been drained by a poisoned job).
    //! * **Closure lifetime**: a submitter returns only after `remaining`
    //!   hits zero, and every dereference of the job's closure pointer
    //!   happens between claiming one of its tasks and retiring it.
    //! * **State-slot uniqueness**: for one job, the submitting thread uses
    //!   state slot 0 and pool worker `w` uses slot `w` (eligible only when
    //!   `w < n_states`) — distinct threads, distinct slots. A thread
    //!   waiting on a nested job helps **only** with that job's tasks, so
    //!   it can never re-enter an outer job and alias its own slot.

    use std::any::Any;
    use std::cell::Cell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

    use crate::Priority;

    /// Maximum concurrently active jobs; submissions past this run inline.
    const MAX_JOBS: usize = 16;
    /// Per-deque task capacity. Binary splitting keeps a deque's occupancy
    /// at O(log n_tasks) per job, so 64 never fills in practice; if it
    /// does, the claimer just keeps the unsplit remainder as one task.
    const DEQUE_CAP: usize = 64;
    /// Thread tokens: workers use `1..=workers`; external (non-pool)
    /// threads draw unique tokens starting here.
    const EXTERNAL_TOKEN_BASE: u64 = 1 << 32;

    /// A unit of queued work: leaf indices `lo..hi` of job slot `job`.
    #[derive(Clone, Copy, Default)]
    struct Task {
        job: usize,
        lo: usize,
        hi: usize,
    }

    /// Fixed-capacity task queue. Newest entries sit at `len - 1` (the
    /// "bottom", popped LIFO by the owner); oldest at 0 (the "top", stolen
    /// FIFO by thieves). Middle removal is allowed — the scheduler lock
    /// makes it trivially safe, and priority steals use it.
    struct Deque {
        buf: [Task; DEQUE_CAP],
        len: usize,
    }

    impl Deque {
        const fn new() -> Self {
            Deque {
                buf: [Task {
                    job: 0,
                    lo: 0,
                    hi: 0,
                }; DEQUE_CAP],
                len: 0,
            }
        }

        fn push(&mut self, t: Task) -> bool {
            if self.len == DEQUE_CAP {
                return false;
            }
            self.buf[self.len] = t;
            self.len += 1;
            true
        }

        fn remove(&mut self, i: usize) -> Task {
            debug_assert!(i < self.len);
            let t = self.buf[i];
            self.buf.copy_within(i + 1..self.len, i);
            self.len -= 1;
            t
        }
    }

    /// Type-erased pointer to a job's closure: `f(leaf_index, state_slot)`.
    #[derive(Clone, Copy)]
    struct JobFn(*const (dyn Fn(usize, usize) + Sync));

    // SAFETY: the pointee is `Sync` (callable from any thread through a
    // shared reference), and the scheduler guarantees the pointer is only
    // dereferenced while the job it belongs to has unretired tasks — the
    // submitter, who owns the closure, does not return before then.
    #[allow(unsafe_code)]
    unsafe impl Send for JobFn {}

    /// One of the fixed job slots.
    struct JobSlot {
        active: bool,
        f: Option<JobFn>,
        /// Scratch-state count: worker `w` participates iff `w < n_states`.
        n_states: usize,
        priority: Priority,
        /// Thread token of the submitter (state slot 0 for this job).
        submitter: u64,
        /// Unretired leaf count; 0 ⇒ job finished, submitter may return.
        remaining: usize,
        /// Set on the first panic: remaining tasks are drained, not run.
        poisoned: bool,
        /// First panic payload, re-raised on the submitting thread.
        panic: Option<Box<dyn Any + Send>>,
    }

    impl JobSlot {
        const fn idle() -> Self {
            JobSlot {
                active: false,
                f: None,
                n_states: 0,
                priority: Priority::Normal,
                submitter: 0,
                remaining: 0,
                poisoned: false,
                panic: None,
            }
        }
    }

    /// Everything the scheduler mutex guards.
    struct Sched {
        /// `workers` worker deques (index `w - 1` for worker `w`) followed
        /// by `MAX_JOBS` job-slot deques for external submitters.
        deques: Box<[Deque]>,
        jobs: [JobSlot; MAX_JOBS],
        /// Workers parked on `work_cv`; pushes notify only when > 0.
        sleepers: usize,
    }

    /// A claimed task plus everything needed to execute it lock-free.
    struct Claim {
        task: Task,
        f: JobFn,
        state_idx: usize,
        priority: Priority,
    }

    pub(crate) struct Pool {
        sched: Mutex<Sched>,
        /// Wakes parked workers when stealable work appears.
        work_cv: Condvar,
        /// Per-job-slot completion condvars (submitters park here).
        done_cv: Box<[Condvar]>,
        pub(crate) workers: usize,
    }

    thread_local! {
        /// This thread's scheduler identity: workers get `1..=workers` at
        /// spawn, other threads draw a unique token lazily on first submit.
        static THREAD_TOKEN: Cell<u64> = const { Cell::new(0) };
        /// Ambient lane for jobs submitted from this thread.
        static AMBIENT_PRIORITY: Cell<Priority> = const { Cell::new(Priority::Normal) };
        /// Per-thread claim counter; mixes into the steal rotation.
        static STEAL_ATTEMPT: Cell<u64> = const { Cell::new(0) };
    }

    static NEXT_EXTERNAL_TOKEN: AtomicU64 = AtomicU64::new(EXTERNAL_TOKEN_BASE);

    fn thread_token() -> u64 {
        let t = THREAD_TOKEN.with(Cell::get);
        if t != 0 {
            return t;
        }
        let t = NEXT_EXTERNAL_TOKEN.fetch_add(1, Ordering::Relaxed);
        THREAD_TOKEN.with(|c| c.set(t));
        t
    }

    pub(crate) fn ambient_priority() -> Priority {
        AMBIENT_PRIORITY.with(Cell::get)
    }

    pub(crate) fn set_ambient_priority(p: Priority) {
        AMBIENT_PRIORITY.with(|c| c.set(p));
    }

    /// SplitMix64: full-avalanche mixer for the steal rotation.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn lock_sched(p: &Pool) -> MutexGuard<'_, Sched> {
        p.sched.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The pool, built (and its workers spawned) on first use.
    pub(crate) fn get() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            if let Some(seed) = std::env::var("RADIX_STEAL_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                crate::STEAL_SEED.store(seed, Ordering::Relaxed);
            }
            let workers = super::num_threads().saturating_sub(1);
            let pool = Pool {
                sched: Mutex::new(Sched {
                    deques: (0..workers + MAX_JOBS).map(|_| Deque::new()).collect(),
                    jobs: [const { JobSlot::idle() }; MAX_JOBS],
                    sleepers: 0,
                }),
                work_cv: Condvar::new(),
                done_cv: (0..MAX_JOBS).map(|_| Condvar::new()).collect(),
                workers,
            };
            // Worker start-up (TLS setup, runtime bookkeeping) may
            // allocate on the worker threads; block until every worker has
            // parked so that cost is charged to pool construction, not to
            // whatever the caller measures afterwards.
            static READY: Mutex<usize> = Mutex::new(0);
            static READY_CV: Condvar = Condvar::new();
            for w in 1..=workers {
                std::thread::Builder::new()
                    .name(format!("radix-steal-{w}"))
                    .spawn(move || {
                        THREAD_TOKEN.with(|c| c.set(w as u64));
                        {
                            let mut r = READY.lock().unwrap_or_else(PoisonError::into_inner);
                            *r += 1;
                            READY_CV.notify_all();
                        }
                        // Blocks until the OnceLock is initialized.
                        worker_loop(get(), w);
                    })
                    .expect("spawn rayon-shim pool worker");
            }
            {
                let mut r = READY.lock().unwrap_or_else(PoisonError::into_inner);
                while *r < workers {
                    r = READY_CV.wait(r).unwrap_or_else(PoisonError::into_inner);
                }
            }
            pool
        })
    }

    /// The deque a thread pushes to and pops from: workers own
    /// `deques[w - 1]`; an external submitter uses its job's slot deque.
    fn own_deque_idx(token: u64, job: usize, workers: usize) -> usize {
        if token >= 1 && token <= workers as u64 {
            (token - 1) as usize
        } else {
            workers + job
        }
    }

    /// The scratch-state slot `token` uses for `job`, or `None` if this
    /// thread does not participate in it. Submitter ⇒ slot 0; worker `w` ⇒
    /// slot `w` when `w < n_states` (mirroring the old broadcast protocol,
    /// where the caller ran slot 0 and workers ran `1..=W`).
    fn state_index(job: &JobSlot, token: u64, workers: usize) -> Option<usize> {
        if token == job.submitter {
            Some(0)
        } else if token >= 1 && token <= workers as u64 && (token as usize) < job.n_states {
            Some(token as usize)
        } else {
            None
        }
    }

    impl Sched {
        /// Retires `count` leaves of `job`; notifies the submitter on
        /// completion. Call with the scheduler lock held.
        fn retire(&mut self, p: &Pool, job: usize, count: usize) {
            let j = &mut self.jobs[job];
            debug_assert!(j.remaining >= count);
            j.remaining -= count;
            if j.remaining == 0 {
                p.done_cv[job].notify_all();
            }
        }

        /// Removes task `i` from deque `dq` and prepares it for execution:
        /// drains it instead if its job is poisoned (returning `None`),
        /// otherwise splits it down to one leaf — pushing the upper halves
        /// onto `own_dq` for peers to steal — and returns the claim.
        fn claim_at(
            &mut self,
            p: &Pool,
            dq: usize,
            i: usize,
            own_dq: usize,
            state_idx: usize,
        ) -> Option<Claim> {
            let mut t = self.deques[dq].remove(i);
            if self.jobs[t.job].poisoned {
                self.retire(p, t.job, t.hi - t.lo);
                return None;
            }
            let mut pushed = false;
            while t.hi - t.lo > 1 {
                let mid = t.lo + (t.hi - t.lo) / 2;
                if !self.deques[own_dq].push(Task {
                    job: t.job,
                    lo: mid,
                    hi: t.hi,
                }) {
                    break; // Deque full: keep the remainder as one task.
                }
                t.hi = mid;
                pushed = true;
            }
            if pushed && self.sleepers > 0 {
                p.work_cv.notify_all();
            }
            let j = &self.jobs[t.job];
            Some(Claim {
                task: t,
                f: j.f.expect("active job has a closure"),
                state_idx,
                priority: j.priority,
            })
        }

        /// A worker's general claim: for each lane (High first), LIFO from
        /// its own deque, then FIFO steals across every other deque in the
        /// seed-derived victim rotation. Poisoned tasks encountered along
        /// the way are drained in place.
        fn find_general(&mut self, p: &Pool, token: u64) -> Option<Claim> {
            let own = own_deque_idx(token, 0, p.workers);
            debug_assert!(own < p.workers, "only workers run the general scan");
            let n_deques = self.deques.len();
            let h = mix(crate::STEAL_SEED.load(Ordering::Relaxed) ^ token.rotate_left(17))
                ^ mix(STEAL_ATTEMPT.with(|c| {
                    let a = c.get();
                    c.set(a.wrapping_add(1));
                    a
                }));
            let start = (h % n_deques as u64) as usize;
            let backwards = (h >> 32) & 1 == 1;
            for lane in [Priority::High, Priority::Normal] {
                // Own deque, newest-first (LIFO): cache-warm continuation
                // of whatever this worker just split.
                let mut i = self.deques[own].len;
                while i > 0 {
                    i -= 1;
                    let t = self.deques[own].buf[i];
                    if self.jobs[t.job].poisoned {
                        self.deques[own].remove(i);
                        self.retire(p, t.job, t.hi - t.lo);
                        continue;
                    }
                    if self.jobs[t.job].priority != lane {
                        continue;
                    }
                    // Own-deque tasks are always jobs this worker may run:
                    // it only ever claims eligible tasks, and splits stay
                    // within the same job.
                    let state_idx = state_index(&self.jobs[t.job], token, p.workers)
                        .expect("own-deque task must be eligible");
                    if let Some(c) = self.claim_at(p, own, i, own, state_idx) {
                        return Some(c);
                    }
                    i = i.min(self.deques[own].len); // Restart after drain.
                }
                // Steals, oldest-first (FIFO) per victim, victims in the
                // seeded rotation — the injectable steal-order hook.
                for step in 0..n_deques {
                    let dq = if backwards {
                        (start + n_deques - step % n_deques) % n_deques
                    } else {
                        (start + step) % n_deques
                    };
                    if dq == own {
                        continue;
                    }
                    let mut i = 0;
                    while i < self.deques[dq].len {
                        let t = self.deques[dq].buf[i];
                        if self.jobs[t.job].poisoned {
                            self.deques[dq].remove(i);
                            self.retire(p, t.job, t.hi - t.lo);
                            continue;
                        }
                        if self.jobs[t.job].priority == lane {
                            if let Some(state_idx) =
                                state_index(&self.jobs[t.job], token, p.workers)
                            {
                                if let Some(c) = self.claim_at(p, dq, i, own, state_idx) {
                                    return Some(c);
                                }
                                continue;
                            }
                        }
                        i += 1;
                    }
                }
            }
            None
        }

        /// A submitter's claim while waiting on `job`: **only** that job's
        /// tasks — own deque newest-first, then any other deque
        /// oldest-first. The filter is what prevents a nested submitter
        /// from re-entering the outer job it is already inside (which
        /// would alias its scratch-state slot).
        fn find_for_job(&mut self, p: &Pool, token: u64, job: usize) -> Option<Claim> {
            let own = own_deque_idx(token, job, p.workers);
            let state_idx =
                state_index(&self.jobs[job], token, p.workers).expect("submitter has slot 0");
            let mut i = self.deques[own].len;
            while i > 0 {
                i -= 1;
                let t = self.deques[own].buf[i];
                if self.jobs[t.job].poisoned {
                    self.deques[own].remove(i);
                    self.retire(p, t.job, t.hi - t.lo);
                    i = i.min(self.deques[own].len);
                    continue;
                }
                if t.job == job {
                    if let Some(c) = self.claim_at(p, own, i, own, state_idx) {
                        return Some(c);
                    }
                    i = i.min(self.deques[own].len);
                }
            }
            for dq in 0..self.deques.len() {
                if dq == own {
                    continue;
                }
                let mut i = 0;
                while i < self.deques[dq].len {
                    let t = self.deques[dq].buf[i];
                    if t.job == job {
                        if let Some(c) = self.claim_at(p, dq, i, own, state_idx) {
                            return Some(c);
                        }
                        continue; // Drained in place; index unchanged.
                    }
                    i += 1;
                }
            }
            None
        }
    }

    /// Executes a claim outside the lock, then retires it. Panics are
    /// caught here: the first payload is stored on the job (re-raised by
    /// the submitter), the job is poisoned so its queued tasks drain, and
    /// the executing thread — worker or submitter — survives.
    fn execute(p: &Pool, claim: Claim) {
        let prev = ambient_priority();
        set_ambient_priority(claim.priority);
        // SAFETY: the claim was taken while its job had `remaining > 0`,
        // and this task is not retired until after the call returns — the
        // submitter (who owns the closure) blocks until `remaining == 0`,
        // so the pointer is live for the whole call.
        #[allow(unsafe_code)]
        let f = unsafe { &*claim.f.0 };
        let result = catch_unwind(AssertUnwindSafe(|| {
            for k in claim.task.lo..claim.task.hi {
                f(k, claim.state_idx);
            }
        }));
        set_ambient_priority(prev);
        let mut s = lock_sched(p);
        if let Err(payload) = result {
            let j = &mut s.jobs[claim.task.job];
            j.poisoned = true;
            j.panic.get_or_insert(payload);
        }
        s.retire(p, claim.task.job, claim.task.hi - claim.task.lo);
    }

    fn worker_loop(p: &'static Pool, w: usize) {
        let token = w as u64;
        loop {
            let claim = {
                let mut s = lock_sched(p);
                loop {
                    if let Some(c) = s.find_general(p, token) {
                        break c;
                    }
                    s.sleepers += 1;
                    s = p.work_cv.wait(s).unwrap_or_else(PoisonError::into_inner);
                    s.sleepers -= 1;
                }
            };
            execute(p, claim);
        }
    }

    /// Runs `f(k, state_slot)` exactly once for every `k in 0..n_tasks`
    /// across the pool, returning once all have finished. `state_slot` is
    /// 0 on the submitting thread and `w` on pool worker `w`; a slot is
    /// never held by two threads at once, and only workers with
    /// `w < n_states` participate. Falls back to an inline ascending loop
    /// (slot 0) when the pool has no workers, all job slots are busy, or
    /// the root push overflows.
    ///
    /// # Panics
    /// Re-raises the first panicking task's original payload on the
    /// calling thread after every task has retired; queued tasks of the
    /// poisoned job are drained, and the pool survives.
    pub(crate) fn run_job(n_tasks: usize, n_states: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        debug_assert!(n_tasks > 0);
        let p = get();
        if p.workers == 0 || n_states <= 1 {
            for k in 0..n_tasks {
                f(k, 0);
            }
            return;
        }
        let token = thread_token();
        // SAFETY: lifetime erasure only — the fat-pointer layout is
        // unchanged, and this function does not return until `remaining`
        // reaches zero, after which no thread dereferences the pointer.
        #[allow(unsafe_code)]
        let erased: *const (dyn Fn(usize, usize) + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                &'static (dyn Fn(usize, usize) + Sync),
            >(f)
        };
        let job = {
            let mut s = lock_sched(p);
            let Some(job) = s.jobs.iter().position(|j| !j.active) else {
                drop(s);
                for k in 0..n_tasks {
                    f(k, 0);
                }
                return;
            };
            s.jobs[job] = JobSlot {
                active: true,
                f: Some(JobFn(erased)),
                n_states,
                priority: ambient_priority(),
                submitter: token,
                remaining: n_tasks,
                poisoned: false,
                panic: None,
            };
            let own = own_deque_idx(token, job, p.workers);
            if !s.deques[own].push(Task {
                job,
                lo: 0,
                hi: n_tasks,
            }) {
                s.jobs[job].active = false;
                drop(s);
                for k in 0..n_tasks {
                    f(k, 0);
                }
                return;
            }
            if s.sleepers > 0 {
                p.work_cv.notify_all();
            }
            job
        };
        // Participate until done: claim own-job tasks (helping is
        // restricted to this job — see `find_for_job`), park on the job's
        // condvar when none are claimable (they are executing elsewhere).
        let mut s = lock_sched(p);
        loop {
            if s.jobs[job].remaining == 0 {
                let payload = s.jobs[job].panic.take();
                s.jobs[job].f = None;
                s.jobs[job].active = false;
                drop(s);
                if let Some(payload) = payload {
                    resume_unwind(payload);
                }
                return;
            }
            if let Some(claim) = s.find_for_job(p, token, job) {
                drop(s);
                execute(p, claim);
                s = lock_sched(p);
                continue;
            }
            // Re-check before parking, in the same lock hold: `find_for_job`
            // can itself retire the job's last leaves (draining a poisoned
            // job), and that zero-transition notify fired while *this*
            // thread was the one scanning — waiting on it now would sleep
            // forever. The loop re-runs the completion check instead.
            if s.jobs[job].remaining > 0 {
                s = p.done_cv[job]
                    .wait(s)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// A raw mutable pointer that may be dereferenced from any pool thread.
/// Each use site carves out disjoint regions per task/slot index, so no two
/// threads ever touch the same element.
struct SharedMutPtr<T>(*mut T);

// SAFETY: the pointer is only used to derive references to *disjoint*
// regions (distinct chunk indices, distinct state slots), each claimed
// exactly once / held by one thread at a time; the data it points into
// outlives the job.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SharedMutPtr<T> {}

impl<T> SharedMutPtr<T> {
    /// The wrapped pointer. Closures must go through this method (not the
    /// field) so they capture the `Sync` wrapper, not the raw pointer.
    fn ptr(&self) -> *mut T {
        self.0
    }
}

/// Pool-parallel loop over `chunk_size`-sized mutable chunks of `data`
/// (the last chunk may be shorter), with one caller-provided scratch state
/// per participating thread. `f(state, chunk_index, chunk)` is called once
/// per chunk; chunks are claimed through the work-stealing scheduler, so
/// the schedule load-balances (and interleaves with other jobs on the
/// pool). At most `states.len()` threads participate — size the slice with
/// [`current_num_threads`] for full parallelism (a single state forces
/// serial execution).
///
/// Unlike [`ParallelSliceMut::par_chunks_mut`], this performs **no heap
/// allocation**: no chunk list is materialized and the pool threads are
/// persistent, which is what keeps warmed-up parallel inference inside an
/// allocation-free timed region.
///
/// # Panics
/// Panics if `chunk_size == 0`, or if `data` is non-empty and `states` is
/// empty, or if `f` panics on any thread.
pub fn for_each_chunk_mut_with<T, S, F>(data: &mut [T], chunk_size: usize, states: &mut [S], f: F)
where
    T: Send,
    S: Send,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk size must be positive");
    let len = data.len();
    let n_tasks = len.div_ceil(chunk_size);
    if n_tasks == 0 {
        return;
    }
    assert!(!states.is_empty(), "need at least one scratch state");
    if n_tasks == 1 || states.len() == 1 || pool::get().workers == 0 {
        let state = &mut states[0];
        for k in 0..n_tasks {
            let start = k * chunk_size;
            let end = (start + chunk_size).min(len);
            f(state, k, &mut data[start..end]);
        }
        return;
    }
    let data_ptr = SharedMutPtr(data.as_mut_ptr());
    let states_ptr = SharedMutPtr(states.as_mut_ptr());
    let n_states = states.len();
    pool::run_job(n_tasks, n_states, &|k, slot| {
        debug_assert!(slot < n_states);
        // SAFETY: the scheduler guarantees `slot` is held by at most one
        // thread at a time for this job, and a thread never re-enters this
        // job while inside `f` (helping is restricted to the job being
        // waited on), so this is the only live reference to
        // `states[slot]`; the slice outlives the job.
        #[allow(unsafe_code)]
        let state = unsafe { &mut *states_ptr.ptr().add(slot) };
        let start = k * chunk_size;
        let clen = chunk_size.min(len - start);
        // SAFETY: `k` is executed exactly once, chunks `[start,
        // start+clen)` are pairwise disjoint across `k`, and `data`
        // outlives the job.
        #[allow(unsafe_code)]
        let chunk = unsafe { std::slice::from_raw_parts_mut(data_ptr.ptr().add(start), clen) };
        f(state, k, chunk);
    });
}

/// Stateless variant of [`for_each_chunk_mut_with`]: pool-parallel,
/// allocation-free loop over `chunk_size`-sized mutable chunks, `f(chunk_index,
/// chunk)` once per chunk.
///
/// # Panics
/// Panics if `chunk_size == 0` or if `f` panics on any thread.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    /// Upper bound on participating threads for the stateless entry point
    /// (the unit states live on the stack).
    const MAX_SLOTS: usize = 128;
    let mut states = [(); MAX_SLOTS];
    let slots = current_num_threads().min(MAX_SLOTS);
    for_each_chunk_mut_with(data, chunk_size, &mut states[..slots.max(1)], |(), k, c| {
        f(k, c);
    });
}

/// Like [`for_each_chunk_mut`], but every chunk additionally gets exclusive
/// access to its own cell of `per_chunk`: `f(chunk_index, chunk, &mut
/// per_chunk[chunk_index])` once per chunk. This is the shape of a fused
/// sweep that computes a per-chunk summary (a partial norm, say) while the
/// chunk is hot in cache, without sharing an accumulator across threads —
/// the caller combines the cells afterwards in a fixed order, keeping the
/// result schedule-independent. Allocation-free, like the other primitives.
///
/// # Panics
/// Panics if `chunk_size == 0`, if `per_chunk` is shorter than the number
/// of chunks, or if `f` panics on any thread.
pub fn for_each_chunk_mut_paired<T, U, F>(
    data: &mut [T],
    chunk_size: usize,
    per_chunk: &mut [U],
    f: F,
) where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut U) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let len = data.len();
    if len == 0 {
        return;
    }
    let n_tasks = len.div_ceil(chunk_size);
    assert!(
        per_chunk.len() >= n_tasks,
        "per_chunk holds {} cells for {} chunks",
        per_chunk.len(),
        n_tasks
    );
    let data_ptr = SharedMutPtr(data.as_mut_ptr());
    let cell_ptr = SharedMutPtr(per_chunk.as_mut_ptr());
    pool::run_job(n_tasks, current_num_threads(), &|k, _slot| {
        let start = k * chunk_size;
        let clen = chunk_size.min(len - start);
        // SAFETY: `k` is executed exactly once; chunks `[start,
        // start+clen)` and cells `per_chunk[k]` are pairwise disjoint
        // across `k`, and both buffers outlive the job.
        #[allow(unsafe_code)]
        let chunk = unsafe { std::slice::from_raw_parts_mut(data_ptr.ptr().add(start), clen) };
        #[allow(unsafe_code)]
        let cell = unsafe { &mut *cell_ptr.ptr().add(k) };
        f(k, chunk, cell);
    });
}

/// Pool-parallel loop over the **elements** of a slice with one
/// caller-provided scratch state per participating thread:
/// `f(state, index, &mut items[index])` is called exactly once per element,
/// elements claimed through the work-stealing scheduler. At most
/// `states.len()` threads participate — size the slice with
/// [`current_num_threads`] for full parallelism (a single state forces
/// serial execution, in ascending index order).
///
/// This is [`for_each_chunk_mut_with`] for work items that are **not**
/// contiguous `&mut [T]` chunks of one buffer: each element can describe an
/// arbitrary unit of work (a row *range* of a shared batch plus its own
/// result buffers, say — the shape the pool-native data-parallel gradient
/// path dispatches on). Like the chunk primitives it performs **no heap
/// allocation**: no task list is materialized and the pool threads are
/// persistent.
///
/// # Panics
/// Panics if `items` is non-empty and `states` is empty, or if `f` panics
/// on any thread.
pub fn for_each_item_with<T, S, F>(items: &mut [T], states: &mut [S], f: F)
where
    T: Send,
    S: Send,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    for_each_chunk_mut_with(items, 1, states, |state, k, chunk| {
        f(state, k, &mut chunk[0]);
    });
}

/// A lazily-initialized per-state-slot scratch cell for [`ParIter::map_init`].
struct StateCell<S>(std::cell::UnsafeCell<Option<S>>);

// SAFETY: the scheduler guarantees a state slot index is held by at most
// one thread at a time for a given job, and a thread never re-enters the
// job while inside its closure, so the cell is never accessed concurrently.
#[allow(unsafe_code)]
unsafe impl<S: Send> Sync for StateCell<S> {}

/// An eager "parallel iterator": the items are already materialized, and
/// every consuming adaptor fans them out over the persistent worker pool.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs every item with its index, like [`Iterator::enumerate`].
    #[must_use]
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item across the pool threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        let n = self.items.len();
        if n <= 1 || pool::get().workers == 0 {
            self.items.into_iter().for_each(f);
            return;
        }
        // Hand ownership of the buffer to the scheduler: items are moved
        // out one by one via `ptr::read`, each index executed exactly
        // once, then the (now logically empty) buffer is freed.
        let mut items = std::mem::ManuallyDrop::new(self.items);
        let base = SharedMutPtr(items.as_mut_ptr());
        pool::run_job(n, current_num_threads(), &|k, _slot| {
            // SAFETY: each index is executed exactly once, so every item
            // is read (moved out) exactly once; the buffer outlives the
            // job and its elements are never touched again below.
            #[allow(unsafe_code)]
            let item = unsafe { std::ptr::read(base.ptr().add(k)) };
            f(item);
        });
        // SAFETY: all `n` items were moved out above (the job only
        // finishes after every index has executed), so the buffer must be
        // freed without dropping any element. On panic the `ManuallyDrop`
        // leaks instead — safe, never a double drop.
        #[allow(unsafe_code)]
        unsafe {
            items.set_len(0);
        }
        drop(std::mem::ManuallyDrop::into_inner(items));
    }

    /// Maps every item through `f` across the pool threads, preserving
    /// order.
    pub fn map<F, R>(self, f: F) -> ParIter<R>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        self.map_init(|| (), |_state: &mut (), item| f(item))
    }

    /// Like [`ParIter::map`], but each participating thread first builds a
    /// scratch state with `init` and threads it through the items it claims
    /// (rayon's `map_init`). Order-preserving.
    pub fn map_init<INIT, S, F, R>(self, init: INIT, f: F) -> ParIter<R>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, I) -> R + Sync,
        R: Send,
        S: Send,
    {
        let n = self.items.len();
        if n <= 1 || pool::get().workers == 0 {
            let mut state = init();
            return ParIter {
                items: self.items.into_iter().map(|i| f(&mut state, i)).collect(),
            };
        }
        let slots = current_num_threads();
        // States are built lazily so idle slots never pay for `init`.
        let states: Vec<StateCell<S>> = (0..slots)
            .map(|_| StateCell(std::cell::UnsafeCell::new(None)))
            .collect();
        let mut items = std::mem::ManuallyDrop::new(self.items);
        let in_ptr = SharedMutPtr(items.as_mut_ptr());
        let mut out: Vec<std::mem::MaybeUninit<R>> = Vec::with_capacity(n);
        let out_ptr = SharedMutPtr(out.as_mut_ptr());
        let init = &init;
        pool::run_job(n, slots, &|k, slot| {
            // SAFETY: the scheduler guarantees `slot` is held by one
            // thread at a time and never re-entered on the same thread
            // (helping is restricted to the awaited nested job), so this
            // is the only live reference into the cell.
            #[allow(unsafe_code)]
            let state = unsafe { &mut *states[slot].0.get() };
            let st = state.get_or_insert_with(init);
            // SAFETY: index `k` is executed exactly once: the input item
            // is moved out once, and the output slot is written once; both
            // buffers outlive the job.
            #[allow(unsafe_code)]
            let item = unsafe { std::ptr::read(in_ptr.ptr().add(k)) };
            let r = f(st, item);
            #[allow(unsafe_code)]
            unsafe {
                out_ptr.ptr().add(k).write(std::mem::MaybeUninit::new(r));
            }
        });
        drop(states);
        // SAFETY: as in `for_each`, every input item was moved out, so the
        // buffer is freed empty (leaked on panic, never double-dropped).
        #[allow(unsafe_code)]
        unsafe {
            items.set_len(0);
        }
        drop(std::mem::ManuallyDrop::into_inner(items));
        // SAFETY: every slot in `0..n` was written exactly once above, and
        // `MaybeUninit<R>` has the same layout as `R`, so the buffer can be
        // reinterpreted as an initialized `Vec<R>`.
        #[allow(unsafe_code)]
        let results = {
            let ptr = out.as_mut_ptr().cast::<R>();
            let cap = out.capacity();
            std::mem::forget(out);
            unsafe { Vec::from_raw_parts(ptr, n, cap) }
        };
        ParIter { items: results }
    }

    /// Gathers the (already computed, order-preserved) items.
    #[must_use]
    pub fn collect<C: From<Vec<I>>>(self) -> C {
        C::from(self.items)
    }
}

/// Conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced by the parallel iterator.
    type Item: Send;

    /// Materializes `self` as a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Parallel mutable-chunk views of slices (rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into non-overlapping mutable chunks of `chunk_size`
    /// (the last chunk may be shorter) as a parallel iterator.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        let expect: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(squares, expect);
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        // Each slot's scratch buffer grows once per item it handles; the
        // output stays order-preserved and independent of the schedule.
        let out: Vec<u64> = (0..64usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                debug_assert!(!scratch.is_empty());
                i as u64
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let mut data = vec![0u32; 103];
        data.as_mut_slice()
            .par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v = i as u32 + 1;
                }
            });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn for_each_visits_all_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 99 * 100 / 2);
    }

    #[test]
    fn for_each_drops_owned_items_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let drops = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let items: Vec<Counted> = (0..50).map(|_| Counted(Arc::clone(&drops))).collect();
        items.into_par_iter().for_each(|item| {
            std::hint::black_box(&item);
        });
        assert_eq!(drops.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let mut empty: Vec<u8> = Vec::new();
        empty.as_mut_slice().par_chunks_mut(4).for_each(|_| {});
        crate::for_each_chunk_mut(&mut empty, 4, |_, _| {});
    }

    #[test]
    fn chunk_primitive_covers_every_chunk() {
        let mut data = vec![0u32; 103];
        crate::for_each_chunk_mut(&mut data, 10, |k, chunk| {
            for v in chunk.iter_mut() {
                *v = k as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn chunk_primitive_with_state_uses_disjoint_states() {
        // Every chunk records which state processed it; states count their
        // own chunks, and the totals must add up.
        let mut data = vec![0u8; 64];
        let mut states = vec![0usize; crate::current_num_threads()];
        crate::for_each_chunk_mut_with(&mut data, 3, &mut states, |st, _, chunk| {
            *st += 1;
            for v in chunk.iter_mut() {
                *v = 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
        assert_eq!(states.iter().sum::<usize>(), 64usize.div_ceil(3));
    }

    #[test]
    fn item_primitive_visits_every_item_once() {
        // Items carry their own payloads (not chunks of one buffer); each
        // must be visited exactly once, states must count their items.
        let mut items: Vec<(usize, u32)> = (0..37).map(|i| (i, 0u32)).collect();
        let mut states = vec![0usize; crate::current_num_threads()];
        crate::for_each_item_with(&mut items, &mut states, |st, k, item| {
            assert_eq!(item.0, k, "index must match the item's position");
            *st += 1;
            item.1 += 1;
        });
        assert!(items.iter().all(|&(_, v)| v == 1));
        assert_eq!(states.iter().sum::<usize>(), 37);
        // Empty input needs no state at all.
        let mut none: Vec<(usize, u32)> = Vec::new();
        crate::for_each_item_with(&mut none, &mut states, |_, _, _| unreachable!());
    }

    #[test]
    fn item_primitive_single_state_runs_in_order() {
        // One state forces the serial fallback, which must claim items in
        // ascending index order (the property the deterministic gradient
        // reduction's tests lean on when they force serial execution).
        let mut items = vec![0usize; 16];
        let order = std::sync::Mutex::new(Vec::new());
        let mut states = [()];
        crate::for_each_item_with(&mut items, &mut states, |(), k, _| {
            order.lock().unwrap().push(k);
        });
        assert_eq!(order.into_inner().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // A parallel job that itself issues parallel calls must complete
        // with correct, ordered results (inner calls enqueue onto the
        // scheduler as child jobs instead of inlining; the nesting thread
        // helps only with the inner job while it waits).
        let out: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..4usize).into_par_iter().map(|j| i * 10 + j).collect();
                inner.iter().sum()
            })
            .collect();
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn priority_is_scoped_and_restored() {
        assert_eq!(crate::thread_priority(), crate::Priority::Normal);
        let out = crate::with_priority(crate::Priority::High, || {
            assert_eq!(crate::thread_priority(), crate::Priority::High);
            // Jobs submitted here are tagged High; results are unchanged.
            let v: Vec<usize> = (0..32usize).into_par_iter().map(|i| i + 1).collect();
            v.iter().sum::<usize>()
        });
        assert_eq!(out, (1..=32).sum::<usize>());
        assert_eq!(crate::thread_priority(), crate::Priority::Normal);
    }

    #[test]
    fn steal_seed_roundtrips_and_never_changes_results() {
        let before = crate::steal_seed();
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            crate::set_steal_seed(seed);
            assert_eq!(crate::steal_seed(), seed);
            let out: Vec<usize> = (0..64usize).into_par_iter().map(|i| i * 7).collect();
            assert_eq!(out, (0..64).map(|i| i * 7).collect::<Vec<_>>());
        }
        crate::set_steal_seed(before);
    }

    #[test]
    fn panic_in_job_carries_original_payload() {
        // A panic inside a parallel region must surface on the calling
        // thread with its *original* payload — downstream supervision code
        // classifies failures by that message — whether it fired on a pool
        // worker or on the caller's own claims (with many items every
        // participant claims some).
        let caught = std::panic::catch_unwind(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 33 {
                    panic!("injected kernel fault 33");
                }
            });
        })
        .expect_err("the injected panic must propagate to the caller");
        let msg = caught
            .downcast_ref::<&'static str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .expect("payload should be the original panic message");
        assert!(
            msg.contains("injected kernel fault 33"),
            "got payload {msg:?}"
        );
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        // A task panic poisons only the job that raised it: the very next
        // job on the same pool must run to completion on every thread and
        // produce correct results. This is the property the serving
        // supervisor relies on — an engine restart reuses the
        // process-wide pool that just absorbed the fault.
        for round in 0..3 {
            let caught = std::panic::catch_unwind(|| {
                (0..32usize).into_par_iter().for_each(|i| {
                    if i % 8 == round % 8 {
                        panic!("round {round} fault");
                    }
                });
            });
            assert!(caught.is_err(), "round {round}: panic must propagate");
            // Pool still healthy: a full map over the same range works.
            let out: Vec<usize> = (0..32usize).into_par_iter().map(|i| i * 2).collect();
            assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
        }
    }
}
