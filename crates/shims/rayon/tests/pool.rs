//! Exercises the persistent worker pool with a forced multi-thread
//! configuration (its own test binary, so setting `RAYON_NUM_THREADS`
//! before first pool use cannot race other tests — the pool reads the
//! variable exactly once, at construction).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

/// Forces a 4-thread pool (even on single-core CI) before any test body
/// touches it. `#[ctor]`-style tricks are unavailable offline, so every
/// test calls this first; `Once` semantics come from `OnceLock`.
///
/// `RADIX_POOL_THREADS` is the project knob with highest precedence (the
/// CI multi-thread matrix sets it process-wide), so it must be set here
/// too — otherwise an ambient matrix value would override the forced
/// width. Setting `RAYON_NUM_THREADS` to a *different* value doubles as
/// the precedence check in `pool_reports_forced_thread_count`.
fn force_threads() {
    static INIT: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    INIT.get_or_init(|| {
        std::env::set_var("RADIX_POOL_THREADS", "4");
        std::env::set_var("RAYON_NUM_THREADS", "2");
    });
}

#[test]
fn pool_reports_forced_thread_count() {
    force_threads();
    // RADIX_POOL_THREADS=4 must win over RAYON_NUM_THREADS=2.
    assert_eq!(rayon::current_num_threads(), 4);
}

#[test]
fn item_dispatch_is_complete_under_forced_pool() {
    force_threads();
    // The range-based work-item primitive: every item visited exactly
    // once, per-slot states never aliased, across many rounds.
    let mut items: Vec<u32> = vec![0; 257];
    for _ in 0..25 {
        let mut states: Vec<usize> = vec![0; rayon::current_num_threads()];
        rayon::for_each_item_with(&mut items, &mut states, |st, _, item| {
            *st += 1;
            *item += 1;
        });
        assert_eq!(states.iter().sum::<usize>(), 257);
    }
    assert!(items.iter().all(|&v| v == 25));
}

#[test]
fn multiple_threads_actually_participate() {
    force_threads();
    // A coarse job with a short sleep per item: with 4 threads and 8 items
    // at least two distinct thread ids must show up.
    let ids = Mutex::new(std::collections::HashSet::new());
    (0..8usize).into_par_iter().for_each(|_| {
        std::thread::sleep(std::time::Duration::from_millis(5));
        ids.lock().unwrap().insert(std::thread::current().id());
    });
    assert!(
        ids.into_inner().unwrap().len() >= 2,
        "a 4-thread pool must run a coarse 8-item job on more than one thread"
    );
}

#[test]
fn chunk_dispatch_is_complete_and_disjoint() {
    force_threads();
    // Every element incremented exactly once across many rounds — lost or
    // doubled chunks would show up as a wrong final value.
    let mut data = vec![0u32; 1024];
    for _ in 0..50 {
        rayon::for_each_chunk_mut(&mut data, 7, |_, chunk| {
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
    }
    assert!(data.iter().all(|&v| v == 50));
}

#[test]
fn states_never_alias() {
    force_threads();
    // Each state tracks "currently in use" with an atomic flag; aliasing
    // two threads onto one state would trip the assertion.
    struct Probe {
        busy: AtomicUsize,
        seen: usize,
    }
    let mut states: Vec<Probe> = (0..rayon::current_num_threads())
        .map(|_| Probe {
            busy: AtomicUsize::new(0),
            seen: 0,
        })
        .collect();
    let mut data = vec![0u8; 512];
    rayon::for_each_chunk_mut_with(&mut data, 2, &mut states, |st, _, _| {
        assert_eq!(st.busy.fetch_add(1, Ordering::SeqCst), 0, "state aliased");
        std::hint::black_box(&st.seen);
        st.seen += 1;
        st.busy.fetch_sub(1, Ordering::SeqCst);
    });
    assert_eq!(states.iter().map(|s| s.seen).sum::<usize>(), 256);
}

#[test]
fn worker_panic_propagates_and_pool_survives() {
    force_threads();
    let result = std::panic::catch_unwind(|| {
        (0..64usize).into_par_iter().for_each(|i| {
            assert!(i != 17, "injected failure");
        });
    });
    assert!(
        result.is_err(),
        "panic inside a parallel job must propagate"
    );
    // The pool must remain usable after a panicked job.
    let sum = AtomicUsize::new(0);
    (0..100usize).into_par_iter().for_each(|i| {
        sum.fetch_add(i, Ordering::Relaxed);
    });
    assert_eq!(sum.into_inner(), 4950);
}

#[test]
fn map_init_results_stay_ordered_under_pool() {
    force_threads();
    for _ in 0..20 {
        let out: Vec<usize> = (0..500usize)
            .into_par_iter()
            .map_init(
                || 0usize,
                |st, i| {
                    *st += 1;
                    i * 3
                },
            )
            .collect();
        let expect: Vec<usize> = (0..500).map(|i| i * 3).collect();
        assert_eq!(out, expect);
    }
}
